"""repro.verify — differential + metamorphic verification of the solvers.

Three layers, cheapest first:

1. **Invariants** (:mod:`~repro.verify.invariants`): pure checks any
   result must pass — Eq. 1 recomputed from scratch, distinct-switch
   feasibility, Eq. 8's ``C_t = C_b + C_a`` split, triangle consistency
   against the APSP metric, the TOP-1 LP floor.
2. **Oracles** (:mod:`~repro.verify.oracles`): the exact solvers as
   size-gated referees — no result may beat the optimum.
3. **Metamorphic transforms** (:mod:`~repro.verify.metamorphic`):
   scenario rewrites (relabel, scale, split, reverse, zero-flow) with a
   known cost relation every sound solver must preserve.

:mod:`~repro.verify.campaign` wires the three into a seeded fuzz
campaign (``repro verify``) with journal resume and greedy shrinking of
failures; :mod:`~repro.verify.diff` holds the bit-identity helpers the
differential checks and the test suites share.
"""

from repro.verify.campaign import (
    APPLICABLE,
    CampaignConfig,
    CheckOptions,
    run_campaign,
    run_case,
    shrink_case,
)
from repro.verify.constrained import (
    CONSTRAINED_FAMILIES,
    ConstrainedCampaignConfig,
    ConstrainedCaseSpec,
    generate_constrained_cases,
    run_constrained_campaign,
    run_constrained_case,
)
from repro.verify.diff import assert_equivalent, check_differential, diff_results
from repro.verify.faults import (
    FAULT_FAMILIES,
    FaultCampaignConfig,
    FaultCaseSpec,
    check_fault_day,
    generate_fault_cases,
    run_fault_campaign,
    run_fault_case,
)
from repro.verify.incremental import (
    IncrementalCampaignConfig,
    check_dynamic_tables,
    check_incremental_day,
    generate_incremental_cases,
    run_incremental_campaign,
    run_incremental_case,
)
from repro.verify.invariants import (
    DEFAULT_RTOL,
    Violation,
    check_cost_decomposition,
    check_feasibility,
    check_lp_floor,
    check_metric,
    check_migration_distance,
    check_migration_result,
    check_placement_result,
    check_result,
    check_total_split,
    check_triangle_consistency,
    check_vm_migration_result,
    recompute_communication_cost,
)
from repro.verify.metamorphic import (
    TRANSFORMS,
    TransformResult,
    relabel_topology,
    relabel_transform,
    reverse_transform,
    scale_transform,
    split_transform,
    zero_flow_transform,
)
from repro.verify.oracles import (
    OracleGate,
    check_oracle_floor,
    oracle_migration,
    oracle_placement,
)
from repro.verify.replication import (
    REPLICATION_FAMILIES,
    ReplicationCampaignConfig,
    ReplicationCaseSpec,
    check_replication_day,
    generate_replication_cases,
    run_replication_campaign,
    run_replication_case,
)
from repro.verify.scenarios import FAMILIES, CaseSpec, generate_cases, shrink_candidates
from repro.verify.shard import (
    SHARD_DAY_KINDS,
    ShardCampaignConfig,
    ShardCaseSpec,
    generate_shard_cases,
    run_shard_campaign,
    run_shard_case,
)

__all__ = [
    # invariants
    "DEFAULT_RTOL",
    "Violation",
    "recompute_communication_cost",
    "check_feasibility",
    "check_cost_decomposition",
    "check_total_split",
    "check_migration_distance",
    "check_triangle_consistency",
    "check_metric",
    "check_lp_floor",
    "check_placement_result",
    "check_migration_result",
    "check_vm_migration_result",
    "check_result",
    # oracles
    "OracleGate",
    "oracle_placement",
    "oracle_migration",
    "check_oracle_floor",
    # metamorphic
    "TransformResult",
    "TRANSFORMS",
    "relabel_topology",
    "relabel_transform",
    "scale_transform",
    "split_transform",
    "reverse_transform",
    "zero_flow_transform",
    # differential
    "diff_results",
    "assert_equivalent",
    "check_differential",
    # scenarios + campaign
    "FAMILIES",
    "CaseSpec",
    "generate_cases",
    "shrink_candidates",
    "APPLICABLE",
    "CheckOptions",
    "CampaignConfig",
    "run_case",
    "shrink_case",
    "run_campaign",
    # fault injection
    "FAULT_FAMILIES",
    "FaultCaseSpec",
    "generate_fault_cases",
    "check_fault_day",
    "run_fault_case",
    "FaultCampaignConfig",
    "run_fault_campaign",
    # constrained placement
    "CONSTRAINED_FAMILIES",
    "ConstrainedCaseSpec",
    "generate_constrained_cases",
    "run_constrained_case",
    "ConstrainedCampaignConfig",
    "run_constrained_campaign",
    # replication lattice
    "REPLICATION_FAMILIES",
    "ReplicationCaseSpec",
    "generate_replication_cases",
    "check_replication_day",
    "run_replication_case",
    "ReplicationCampaignConfig",
    "run_replication_campaign",
    # incremental differential
    "generate_incremental_cases",
    "check_dynamic_tables",
    "check_incremental_day",
    "run_incremental_case",
    "IncrementalCampaignConfig",
    "run_incremental_campaign",
    # sharded execution differential
    "SHARD_DAY_KINDS",
    "ShardCaseSpec",
    "generate_shard_cases",
    "run_shard_case",
    "ShardCampaignConfig",
    "run_shard_campaign",
]
