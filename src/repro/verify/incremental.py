"""Incremental-path verification: the cold solver as differential oracle.

The incremental solver core (ISSUE 6) promises *bit-identical results
for less work*: delta-maintained APSP tables, seeded degraded views and
shared stroll artifacts must change **when** things are computed, never
**what**.  This campaign family holds that promise down at two levels:

* **table level** — a :class:`~repro.graphs.incremental.DynamicAPSP` is
  stepped through every hour of a seeded fault trace and its tables are
  compared against a cold recompute on the same degraded edge set:
  distances must match **bitwise** (including ``inf`` for disconnected
  pairs and exact restoration after repair), and the predecessor table
  must encode a valid shortest-path tree for those distances;
* **day level** — the same fault-aware day is simulated twice, once
  through :meth:`SolverSession.apply` (``incremental=True``) and once
  through the cold per-state rebuild path, each under a fresh
  :class:`~repro.runtime.cache.ComputeCache`; the two
  :class:`~repro.sim.engine.DayResult`\\ s must serialize to identical
  canonical JSON, while the incremental run must charge **fewer**
  ``apsp_computes`` whenever the trace contains a degraded hour (the
  efficiency half of the acceptance criteria, checked per case rather
  than only in the benchmark).

Cases reuse the fault-campaign generator: the scenario space that
stresses fault handling is exactly the one that stresses incremental
maintenance (fail → repair → refail sequences, partitions, host and
link faults).  A diagnosed mid-day infeasibility is a valid outcome —
but then *both* paths must diagnose it identically.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.placement import dp_placement
from repro.errors import InfeasibleError
from repro.faults import FaultProcess, degrade
from repro.graphs.apsp import edges_to_csr
from repro.graphs.incremental import DynamicAPSP
from repro.runtime.cache import ComputeCache, set_compute_cache
from repro.runtime.executor import map_tasks
from repro.runtime.instrument import count, counters, snapshot, snapshot_delta
from repro.runtime.journal import Journal
from repro.runtime.resilience import ResilienceConfig
from repro.sim.engine import simulate_day
from repro.topology.base import Topology
from repro.verify.faults import FaultCaseSpec, generate_fault_cases
from repro.verify.invariants import DEFAULT_RTOL, Violation

__all__ = [
    "generate_incremental_cases",
    "check_dynamic_tables",
    "check_incremental_day",
    "run_incremental_case",
    "IncrementalCampaignConfig",
    "run_incremental_campaign",
]


def generate_incremental_cases(seed: int, cases: int) -> list[FaultCaseSpec]:
    """``cases`` seeded scenarios for the incremental family.

    Deliberately the same spec space as :func:`~repro.verify.faults.
    generate_fault_cases` — every fail/repair shape that family covers is
    a delta sequence this family must maintain exactly.
    """
    return generate_fault_cases(seed, cases)


def _effective_weights(graph) -> np.ndarray:
    """The edge weights scipy actually used (CSR duplicate-summing included)."""
    n = graph.num_nodes
    dense = np.asarray(
        edges_to_csr(n, graph.edges, graph.weights).todense(), dtype=np.float64
    )
    dense[dense == 0.0] = np.inf
    np.fill_diagonal(dense, 0.0)
    return dense


def _check_pred_tree(
    dist: np.ndarray, pred: np.ndarray, weights: np.ndarray
) -> list[tuple[int, int]]:
    """Entries where ``pred`` is not a valid tree for ``dist`` (exact)."""
    n = dist.shape[0]
    finite = np.isfinite(dist)
    np.fill_diagonal(finite, False)
    rows, cols = np.nonzero(finite)
    parents = pred[rows, cols]
    bad = parents < 0  # finite distance must have a predecessor
    valid = ~bad
    r, c, p = rows[valid], cols[valid], parents[valid]
    mismatch = dist[r, c] != dist[r, p] + weights[p, c]
    failures = list(zip(rows[bad].tolist(), cols[bad].tolist()))
    failures += list(zip(r[mismatch].tolist(), c[mismatch].tolist()))
    # unreachable or diagonal entries must carry the scipy sentinel (< 0)
    unreachable = ~np.isfinite(dist)
    stray_r, stray_c = np.nonzero(unreachable & (pred >= 0))
    failures += list(zip(stray_r.tolist(), stray_c.tolist()))
    return failures


def check_dynamic_tables(
    topology: Topology, faults: FaultProcess
) -> tuple[list[Violation], int]:
    """Step a :class:`DynamicAPSP` through the fault trace; cold-check each state.

    Returns ``(violations, checks)``.  The DynamicAPSP sees every hour in
    sequence (so delta composition — fail, accumulate, repair, refail —
    is what gets exercised); each *distinct* state is cold-recomputed
    once and cached for revisits.
    """
    violations: list[Violation] = []
    checks = 0
    dynamic = DynamicAPSP(topology.graph)
    cold_tables: dict = {}
    for hour in range(faults.horizon + 1):
        state = faults.state_at(hour)
        dynamic.update_for_failures(
            failed_nodes=tuple(state.failed_switches) + tuple(state.failed_hosts),
            failed_links=state.failed_links,
        )
        if state not in cold_tables:
            view, _audit = degrade(topology, state)
            cold_dist, _cold_pred = view.graph._compute_apsp()
            cold_tables[state] = (cold_dist, _effective_weights(view.graph))
        cold_dist, weights = cold_tables[state]
        inc_dist, inc_pred = dynamic.snapshot()
        checks += 1
        if not np.array_equal(cold_dist, inc_dist):
            diff = ~(
                (cold_dist == inc_dist)
                | (np.isinf(cold_dist) & np.isinf(inc_dist))
            )
            violations.append(
                Violation(
                    "incremental_dist_bits",
                    f"hour {hour}: DynamicAPSP distances differ from cold "
                    f"recompute at {int(diff.sum())} pairs",
                    {
                        "hour": hour,
                        "state": state.to_dict(),
                        "num_diffs": int(diff.sum()),
                        "stats": dict(dynamic.stats),
                    },
                )
            )
            continue  # the pred check is meaningless on wrong distances
        checks += 1
        bad = _check_pred_tree(inc_dist, inc_pred, weights)
        if bad:
            violations.append(
                Violation(
                    "incremental_pred_tree",
                    f"hour {hour}: predecessor table invalid at "
                    f"{len(bad)} entries (first: {bad[:3]})",
                    {"hour": hour, "state": state.to_dict(), "entries": bad[:10]},
                )
            )
    return violations, checks


def _simulate_spec(spec: FaultCaseSpec, incremental: bool):
    """One fault day under a fresh cache; returns outcome + counter delta.

    The fresh :class:`ComputeCache` keeps the two paths honest: neither
    run may adopt artifacts the other one built.
    """
    fresh = ComputeCache()
    previous = set_compute_cache(fresh)
    try:
        before = snapshot()
        topology, flows, rate_process, faults = spec.build()
        placement = dp_placement(topology, flows, spec.n).placement
        policy = spec.make_policy(topology)
        try:
            day = simulate_day(
                topology,
                flows,
                policy,
                rate_process,
                placement,
                range(1, spec.horizon + 1),
                faults=faults,
                incremental=incremental,
            )
        except InfeasibleError as exc:
            return ("infeasible", exc.diagnosis.get("reason"), None)
        delta = snapshot_delta(snapshot(), before)
        return ("ok", json.dumps(day.to_dict(), sort_keys=True), delta["counters"])
    finally:
        set_compute_cache(previous)


def check_incremental_day(
    spec: FaultCaseSpec,
) -> tuple[list[Violation], int, str]:
    """Differential: incremental vs cold day, bytes and effort.

    Returns ``(violations, checks, outcome)`` where outcome is ``"ok"``
    or ``"infeasible"`` (matching diagnoses on both paths).
    """
    violations: list[Violation] = []
    checks = 0
    cold_kind, cold_payload, cold_counts = _simulate_spec(spec, incremental=False)
    inc_kind, inc_payload, inc_counts = _simulate_spec(spec, incremental=True)
    checks += 1
    if cold_kind != inc_kind:
        violations.append(
            Violation(
                "incremental_outcome",
                f"cold path finished {cold_kind!r} but incremental "
                f"finished {inc_kind!r}",
                {"cold": cold_payload, "incremental": inc_payload},
            )
        )
        return violations, checks, cold_kind
    if cold_kind == "infeasible":
        checks += 1
        if cold_payload != inc_payload:
            violations.append(
                Violation(
                    "incremental_diagnosis",
                    "both paths infeasible but with different diagnoses",
                    {"cold": cold_payload, "incremental": inc_payload},
                )
            )
        return violations, checks, "infeasible"
    checks += 1
    if cold_payload != inc_payload:
        violations.append(
            Violation(
                "incremental_day_bits",
                "incremental DayResult differs from the cold oracle",
                {
                    "len_cold": len(cold_payload),
                    "len_incremental": len(inc_payload),
                },
            )
        )
    # effort: a degraded hour must cost the incremental path strictly
    # fewer cold APSP solves (seeded views replace them)
    _topology, _flows, _rates, faults = spec.build()
    degraded_hours = any(
        not faults.state_at(h).is_healthy for h in range(1, spec.horizon + 1)
    )
    cold_apsp = cold_counts.get("apsp_computes", 0)
    inc_apsp = inc_counts.get("apsp_computes", 0)
    checks += 1
    if inc_apsp > cold_apsp or (degraded_hours and inc_apsp >= cold_apsp):
        violations.append(
            Violation(
                "incremental_apsp_effort",
                f"incremental path ran {inc_apsp} cold APSP solves vs "
                f"{cold_apsp} on the cold path "
                f"(degraded_hours={degraded_hours})",
                {
                    "cold": cold_counts,
                    "incremental": inc_counts,
                },
            )
        )
    return violations, checks, "ok"


def run_incremental_case(task) -> dict:
    """Table-level + day-level checks for one seeded case (picklable)."""
    spec, _rtol = task
    count("incremental_cases")
    violations: list[Violation] = []
    outcome = "completed"
    checks = 0
    try:
        topology, _flows, _rates, faults = spec.build()
        table_violations, table_checks = check_dynamic_tables(topology, faults)
        violations += table_violations
        checks += table_checks
        day_violations, day_checks, day_outcome = check_incremental_day(spec)
        violations += day_violations
        checks += day_checks
        if day_outcome == "infeasible":
            outcome = "infeasible"
    except Exception as exc:  # a crash on a generated scenario is a finding
        violations.append(
            Violation(
                "exception",
                f"{type(exc).__name__}: {exc}",
                {"error": repr(exc)},
            )
        )
        outcome = "error"
    if violations:
        count("incremental_violations", len(violations))
    return {
        "case_id": spec.case_id,
        "family": spec.family,
        "policy": spec.policy,
        "outcome": outcome,
        "checks": checks,
        "violations": [v.to_dict() for v in violations],
        "spec": spec.to_dict(),
    }


@dataclass(frozen=True)
class IncrementalCampaignConfig:
    cases: int = 200
    seed: int = 0
    workers: int = 1
    rtol: float = DEFAULT_RTOL
    journal_path: str | Path | None = None
    report_path: str | Path | None = None


def run_incremental_campaign(config: IncrementalCampaignConfig) -> dict:
    """Run the incremental campaign; returns the JSON-friendly report dict."""
    start = time.perf_counter()
    hits_before = counters().get("journal_hits", 0)
    specs = generate_incremental_cases(config.seed, config.cases)
    tasks = [(spec, config.rtol) for spec in specs]
    journal = Journal(config.journal_path) if config.journal_path else None
    try:
        resilience = ResilienceConfig(
            scope=f"verify-incremental@{config.seed}", journal=journal
        )
        records = map_tasks(
            run_incremental_case, tasks, workers=config.workers, resilience=resilience
        )
    finally:
        if journal is not None:
            journal.close()
    failures = [r for r in records if r["violations"]]
    elapsed = time.perf_counter() - start
    report = {
        "config": {
            "cases": config.cases,
            "seed": config.seed,
            "workers": config.workers,
            "rtol": config.rtol,
        },
        "cases": len(records),
        "checks": int(sum(r["checks"] for r in records)),
        "violations": int(sum(len(r["violations"]) for r in records)),
        "coverage": {
            "by_family": dict(Counter(r["family"] for r in records)),
            "by_policy": dict(Counter(r["policy"] for r in records)),
            "by_outcome": dict(Counter(r["outcome"] for r in records)),
        },
        "failures": failures,
        "runtime": {
            "elapsed_seconds": elapsed,
            "workers": config.workers,
            "journal_hits": counters().get("journal_hits", 0) - hits_before,
        },
    }
    if config.report_path:
        from repro.utils.results_io import write_text_atomic

        write_text_atomic(Path(config.report_path), json.dumps(report, indent=2))
    return report
