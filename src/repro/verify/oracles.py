"""Size-gated exact oracles: ground truth where the instance is small.

The exhaustive solvers (:func:`~repro.core.optimal.optimal_placement` /
:func:`~repro.core.optimal.optimal_migration`, Algorithms 4 and 6) are
exponential in the chain length, so they are only usable as referees on
instances below a size gate.  :class:`OracleGate` encodes that gate; the
``oracle_*`` wrappers return ``None`` instead of stalling when an
instance is too big or the branch-and-bound budget runs out, and
:func:`check_oracle_floor` turns the oracle's answer into violations:

* no solver may report a cost *below* the exact optimum (an impossible
  claim — either the cost is mispriced or the oracle is wrong), and
* a solver claiming to *be* the exact algorithm must match the oracle's
  cost outright.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constraints import Constraints
from repro.core.optimal import optimal_migration, optimal_placement
from repro.core.placement import chain_size
from repro.core.types import MigrationResult, PlacementResult
from repro.errors import BudgetExceededError
from repro.runtime.cache import ComputeCache
from repro.topology.base import Topology
from repro.verify.invariants import DEFAULT_RTOL, Violation, _rel_err
from repro.workload.flows import FlowSet
from repro.workload.sfc import SFC

__all__ = ["OracleGate", "oracle_placement", "oracle_migration", "check_oracle_floor"]


@dataclass(frozen=True)
class OracleGate:
    """When is the exhaustive search a usable referee?

    ``max_switches ** max_vnfs`` bounds the raw search space; ``budget``
    additionally caps the branch-and-bound node count so an adversarial
    weight pattern cannot stall a verification campaign.
    """

    max_switches: int = 12
    max_vnfs: int = 4
    budget: int = 300_000

    def admits(self, topology: Topology, sfc: SFC | int) -> bool:
        return (
            topology.num_switches <= self.max_switches
            and chain_size(sfc) <= self.max_vnfs
        )


def oracle_placement(
    topology: Topology,
    flows: FlowSet,
    sfc: SFC | int,
    *,
    gate: OracleGate | None = None,
    constraints: Constraints | None = None,
    cache: ComputeCache | None = None,
) -> PlacementResult | None:
    """Exact optimum, or ``None`` when the gate (or the budget) says no.

    Active ``constraints`` make this the *constrained* exact referee; a
    diagnosed :class:`~repro.errors.InfeasibleError` propagates — for the
    oracle "no feasible placement exists" is an answer, not a failure.
    """
    gate = gate if gate is not None else OracleGate()
    if not gate.admits(topology, sfc):
        return None
    try:
        return optimal_placement(
            topology, flows, sfc,
            budget=gate.budget, constraints=constraints, cache=cache,
        )
    except BudgetExceededError:
        return None


def oracle_migration(
    topology: Topology,
    flows: FlowSet,
    source_placement: np.ndarray,
    mu: float,
    *,
    gate: OracleGate | None = None,
    constraints: Constraints | None = None,
    cache: ComputeCache | None = None,
) -> MigrationResult | None:
    """Exact migration optimum, or ``None`` when gated/budget-exhausted.

    As with :func:`oracle_placement`, active ``constraints`` turn this
    into the constrained referee and infeasibility propagates.
    """
    gate = gate if gate is not None else OracleGate()
    n = int(np.asarray(source_placement).size)
    if not gate.admits(topology, n):
        return None
    try:
        return optimal_migration(
            topology, flows, source_placement, mu,
            budget=gate.budget, constraints=constraints, cache=cache,
        )
    except BudgetExceededError:
        return None


def check_oracle_floor(
    result,
    oracle,
    *,
    exact: bool = False,
    rtol: float = DEFAULT_RTOL,
) -> list[Violation]:
    """``result.cost`` must be ≥ the oracle's optimum (== when ``exact``).

    ``oracle is None`` (gated instance) yields no violations — the floor
    simply was not computable.
    """
    if oracle is None:
        return []
    got, opt = float(result.cost), float(oracle.cost)
    tol = rtol * max(1.0, abs(opt))
    if got < opt - tol:
        return [
            Violation(
                "oracle_floor",
                f"cost {got!r} beats the exact optimum {opt!r} "
                f"({result.meta.get('algorithm', '?')} vs {oracle.meta['algorithm']})",
                {"reported": got, "optimum": opt, "gap": got - opt},
            )
        ]
    if exact and _rel_err(got, opt) > rtol:
        return [
            Violation(
                "oracle_exact",
                f"an exact solver reported {got!r} but the oracle found {opt!r}",
                {"reported": got, "optimum": opt, "gap": got - opt},
            )
        ]
    return []
