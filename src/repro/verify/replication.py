"""Replication verification: the migrate-vs-replicate lattice, audited.

A sixth campaign family alongside invariants / oracles / metamorphic /
faults / incremental: each :class:`ReplicationCaseSpec` describes one
simulated day under the ``tom-replication`` policy — fault-free or with
a seeded :class:`~repro.faults.process.FaultProcess` — and
:func:`check_replication_day` audits the :class:`~repro.sim.engine.
DayResult` from scratch:

* **accounting** — every hour's booked costs are recomputed
  independently and must sum to the Eq. 8 components: serving cost is
  Eq. 1 with a per-flow min over the logged copies, sync cost is
  ``sync_fraction · Λ · Σc(p, q_r)``, and ``C_r`` is exactly
  ``ρ·μ·Σc(p, q)`` for the logged new copy;
* **dominance** — ``C_r <= C_b`` whenever replicate was chosen (the
  admissibility gate of DESIGN.md §5j), and the chosen action is the
  minimum of the hour's priced option menu;
* **feasibility** — primary + replica switches are globally distinct,
  and under faults every instance (and every failover target) lives in
  the surviving component while repair pricing counts *paid* moves only;
* **metamorphic anchors** — ρ→0 reproduces the plain TOM
  (:class:`~repro.sim.policies.MParetoPolicy`) day **byte-identically**
  (replication disabled: a zero-cost replica would mean no state was
  copied), and ρ→∞ never replicates (records byte-identical too, via
  the dominance gate);
* **oracle floor** — :func:`~repro.core.replication.
  exact_replication_step` over the full keep/migrate/replicate lattice
  is replayed on every logged hour state and may never beat the
  greedy's booked hour total from below... rather, the greedy may never
  beat the exact (``exact <= greedy``);
* **determinism** — re-simulating the same spec reproduces a
  byte-identical :class:`DayResult`.

As in the faults family, a mid-day diagnosed
:class:`~repro.errors.InfeasibleError` is a valid recorded outcome, not
a violation.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.placement import dp_placement
from repro.core.replication import ReplicaSet, exact_replication_step
from repro.errors import InfeasibleError
from repro.faults import FaultConfig, FaultProcess, degrade
from repro.runtime.executor import map_tasks
from repro.runtime.instrument import count, counters
from repro.runtime.journal import Journal
from repro.runtime.resilience import ResilienceConfig
from repro.sim.engine import DayResult, simulate_day
from repro.sim.policies import MParetoPolicy, TomReplicationPolicy
from repro.verify.faults import FAULT_FAMILIES
from repro.verify.invariants import DEFAULT_RTOL, Violation
from repro.verify.scenarios import FAMILIES, sample_rates
from repro.workload.diurnal import DiurnalModel
from repro.workload.dynamics import RedrawnRates
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel

__all__ = [
    "REPLICATION_FAMILIES",
    "ReplicationCaseSpec",
    "generate_replication_cases",
    "recompute_serving_cost",
    "check_replication_day",
    "run_replication_case",
    "ReplicationCampaignConfig",
    "run_replication_campaign",
]

#: same fabric ladder as the faults family: big enough that replicas
#: (and a failed switch or two) leave a meaningful surviving component
REPLICATION_FAMILIES = FAULT_FAMILIES

#: ρ→∞ stand-in for the never-replicate anchor (any ρ > 1 is structurally
#: replication-free via the C_r <= C_b dominance gate; a huge one makes
#: the anchor's intent unmistakable in reports)
RHO_NEVER = 1e9


@dataclass(frozen=True)
class ReplicationCaseSpec:
    """Everything needed to rebuild one replication case, bit-for-bit."""

    case_id: int
    family: str
    params: tuple
    n: int
    num_flows: int
    flow_seed: int
    rate_seed: int
    intra_rack: float
    mu: float
    rho: float
    sync_fraction: float
    max_replicas: int
    exact: bool
    horizon: int
    faulty: bool
    fault_seed: int
    switch_rate: float
    host_rate: float
    link_rate: float
    mean_repair_hours: float

    def build(self):
        """Materialize ``(topology, flows, rate_process, fault_process|None)``."""
        topology = FAMILIES[self.family].builder(*self.params)
        flows = place_vm_pairs(
            topology, self.num_flows, self.intra_rack, seed=self.flow_seed
        )
        flows = flows.with_rates(
            sample_rates("facebook", self.num_flows, self.rate_seed)
        )
        diurnal = DiurnalModel(num_hours=self.horizon)
        rate_process = RedrawnRates(
            flows,
            diurnal,
            np.zeros(self.num_flows),
            FacebookTrafficModel(),
            seed=self.rate_seed,
        )
        faults = None
        if self.faulty:
            faults = FaultProcess(
                topology,
                FaultConfig(
                    switch_rate=self.switch_rate,
                    host_rate=self.host_rate,
                    link_rate=self.link_rate,
                    mean_repair_hours=self.mean_repair_hours,
                ),
                seed=self.fault_seed,
                horizon=self.horizon,
            )
        return topology, flows, rate_process, faults

    def make_policy(self, topology, *, policy: str = "tom-replication",
                    rho: float | None = None):
        if policy == "mpareto":
            return MParetoPolicy(topology, mu=self.mu)
        if policy == "tom-replication":
            return TomReplicationPolicy(
                topology,
                mu=self.mu,
                rho=self.rho if rho is None else rho,
                sync_fraction=self.sync_fraction,
                max_replicas=self.max_replicas,
                exact=self.exact,
            )
        raise ValueError(f"unknown replication-case policy {policy!r}")

    def simulate(self, *, policy: str = "tom-replication",
                 rho: float | None = None) -> DayResult:
        """One full day for this spec (fresh everything)."""
        topology, flows, rate_process, faults = self.build()
        placement = dp_placement(topology, flows, self.n).placement
        return simulate_day(
            topology,
            flows,
            self.make_policy(topology, policy=policy, rho=rho),
            rate_process,
            placement,
            range(1, self.horizon + 1),
            faults=faults,
        )

    def to_dict(self) -> dict:
        return {
            "case_id": self.case_id,
            "family": self.family,
            "params": list(self.params),
            "n": self.n,
            "num_flows": self.num_flows,
            "flow_seed": self.flow_seed,
            "rate_seed": self.rate_seed,
            "intra_rack": self.intra_rack,
            "mu": self.mu,
            "rho": self.rho,
            "sync_fraction": self.sync_fraction,
            "max_replicas": self.max_replicas,
            "exact": self.exact,
            "horizon": self.horizon,
            "faulty": self.faulty,
            "fault_seed": self.fault_seed,
            "switch_rate": self.switch_rate,
            "host_rate": self.host_rate,
            "link_rate": self.link_rate,
            "mean_repair_hours": self.mean_repair_hours,
        }


def generate_replication_cases(seed: int, cases: int) -> list[ReplicationCaseSpec]:
    """``cases`` independent replication scenarios from one campaign seed.

    Mirrors :func:`repro.verify.faults.generate_fault_cases`: per-case
    :class:`~numpy.random.SeedSequence` children keep case ``i`` stable
    across runs and ``--cases`` counts.  Half the cases run fault-free
    (where the exact-oracle replay applies), half under a seeded fault
    process (where the failover invariants apply); ρ is drawn from the
    admissible band (0, 1) so the replicate action is genuinely
    reachable — the anchors re-run every case at ρ=0 and ρ→∞ anyway.
    """
    root = np.random.SeedSequence(seed)
    specs = []
    for case_id, child in enumerate(root.spawn(cases)):
        rng = np.random.default_rng(child)
        family = sorted(REPLICATION_FAMILIES)[
            int(rng.integers(len(REPLICATION_FAMILIES)))
        ]
        params = REPLICATION_FAMILIES[family][
            int(rng.integers(len(REPLICATION_FAMILIES[family])))
        ]
        specs.append(
            ReplicationCaseSpec(
                case_id=case_id,
                family=family,
                params=params,
                n=int(rng.integers(1, 4)),
                num_flows=int(rng.integers(2, 9)),
                flow_seed=int(rng.integers(2**31 - 1)),
                rate_seed=int(rng.integers(2**31 - 1)),
                intra_rack=float(rng.choice([0.0, 0.5, 0.8])),
                mu=float(rng.choice([0.0, 5.0, 100.0, 5000.0])),
                rho=float(rng.choice([0.05, 0.2, 0.5, 0.9])),
                sync_fraction=float(rng.choice([0.0, 0.0005, 0.005])),
                max_replicas=int(rng.choice([1, 2])),
                exact=bool(rng.random() < 0.25),
                horizon=int(rng.choice([6, 12])),
                faulty=bool(rng.random() < 0.5),
                fault_seed=int(rng.integers(2**31 - 1)),
                switch_rate=float(rng.choice([0.02, 0.05, 0.1])),
                host_rate=float(rng.choice([0.0, 0.05])),
                link_rate=float(rng.choice([0.0, 0.02])),
                mean_repair_hours=float(rng.choice([2.0, 4.0])),
            )
        )
    return specs


def recompute_serving_cost(distances, flows, copies) -> float:
    """Eq. 1 with a per-flow min over chain copies, from scratch.

    Deliberately a plain Python double loop sharing no code with
    :func:`repro.core.replication.serving_cost` — the audit must not
    inherit the solver's bugs.
    """
    total = 0.0
    for i in range(flows.num_flows):
        s = int(flows.sources[i])
        d = int(flows.destinations[i])
        lam = float(flows.rates[i])
        best = None
        for row in copies:
            route = float(distances[s, int(row[0])])
            for j in range(len(row) - 1):
                route += float(distances[int(row[j]), int(row[j + 1])])
            route += float(distances[int(row[-1]), d])
            if best is None or route < best:
                best = route
        total += lam * best
    return total


def _sync_volume(distances, primary, replicas) -> float:
    return float(
        sum(
            float(distances[int(p), int(q)])
            for row in replicas
            for p, q in zip(primary, row)
        )
    )


def check_replication_day(
    topology,
    flows,
    rate_process,
    faults,
    day: DayResult,
    spec: ReplicationCaseSpec,
    *,
    rtol: float = DEFAULT_RTOL,
) -> list[Violation]:
    """Audit one ``tom-replication`` :class:`DayResult` from scratch."""
    from repro.sim.engine import _park_flows

    violations: list[Violation] = []
    rep_extra = day.extra.get("replication", {})
    log = rep_extra.get("log", [])
    fault_log = day.extra.get("fault_log", [])
    healthy = topology.graph.distances

    # map each hour record to its fault state / degraded view, and work
    # out which hours skipped the policy step (everything dropped)
    per_hour = []
    log_index = 0
    for idx, record in enumerate(day.records):
        hour = record.hour
        if faults is None:
            view_dist = healthy
            audit = None
            drop_mask = np.zeros(flows.num_flows, dtype=bool)
            skipped = False
            entry = None
        else:
            state = faults.state_at(hour)
            if state.is_healthy:
                view_dist, audit = healthy, None
                drop_mask = np.zeros(flows.num_flows, dtype=bool)
            else:
                view, audit = degrade(topology, state)
                view_dist = view.graph.distances
                drop_mask = audit.dropped_flow_mask(flows)
            live_hosts = (
                audit.surviving_hosts if audit is not None else topology.hosts
            )
            skipped = bool(drop_mask.all() or live_hosts.size == 0)
            entry = fault_log[idx] if idx < len(fault_log) else None
        rep_entry = None
        if not skipped and log_index < len(log):
            rep_entry = log[log_index]
            log_index += 1
        per_hour.append((record, rep_entry, entry, view_dist, audit, drop_mask, skipped))
    if log_index != len(log):
        violations.append(
            Violation(
                "replication_log_alignment",
                f"replication log has {len(log)} entries but only "
                f"{log_index} policy steps ran",
                {"log_entries": len(log), "steps": log_index},
            )
        )
        return violations

    for record, rep_entry, entry, view_dist, audit, drop_mask, skipped in per_hour:
        hour = record.hour
        rates = rate_process.rates_at(hour)
        effective = np.where(drop_mask, 0.0, rates)

        # Eq. 8 component split of the hour total
        want_total = (
            record.communication_cost
            + record.migration_cost
            + record.repair_cost
            + record.replication_cost
            + record.sync_cost
        )
        if abs(record.total_cost - want_total) > rtol * max(1.0, abs(want_total)):
            violations.append(
                Violation(
                    "replication_total_split",
                    f"hour {hour}: total_cost {record.total_cost!r} != "
                    f"component sum {want_total!r}",
                    {"hour": hour},
                )
            )

        if skipped or rep_entry is None:
            continue

        primary = [int(s) for s in rep_entry["primary_after"]]
        replicas = [[int(s) for s in row] for row in rep_entry["replicas_after"]]

        # feasibility: globally distinct, valid switches
        flat = primary + [s for row in replicas for s in row]
        switch_set = set(int(s) for s in topology.switches.tolist())
        if len(set(flat)) != len(flat) or not set(flat) <= switch_set:
            violations.append(
                Violation(
                    "replication_distinct",
                    f"hour {hour}: primary+replicas not globally distinct "
                    "valid switches",
                    {"hour": hour, "primary": primary, "replicas": replicas},
                )
            )

        # serving cost: Eq. 1 with per-flow min over copies, from scratch
        if faults is None:
            served = flows.with_rates(effective)
        else:
            park = (
                int(audit.surviving_hosts[0])
                if audit is not None
                else int(topology.hosts[0])
            )
            served = _park_flows(flows, drop_mask, park).with_rates(effective)
        want_comm = recompute_serving_cost(
            view_dist, served, [primary] + replicas
        )
        if abs(record.communication_cost - want_comm) > rtol * max(
            1.0, abs(want_comm)
        ):
            violations.append(
                Violation(
                    "replication_serving_cost",
                    f"hour {hour}: communication cost "
                    f"{record.communication_cost!r} != min-over-copies Eq. 1 "
                    f"{want_comm!r}",
                    {"hour": hour, "got": record.communication_cost,
                     "want": want_comm},
                )
            )

        # sync accounting: sync_fraction · Λ · Σ c(p_j, q_{r,j})
        total_rate = float(effective.sum())
        want_sync = spec.sync_fraction * total_rate * _sync_volume(
            view_dist, primary, replicas
        )
        if abs(record.sync_cost - want_sync) > rtol * max(1.0, abs(want_sync)):
            violations.append(
                Violation(
                    "replication_sync_cost",
                    f"hour {hour}: sync_cost {record.sync_cost!r} != "
                    f"recomputed {want_sync!r}",
                    {"hour": hour, "got": record.sync_cost, "want": want_sync},
                )
            )

        # C_r accounting + the C_r <= C_b dominance gate
        if rep_entry["action"] == "replicate":
            new_row = replicas[-1]
            volume = float(
                sum(view_dist[int(p), int(q)] for p, q in zip(primary, new_row))
            )
            want_cr = spec.rho * spec.mu * volume
            if abs(record.replication_cost - want_cr) > rtol * max(1.0, want_cr):
                violations.append(
                    Violation(
                        "replication_cr_accounting",
                        f"hour {hour}: C_r {record.replication_cost!r} != "
                        f"rho*mu*dist {want_cr!r}",
                        {"hour": hour, "got": record.replication_cost,
                         "want": want_cr},
                    )
                )
            c_b = spec.mu * volume
            if record.replication_cost > c_b + rtol * max(1.0, c_b):
                violations.append(
                    Violation(
                        "replication_cr_dominance",
                        f"hour {hour}: replicate chosen with C_r "
                        f"{record.replication_cost!r} > C_b {c_b!r}",
                        {"hour": hour, "c_r": record.replication_cost, "c_b": c_b},
                    )
                )
        elif record.replication_cost != 0.0:
            violations.append(
                Violation(
                    "replication_cr_accounting",
                    f"hour {hour}: action {rep_entry['action']!r} booked "
                    f"nonzero C_r {record.replication_cost!r}",
                    {"hour": hour},
                )
            )

        # the chosen action is the minimum of the priced option menu
        options = rep_entry.get("options", {})
        if options:
            hour_total = (
                rep_entry["communication_cost"]
                + rep_entry["migration_cost"]
                + rep_entry["replication_cost"]
                + rep_entry["sync_cost"]
            )
            best = min(options.values())
            if hour_total > best + rtol * max(1.0, abs(best)):
                violations.append(
                    Violation(
                        "replication_choice_min",
                        f"hour {hour}: chose {rep_entry['action']!r} at "
                        f"{hour_total!r} but menu minimum was {best!r}",
                        {"hour": hour, "options": options},
                    )
                )

        # fault-mode invariants: failover targets, paid-move pricing
        if entry is not None:
            live = (
                {int(s) for s in audit.surviving_switches.tolist()}
                if audit is not None
                else switch_set
            )
            if not set(flat) <= live:
                violations.append(
                    Violation(
                        "replication_containment",
                        f"hour {hour}: instance on failed/partitioned switch",
                        {"hour": hour, "instances": sorted(set(flat) - live)},
                    )
                )
            for _, _, target in entry.get("failovers", []):
                if int(target) not in live:
                    violations.append(
                        Violation(
                            "replication_failover_target",
                            f"hour {hour}: failover to dead switch {target}",
                            {"hour": hour, "entry": entry["failovers"]},
                        )
                    )
            if record.num_failovers != len(entry.get("failovers", [])):
                violations.append(
                    Violation(
                        "replication_failover_count",
                        f"hour {hour}: num_failovers {record.num_failovers} "
                        f"!= {len(entry.get('failovers', []))} logged",
                        {"hour": hour},
                    )
                )
            want_distance = float(
                sum(healthy[int(a), int(b)] for _, a, b in entry["repairs"])
            )
            want_repair = spec.mu * want_distance
            if abs(record.repair_cost - want_repair) > rtol * max(1.0, want_repair):
                violations.append(
                    Violation(
                        "replication_repair_pricing",
                        f"hour {hour}: repair_cost {record.repair_cost!r} != "
                        f"mu × paid-move distance {want_repair!r} "
                        "(failovers must be free)",
                        {"hour": hour, "got": record.repair_cost,
                         "want": want_repair},
                    )
                )
    return violations


def _stripped(day: DayResult, drop_extra_keys: tuple[str, ...] = ()) -> str:
    """Canonical JSON of a DayResult minus the policy name (and keys)."""
    payload = day.to_dict()
    payload.pop("policy", None)
    for key in drop_extra_keys:
        payload.get("extra", {}).pop(key, None)
    return json.dumps(payload, sort_keys=True)


def _records_json(day: DayResult) -> str:
    return json.dumps([r.to_dict() for r in day.records], sort_keys=True)


def check_oracle_replay(
    topology, flows, rate_process, day: DayResult, spec: ReplicationCaseSpec,
    *, rtol: float = DEFAULT_RTOL,
) -> list[Violation]:
    """Replay every logged hour state through the exact lattice solver.

    Fault-free cases only (the greedy and the oracle must see the same
    fabric view): ``exact_replication_step`` enumerates a strict
    superset of the greedy's menu, so its total may never exceed the
    greedy's booked hour total.
    """
    violations: list[Violation] = []
    log = day.extra.get("replication", {}).get("log", [])
    for record, rep_entry in zip(day.records, log):
        hour = record.hour
        state = ReplicaSet(
            primary=np.asarray(rep_entry["primary_before"], dtype=np.int64),
            replicas=np.asarray(
                rep_entry["replicas_before"], dtype=np.int64
            ).reshape(-1, len(rep_entry["primary_before"])),
        )
        hour_flows = flows.with_rates(rate_process.rates_at(hour))
        exact = exact_replication_step(
            topology,
            hour_flows,
            state,
            spec.mu,
            rho=spec.rho,
            sync_fraction=spec.sync_fraction,
            max_replicas=spec.max_replicas,
        )
        greedy_total = (
            rep_entry["communication_cost"]
            + rep_entry["migration_cost"]
            + rep_entry["replication_cost"]
            + rep_entry["sync_cost"]
        )
        if exact.total_cost > greedy_total + rtol * max(1.0, abs(greedy_total)):
            violations.append(
                Violation(
                    "replication_oracle_floor",
                    f"hour {hour}: exact lattice total {exact.total_cost!r} "
                    f"exceeds the greedy's booked {greedy_total!r}",
                    {"hour": hour, "exact": exact.total_cost,
                     "greedy": greedy_total, "exact_action": exact.action},
                )
            )
    return violations


def _simulate_or_none(
    spec: ReplicationCaseSpec, *, policy: str = "tom-replication",
    rho: float | None = None,
) -> DayResult | None:
    """Simulate, treating a diagnosed infeasibility as ``None``."""
    try:
        return spec.simulate(policy=policy, rho=rho)
    except InfeasibleError as exc:
        if exc.diagnosis.get("reason"):
            return None
        raise


def run_replication_case(task) -> dict:
    """Simulate, audit, anchor-check and determinism-check one case.

    Module-level and driven by a picklable ``(spec, rtol)`` task so it
    can run in worker processes and be journalled for resume.
    """
    spec, rtol = task
    count("replication_cases")
    violations: list[Violation] = []
    outcome = "completed"
    checks = 0
    try:
        topology, flows, rate_process, faults = spec.build()
        try:
            day = spec.simulate()
        except InfeasibleError as exc:
            if exc.diagnosis.get("reason"):
                outcome = "infeasible"
                checks += 1
            else:
                violations.append(
                    Violation(
                        "replication_infeasible_diagnosis",
                        f"InfeasibleError without diagnosis: {exc}",
                        {"error": repr(exc)},
                    )
                )
            day = None
        if day is not None:
            checks += 1
            violations += check_replication_day(
                topology, flows, rate_process, faults, day, spec, rtol=rtol
            )

            # ρ→0 anchor: replication disabled == plain TOM, byte for byte.
            # The anchor runs follow the *no-replica* trajectory, which on
            # a faulty fabric may go (diagnosed-)infeasible even when the
            # replicated day survived — but ρ=0, ρ→∞ and mpareto all walk
            # the same trajectory, so they must agree in fate too.
            checks += 1
            zero = _simulate_or_none(spec, rho=0.0)
            plain = _simulate_or_none(spec, policy="mpareto")
            never = _simulate_or_none(spec, rho=RHO_NEVER)
            if (zero is None) != (plain is None) or (
                zero is not None and _stripped(zero) != _stripped(plain)
            ):
                violations.append(
                    Violation(
                        "replication_rho0_anchor",
                        "rho=0 day is not byte-identical to the mpareto day",
                        {"case_id": spec.case_id},
                    )
                )

            # ρ→∞ anchor: the dominance gate never opens, so nothing ever
            # replicates.  For the greedy the no-replica hours *adopt* the
            # mPareto step's own floats, so the records are additionally
            # byte-identical to plain TOM's; the exact lattice instead
            # enumerates every migration frontier (a strictly stronger
            # migrate policy), so only the structural half applies there.
            checks += 1
            if never is not None and never.total_replications != 0:
                violations.append(
                    Violation(
                        "replication_rho_inf_anchor",
                        "rho→∞ day still replicated",
                        {
                            "case_id": spec.case_id,
                            "replications": never.total_replications,
                        },
                    )
                )
            elif not spec.exact and (
                (never is None) != (plain is None)
                or (
                    never is not None
                    and _records_json(never) != _records_json(plain)
                )
            ):
                violations.append(
                    Violation(
                        "replication_rho_inf_anchor",
                        "rho→∞ greedy day diverged from the mpareto records",
                        {"case_id": spec.case_id},
                    )
                )

            # determinism: fresh everything, same bytes
            checks += 1
            replay = spec.simulate()
            if _stripped(day) != _stripped(replay):
                violations.append(
                    Violation(
                        "replication_determinism",
                        "re-simulating the same spec changed the DayResult",
                        {"case_id": spec.case_id},
                    )
                )

            # exact-oracle floor on every logged hour (fault-free cases)
            if faults is None:
                checks += 1
                violations += check_oracle_replay(
                    topology, flows, rate_process, day, spec, rtol=rtol
                )

            # dropped traffic is placement-independent, so replicas can
            # never change it: byte-equal series against the mpareto day
            if (
                faults is not None
                and plain is not None
                and len(day.records) == len(plain.records)
            ):
                checks += 1
                mine = [r.dropped_traffic for r in day.records]
                theirs = [r.dropped_traffic for r in plain.records]
                if mine != theirs:
                    violations.append(
                        Violation(
                            "replication_dropped",
                            "dropped_traffic series diverged from the "
                            "no-replica run on the same fault stream",
                            {"case_id": spec.case_id},
                        )
                    )
    except Exception as exc:  # a crash on a generated scenario is a finding
        violations.append(
            Violation(
                "exception",
                f"{type(exc).__name__}: {exc}",
                {"error": repr(exc)},
            )
        )
        outcome = "error"
    if violations:
        count("replication_violations", len(violations))
    return {
        "case_id": spec.case_id,
        "family": spec.family,
        "faulty": spec.faulty,
        "exact": spec.exact,
        "outcome": outcome,
        "checks": checks,
        "violations": [v.to_dict() for v in violations],
        "spec": spec.to_dict(),
    }


@dataclass(frozen=True)
class ReplicationCampaignConfig:
    cases: int = 100
    seed: int = 0
    workers: int = 1
    rtol: float = DEFAULT_RTOL
    journal_path: str | Path | None = None
    report_path: str | Path | None = None


def run_replication_campaign(config: ReplicationCampaignConfig) -> dict:
    """Run the replication campaign; returns the JSON-friendly report dict."""
    start = time.perf_counter()
    hits_before = counters().get("journal_hits", 0)
    specs = generate_replication_cases(config.seed, config.cases)
    tasks = [(spec, config.rtol) for spec in specs]
    journal = Journal(config.journal_path) if config.journal_path else None
    try:
        resilience = ResilienceConfig(
            scope=f"verify-replication@{config.seed}", journal=journal
        )
        records = map_tasks(
            run_replication_case, tasks, workers=config.workers,
            resilience=resilience,
        )
    finally:
        if journal is not None:
            journal.close()
    failures = [r for r in records if r["violations"]]
    elapsed = time.perf_counter() - start
    replicated = sum(
        1 for r in records if r["outcome"] == "completed"
    )
    report = {
        "config": {
            "cases": config.cases,
            "seed": config.seed,
            "workers": config.workers,
            "rtol": config.rtol,
        },
        "cases": len(records),
        "checks": int(sum(r["checks"] for r in records)),
        "violations": int(sum(len(r["violations"]) for r in records)),
        "coverage": {
            "by_family": dict(Counter(r["family"] for r in records)),
            "by_mode": dict(
                Counter(
                    ("faulty" if r["faulty"] else "fault_free")
                    + ("+exact" if r["exact"] else "")
                    for r in records
                )
            ),
            "by_outcome": dict(Counter(r["outcome"] for r in records)),
            "completed": replicated,
        },
        "failures": failures,
        "runtime": {
            "elapsed_seconds": elapsed,
            "workers": config.workers,
            "journal_hits": counters().get("journal_hits", 0) - hits_before,
        },
    }
    if config.report_path:
        from repro.utils.results_io import write_text_atomic

        write_text_atomic(Path(config.report_path), json.dumps(report, indent=2))
    return report
