"""The verification campaign: generate, solve, check, shrink, report.

One campaign = ``cases`` seeded scenarios (:mod:`repro.verify.scenarios`)
each pushed through its solver entry point and audited with every
applicable check:

* invariants (Eq. 1 / Eq. 8 / feasibility / triangle / LP floor),
* the size-gated exact oracles,
* differential bit-identity against the cold per-call solver (for the
  session entry points), and
* the metamorphic transforms whose cost relation is sound for the
  case's algorithm (see :data:`APPLICABLE`).

Cases run through :func:`repro.runtime.executor.map_tasks`, so ``--workers``
fans them out and a :class:`~repro.runtime.journal.Journal` makes a
killed campaign resumable — completed cases replay from the journal
by content fingerprint.  Any failing case is then greedily shrunk
(:func:`repro.verify.scenarios.shrink_candidates`) to a minimal spec
that still fails, and everything lands in a JSON report.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.baselines.common import VMMigrationResult
from repro.baselines.greedy_liu import greedy_liu_placement
from repro.baselines.mcf_migration import mcf_vm_migration
from repro.baselines.plan import plan_vm_migration
from repro.baselines.random_placement import random_placement
from repro.baselines.steering import steering_placement
from repro.core.migration import mpareto_migration, no_migration
from repro.core.optimal import optimal_migration, optimal_placement
from repro.core.placement import dp_placement, dp_placement_top1
from repro.core.primal_dual import primal_dual_placement_top1
from repro.core.types import MigrationResult, PlacementResult
from repro.runtime.cache import ComputeCache
from repro.runtime.executor import map_tasks
from repro.runtime.instrument import count, counters
from repro.runtime.journal import Journal
from repro.runtime.resilience import ResilienceConfig
from repro.session import SolverSession
from repro.verify.diff import check_differential
from repro.verify.invariants import DEFAULT_RTOL, Violation, check_result
from repro.verify.metamorphic import TRANSFORMS
from repro.verify.oracles import (
    OracleGate,
    check_oracle_floor,
    oracle_migration,
    oracle_placement,
)
from repro.verify.scenarios import CaseSpec, generate_cases, shrink_candidates

__all__ = [
    "APPLICABLE",
    "CheckOptions",
    "CampaignConfig",
    "run_case",
    "shrink_case",
    "run_campaign",
]

#: which metamorphic transforms are *sound* for which algorithm.
#:
#: The governing rule: a transform is sound iff either (a) the solver's
#: selection score IS its reported objective — then a tie that flips
#: under the transform flips to an equally priced answer (``dp``,
#: ``optimal``, the decision-free ``none``) — or (b) the transform
#: provably cannot change the solver's decisions at all: power-of-two
#: ``scale`` multiplies every float comparison operand exactly, and
#: ``zero`` appends after flow 0 so the TOP-1 solvers never see it.
#:
#: The heuristics fail (a) in a way jittered weights do NOT repair:
#: every switch on a shortest s-d path ties *exactly* in
#: ``a_in + a_out`` (``c(s,u) + c(u,d) = c(s,d)``), so steering/greedy's
#: score-order, the stroll solvers' equal-cost tour reversals, and
#: mPareto's corridor choices all flip under relabeling while their
#: reported costs (priced on the full chain) do not follow.
#: ``primal-dual`` is not even scale-equivariant — its prize bisection
#: starts from the absolute bound ``Σw + 1.0``.  ``random`` places
#: independently of weights and rates, so any flow rewrite is sound but
#: relabeling (which permutes the switch array it samples) is not.
#: The VM baselines' capacity logic counts endpoints, so only ``scale``
#: is sound for them.
APPLICABLE: dict[str, frozenset] = {
    "dp": frozenset({"relabel", "scale", "split", "zero"}),
    "top1": frozenset({"scale", "zero"}),
    "dp-stroll": frozenset({"scale", "zero"}),
    "primal-dual": frozenset({"zero"}),
    "optimal": frozenset({"relabel", "scale", "split", "zero", "reverse"}),
    "steering": frozenset({"scale"}),
    "greedy": frozenset({"scale"}),
    "random": frozenset({"scale", "split", "zero"}),
    "mpareto": frozenset({"scale"}),
    "none": frozenset({"relabel", "scale", "split", "zero"}),
    "plan": frozenset({"scale"}),
    "mcf": frozenset({"scale"}),
}

#: power of two: scaling IEEE-754 sums by it is exact, so the scale
#: transform's cost relation holds bitwise for every solver
SCALE_FACTOR = 4.0

_PLACERS = {
    "dp": dp_placement,
    "top1": dp_placement_top1,
    "dp-stroll": dp_placement_top1,
    "primal-dual": primal_dual_placement_top1,
    "optimal": optimal_placement,
    "steering": steering_placement,
    "greedy": greedy_liu_placement,
    "random": random_placement,
}

_MIGRATORS = {
    "mpareto": mpareto_migration,
    "optimal": optimal_migration,
    "none": no_migration,
    "plan": plan_vm_migration,
    "mcf": mcf_vm_migration,
}

#: these price their cost on flow 0 only
_TOP1_ALGOS = ("top1", "dp-stroll", "primal-dual")


@dataclass(frozen=True)
class CheckOptions:
    """Which check layers a case runs (journalled alongside the spec)."""

    oracle: bool = True
    lp: bool = True
    metamorphic: bool = True
    differential: bool = True
    rtol: float = DEFAULT_RTOL
    gate: OracleGate = OracleGate()


@dataclass(frozen=True)
class CampaignConfig:
    cases: int = 100
    seed: int = 0
    workers: int = 1
    shrink: bool = True
    checks: CheckOptions = CheckOptions()
    #: corrupt this case's result on purpose (demo / self-test)
    inject_case: int | None = None
    inject_kind: str = "cost"
    journal_path: str | Path | None = None
    report_path: str | Path | None = None


def _solve_case(spec: CaseSpec, topology, flows, prev, *, cache=None):
    """Run the case's solver through its entry point.

    Returns ``(result, priced_flows)`` — the flow set the result's cost
    is defined under (the single-flow subset for the TOP-1 algorithms).
    """
    options = {}
    if cache is not None:
        options["cache"] = cache
    if spec.algo == "random":
        options["seed"] = spec.rate_seed
    if spec.mode == "place":
        if spec.entry == "cold":
            result = _PLACERS[spec.algo](topology, flows, spec.n, **options)
        else:
            session = SolverSession(topology, cache=cache)
            if spec.entry == "session":
                result = session.place(flows, spec.n, algo=spec.algo, **options)
            elif spec.entry == "solve":
                result = session.solve(flows, spec.n, algo=spec.algo, **options)
            elif spec.entry == "place_many":
                result = session.place_many(
                    [flows], spec.n, algo=spec.algo, **options
                )[0]
            else:
                raise ValueError(f"unknown entry {spec.entry!r}")
    else:
        if spec.entry == "cold":
            result = _MIGRATORS[spec.algo](topology, flows, prev, spec.mu, **options)
        else:
            session = SolverSession(topology, cache=cache)
            if spec.entry == "session":
                result = session.migrate(
                    prev, flows, mu=spec.mu, algo=spec.algo, **options
                )
            elif spec.entry == "solve":
                result = session.solve(
                    flows, spec.n, prev=prev, mu=spec.mu, algo=spec.algo, **options
                )
            else:
                raise ValueError(f"unknown entry {spec.entry!r}")
    priced = flows.subset(np.array([0])) if spec.algo in _TOP1_ALGOS else flows
    return result, priced


def _corrupt(result, kind: str):
    """Deliberately break a result so the invariants must flag it."""
    if kind == "cost":
        bump = abs(float(result.cost)) * 0.01 + 1.0
        if isinstance(result, MigrationResult):
            return MigrationResult(
                source=result.source,
                migration=result.migration,
                cost=result.cost + bump,
                communication_cost=result.communication_cost + bump,
                migration_cost=result.migration_cost,
                algorithm=result.algorithm,
                extra=dict(result.extra),
            )
        if isinstance(result, VMMigrationResult):
            return VMMigrationResult(
                flows=result.flows,
                vnf_placement=result.vnf_placement,
                cost=result.cost + bump,
                communication_cost=result.communication_cost + bump,
                migration_cost=result.migration_cost,
                num_migrated=result.num_migrated,
                algorithm=result.algorithm,
                extra=dict(result.extra),
            )
        return PlacementResult(
            placement=result.placement,
            cost=result.cost + bump,
            algorithm=result.algorithm,
            extra=dict(result.extra),
        )
    if kind == "duplicate":
        p = np.asarray(result.placement, dtype=np.int64).copy()
        if p.size >= 2:
            p[-1] = p[0]
        return PlacementResult(
            placement=p,
            cost=float(result.cost),
            algorithm=getattr(result, "algorithm", "?"),
            extra={},
        )
    raise ValueError(f"unknown corruption kind {kind!r}")


def _oracle_violations(spec, topology, priced, prev, result, options):
    if spec.mode == "place":
        oracle = oracle_placement(
            topology, priced, spec.n, gate=options.gate, cache=ComputeCache()
        )
    else:
        if spec.algo in ("plan", "mcf"):
            # the VM baselines optimize a different objective (moving
            # VMs, not VNFs); the VNF-migration optimum is no floor
            return []
        oracle = oracle_migration(
            topology, priced, prev, spec.mu, gate=options.gate, cache=ComputeCache()
        )
    return check_oracle_floor(
        result, oracle, exact=(spec.algo == "optimal"), rtol=options.rtol
    )


def _metamorphic_names(spec: CaseSpec) -> list[str]:
    names = APPLICABLE.get(spec.algo, frozenset())
    if spec.weight_seed is None:
        # unit weights are full of exact ties; only the (bitwise-safe)
        # scale relation survives tie-break flips
        names = names & {"scale"}
    if spec.mode == "migrate":
        names = names - {"reverse"}
    return sorted(names)


def _metamorphic_violations(spec, topology, flows, prev, base_cost, options):
    violations = []
    checks = 0
    for name in _metamorphic_names(spec):
        transform = TRANSFORMS[name]
        if name in ("relabel", "zero"):
            tr = transform(topology, flows, prev, seed=spec.flow_seed)
        elif name == "scale":
            tr = transform(topology, flows, prev, factor=SCALE_FACTOR)
        else:
            tr = transform(topology, flows, prev)
        checks += 1
        try:
            t_result, _ = _solve_case(
                spec, tr.topology, tr.flows, tr.prev, cache=ComputeCache()
            )
        except Exception as exc:  # a transform must never break solvability
            violations.append(
                Violation(
                    f"metamorphic_{name}",
                    f"solver raised {type(exc).__name__} on the "
                    f"{name}-transformed scenario: {exc}",
                    {"transform": name, "error": repr(exc)},
                )
            )
            continue
        want = tr.cost_factor * base_cost
        err = abs(float(t_result.cost) - want) / max(1.0, abs(want))
        if err > options.rtol:
            violations.append(
                Violation(
                    f"metamorphic_{name}",
                    f"{name}-transformed cost {float(t_result.cost)!r} != "
                    f"{tr.cost_factor:g} × base cost {base_cost!r} "
                    f"(rel err {err:.3e})",
                    {
                        "transform": name,
                        "transformed": float(t_result.cost),
                        "expected": want,
                        "base": base_cost,
                        "rel_err": err,
                    },
                )
            )
    return violations, checks


def run_case(task: tuple[CaseSpec, CheckOptions]) -> dict:
    """Build, solve and audit one case; returns a JSON-friendly record.

    Module-level and driven by a picklable task so it can run in worker
    processes and be journalled for resume.
    """
    spec, options = task
    count("verify_cases")
    violations: list[Violation] = []
    checks = 0
    try:
        topology, flows, prev = spec.build()
        result, priced = _solve_case(spec, topology, flows, prev)
        if spec.inject:
            result = _corrupt(result, spec.inject)
        checks += 1
        violations += check_result(
            topology,
            priced,
            result,
            mu=spec.mu if spec.mode == "migrate" else None,
            n=spec.n,
            lp=options.lp and spec.mode == "place",
            rtol=options.rtol,
        )
        if options.oracle:
            checks += 1
            violations += _oracle_violations(
                spec, topology, priced, prev, result, options
            )
        if options.differential and spec.entry != "cold":
            checks += 1
            cold_result, _ = _solve_case(
                replace(spec, entry="cold"),
                topology,
                flows,
                prev,
                cache=ComputeCache(),
            )
            violations += check_differential(result, cold_result)
        if options.metamorphic:
            meta_violations, meta_checks = _metamorphic_violations(
                spec, topology, flows, prev, float(result.cost), options
            )
            violations += meta_violations
            checks += meta_checks
    except Exception as exc:  # a crash on a generated scenario is a finding
        violations.append(
            Violation(
                "exception",
                f"{type(exc).__name__}: {exc}",
                {"error": repr(exc)},
            )
        )
    if violations:
        count("verify_violations", len(violations))
    return {
        "case_id": spec.case_id,
        "family": spec.family,
        "algo": spec.algo,
        "entry": spec.entry,
        "mode": spec.mode,
        "n": spec.n,
        "num_flows": spec.effective_flows,
        "checks": checks,
        "violations": [v.to_dict() for v in violations],
        "spec": spec.to_dict(),
    }


def shrink_case(
    spec: CaseSpec, options: CheckOptions, *, max_steps: int = 200
) -> tuple[CaseSpec, dict]:
    """Greedy descent to a minimal spec that still fails.

    Tries each candidate from :func:`shrink_candidates`; the first one
    that still produces a violation becomes the new best, and the search
    restarts from it.  Every candidate is strictly smaller in some
    bounded dimension, so this terminates (``max_steps`` is a belt and
    braces cap, not a tuning knob).
    """
    record = run_case((spec, options))
    if not record["violations"]:
        return spec, record
    best, best_record = spec, record
    for _ in range(max_steps):
        for candidate in shrink_candidates(best):
            candidate_record = run_case((candidate, options))
            if candidate_record["violations"]:
                best, best_record = candidate, candidate_record
                break
        else:
            break
    return best, best_record


def run_campaign(config: CampaignConfig) -> dict:
    """Run the whole campaign; returns the report dict (see module doc)."""
    start = time.perf_counter()
    hits_before = counters().get("journal_hits", 0)
    specs = generate_cases(config.seed, config.cases)
    if config.inject_case is not None:
        specs = [
            replace(s, inject=config.inject_kind)
            if s.case_id == config.inject_case
            else s
            for s in specs
        ]
    tasks = [(spec, config.checks) for spec in specs]
    journal = Journal(config.journal_path) if config.journal_path else None
    try:
        resilience = ResilienceConfig(
            scope=f"verify@{config.seed}", journal=journal
        )
        records = map_tasks(
            run_case, tasks, workers=config.workers, resilience=resilience
        )
    finally:
        if journal is not None:
            journal.close()
    failures = []
    for record in records:
        if not record["violations"]:
            continue
        failure = dict(record)
        if config.shrink:
            spec = specs[record["case_id"]]
            shrunk_spec, shrunk_record = shrink_case(spec, config.checks)
            failure["shrunk"] = {
                "spec": shrunk_spec.to_dict(),
                "num_flows": shrunk_spec.effective_flows,
                "violations": shrunk_record["violations"],
            }
        failures.append(failure)
    elapsed = time.perf_counter() - start
    report = {
        "config": {
            "cases": config.cases,
            "seed": config.seed,
            "workers": config.workers,
            "shrink": config.shrink,
            "rtol": config.checks.rtol,
            "inject_case": config.inject_case,
        },
        "cases": len(records),
        "checks": int(sum(r["checks"] for r in records)),
        "violations": int(sum(len(r["violations"]) for r in records)),
        "coverage": {
            "by_algo": dict(Counter(r["algo"] for r in records)),
            "by_family": dict(Counter(r["family"] for r in records)),
            "by_entry": dict(Counter(r["entry"] for r in records)),
            "by_mode": dict(Counter(r["mode"] for r in records)),
        },
        "failures": failures,
        "runtime": {
            "elapsed_seconds": elapsed,
            "workers": config.workers,
            "journal_hits": counters().get("journal_hits", 0) - hits_before,
        },
    }
    if config.report_path:
        import json

        from repro.utils.results_io import write_text_atomic

        write_text_atomic(Path(config.report_path), json.dumps(report, indent=2))
    return report
