"""Fault-injection verification: seeded survivability scenarios + invariants.

A fourth campaign family alongside invariants / oracles / metamorphic:
each :class:`FaultCaseSpec` describes one fault-aware simulated day —
topology, workload, a seeded :class:`~repro.faults.process.FaultProcess`
and a migration policy — and :func:`check_fault_day` audits the
resulting :class:`~repro.sim.engine.DayResult` from scratch:

* **containment** — no hour's placement ever touches a failed or
  partitioned switch (every VNF lives in the surviving component);
* **pricing** — every hour's communication cost is recomputed via
  Eq. 1 on the *degraded* APSP (parked flows, effective rates), the
  dropped traffic equals the summed rates of flows with dead or
  partitioned endpoints, and the repair cost is exactly
  ``μ × Σ`` healthy-APSP distances of the logged evacuation moves;
* **determinism** — re-simulating the same spec reproduces a
  byte-identical fault trace and :class:`DayResult` (compared as
  canonical JSON).

A mid-day :class:`~repro.errors.InfeasibleError` carrying a diagnosis is
a *valid recorded outcome* (the fabric genuinely lost too many switches),
not a violation; an InfeasibleError without a diagnosis, or any other
exception, is a finding.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.placement import dp_placement
from repro.errors import InfeasibleError
from repro.faults import FaultConfig, FaultProcess, degrade
from repro.runtime.executor import map_tasks
from repro.runtime.instrument import count, counters
from repro.runtime.journal import Journal
from repro.runtime.resilience import ResilienceConfig
from repro.sim.engine import DayResult, simulate_day
from repro.sim.policies import MParetoPolicy, NoMigrationPolicy
from repro.topology.base import Topology
from repro.verify.invariants import (
    DEFAULT_RTOL,
    Violation,
    recompute_communication_cost,
)
from repro.verify.scenarios import FAMILIES, sample_rates
from repro.workload.diurnal import DiurnalModel
from repro.workload.dynamics import RedrawnRates
from repro.workload.flows import FlowSet, place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel

__all__ = [
    "FAULT_FAMILIES",
    "FaultCaseSpec",
    "generate_fault_cases",
    "check_fault_day",
    "run_fault_case",
    "FaultCampaignConfig",
    "run_fault_campaign",
]

#: topology ladders big enough that a failed switch or two leaves a
#: meaningful surviving component (the 3-4 switch rungs are excluded)
FAULT_FAMILIES: dict[str, tuple] = {
    "fat_tree": ((4,),),
    "leaf_spine": ((3, 2, 3),),
    "vl2": ((2, 2, 2, 2),),
    "bcube": ((3,),),
    "jellyfish": ((8, 3, 1),),
    "linear": ((6,),),
}

_POLICIES = ("mpareto", "mpareto", "no-migration")


@dataclass(frozen=True)
class FaultCaseSpec:
    """Everything needed to rebuild one fault-injection case, bit-for-bit."""

    case_id: int
    family: str
    params: tuple
    n: int
    num_flows: int
    flow_seed: int
    rate_seed: int
    intra_rack: float
    policy: str  # "mpareto" | "no-migration"
    mu: float
    horizon: int
    fault_seed: int
    switch_rate: float
    host_rate: float
    link_rate: float
    mean_repair_hours: float

    def fault_config(self) -> FaultConfig:
        return FaultConfig(
            switch_rate=self.switch_rate,
            host_rate=self.host_rate,
            link_rate=self.link_rate,
            mean_repair_hours=self.mean_repair_hours,
        )

    def build(self):
        """Materialize ``(topology, flows, rate_process, fault_process)``."""
        topology = FAMILIES[self.family].builder(*self.params)
        flows = place_vm_pairs(
            topology, self.num_flows, self.intra_rack, seed=self.flow_seed
        )
        flows = flows.with_rates(
            sample_rates("facebook", self.num_flows, self.rate_seed)
        )
        diurnal = DiurnalModel(num_hours=self.horizon)
        rate_process = RedrawnRates(
            flows,
            diurnal,
            np.zeros(self.num_flows),
            FacebookTrafficModel(),
            seed=self.rate_seed,
        )
        faults = FaultProcess(
            topology, self.fault_config(), seed=self.fault_seed, horizon=self.horizon
        )
        return topology, flows, rate_process, faults

    def make_policy(self, topology: Topology):
        if self.policy == "mpareto":
            return MParetoPolicy(topology, mu=self.mu)
        if self.policy == "no-migration":
            return NoMigrationPolicy(topology, mu=self.mu)
        raise ValueError(f"unknown fault-case policy {self.policy!r}")

    def simulate(self) -> DayResult:
        """One full fault-aware day for this spec (fresh everything)."""
        topology, flows, rate_process, faults = self.build()
        placement = dp_placement(topology, flows, self.n).placement
        policy = self.make_policy(topology)
        return simulate_day(
            topology,
            flows,
            policy,
            rate_process,
            placement,
            range(1, self.horizon + 1),
            faults=faults,
        )

    def to_dict(self) -> dict:
        return {
            "case_id": self.case_id,
            "family": self.family,
            "params": list(self.params),
            "n": self.n,
            "num_flows": self.num_flows,
            "flow_seed": self.flow_seed,
            "rate_seed": self.rate_seed,
            "intra_rack": self.intra_rack,
            "policy": self.policy,
            "mu": self.mu,
            "horizon": self.horizon,
            "fault_seed": self.fault_seed,
            "switch_rate": self.switch_rate,
            "host_rate": self.host_rate,
            "link_rate": self.link_rate,
            "mean_repair_hours": self.mean_repair_hours,
        }


def generate_fault_cases(seed: int, cases: int) -> list[FaultCaseSpec]:
    """``cases`` independent fault scenarios from one campaign seed.

    Mirrors :func:`repro.verify.scenarios.generate_cases`: each case gets
    its own :class:`~numpy.random.SeedSequence` child, so case ``i`` is
    identical across runs and ``--cases`` counts.
    """
    root = np.random.SeedSequence(seed)
    specs = []
    for case_id, child in enumerate(root.spawn(cases)):
        rng = np.random.default_rng(child)
        family = sorted(FAULT_FAMILIES)[int(rng.integers(len(FAULT_FAMILIES)))]
        params = FAULT_FAMILIES[family][
            int(rng.integers(len(FAULT_FAMILIES[family])))
        ]
        specs.append(
            FaultCaseSpec(
                case_id=case_id,
                family=family,
                params=params,
                n=int(rng.integers(1, 4)),
                num_flows=int(rng.integers(2, 9)),
                flow_seed=int(rng.integers(2**31 - 1)),
                rate_seed=int(rng.integers(2**31 - 1)),
                intra_rack=float(rng.choice([0.0, 0.5, 0.8])),
                policy=_POLICIES[int(rng.integers(len(_POLICIES)))],
                mu=float(rng.choice([0.0, 5.0, 100.0])),
                horizon=int(rng.choice([6, 12])),
                fault_seed=int(rng.integers(2**31 - 1)),
                switch_rate=float(rng.choice([0.02, 0.05, 0.1, 0.2])),
                host_rate=float(rng.choice([0.0, 0.05])),
                link_rate=float(rng.choice([0.0, 0.02])),
                mean_repair_hours=float(rng.choice([2.0, 4.0])),
            )
        )
    return specs


def check_fault_day(
    topology: Topology,
    flows: FlowSet,
    rate_process,
    faults: FaultProcess,
    day: DayResult,
    *,
    mu: float,
    rtol: float = DEFAULT_RTOL,
) -> list[Violation]:
    """Audit one fault-aware :class:`DayResult` from scratch.

    Rebuilds each hour's degraded view with :func:`~repro.faults.degrade.
    degrade` (independent of whatever the engine memoized) and checks the
    containment and pricing invariants in the module docstring.
    """
    from repro.sim.engine import _park_flows

    violations: list[Violation] = []
    log = day.extra.get("fault_log", [])
    if len(log) != len(day.records):
        return [
            Violation(
                "fault_log_alignment",
                f"fault log has {len(log)} entries for {len(day.records)} "
                "hour records",
                {"log_hours": [e["hour"] for e in log]},
            )
        ]
    healthy = topology.graph.distances
    for record, entry in zip(day.records, log):
        hour = record.hour
        state = faults.state_at(hour)
        placement = np.asarray(entry["placement"], dtype=np.int64)
        if state.is_healthy:
            view, audit = topology, None
            live_switches = set(topology.switches.tolist())
            drop_mask = np.zeros(flows.num_flows, dtype=bool)
        else:
            view, audit = degrade(topology, state)
            live_switches = set(audit.surviving_switches.tolist())
            drop_mask = audit.dropped_flow_mask(flows)

        # containment: every VNF inside the surviving component
        stray = [int(p) for p in placement if int(p) not in live_switches]
        if stray:
            violations.append(
                Violation(
                    "fault_containment",
                    f"hour {hour}: VNFs on failed/partitioned switches {stray}",
                    {"hour": hour, "placement": placement, "stray": stray},
                )
            )

        # dropped-traffic accounting
        rates = rate_process.rates_at(hour)
        want_dropped = float(rates[drop_mask].sum())
        if abs(record.dropped_traffic - want_dropped) > rtol * max(1.0, want_dropped):
            violations.append(
                Violation(
                    "fault_dropped_traffic",
                    f"hour {hour}: dropped_traffic {record.dropped_traffic!r} "
                    f"!= recomputed {want_dropped!r}",
                    {"hour": hour, "got": record.dropped_traffic, "want": want_dropped},
                )
            )

        # repair pricing: μ × healthy-APSP distance of the logged moves
        moves = entry["repairs"]  # (vnf_index, from_switch, to_switch)
        want_distance = float(sum(healthy[int(a), int(b)] for _, a, b in moves))
        want_repair = mu * want_distance
        if abs(record.repair_cost - want_repair) > rtol * max(1.0, want_repair):
            violations.append(
                Violation(
                    "fault_repair_cost",
                    f"hour {hour}: repair_cost {record.repair_cost!r} != "
                    f"mu × healthy distance {want_repair!r}",
                    {"hour": hour, "got": record.repair_cost, "want": want_repair},
                )
            )
        if record.num_repairs != len(moves):
            violations.append(
                Violation(
                    "fault_repair_count",
                    f"hour {hour}: num_repairs {record.num_repairs} != "
                    f"{len(moves)} logged moves",
                    {"hour": hour, "moves": moves},
                )
            )
        bad_targets = [b for _, _, b in moves if int(b) not in live_switches]
        if bad_targets:
            violations.append(
                Violation(
                    "fault_repair_target",
                    f"hour {hour}: repair targets {bad_targets} outside the "
                    "surviving component",
                    {"hour": hour, "moves": moves},
                )
            )

        # Eq. 1 on the degraded APSP, parked flows, effective rates
        effective = np.where(drop_mask, 0.0, rates)
        if drop_mask.all() or (audit is not None and audit.surviving_hosts.size == 0):
            want_comm = 0.0
        else:
            park_host = (
                int(audit.surviving_hosts[0])
                if audit is not None
                else int(topology.hosts[0])
            )
            parked = _park_flows(flows, drop_mask, park_host)
            want_comm = recompute_communication_cost(
                view, parked.with_rates(effective), placement
            )
        if abs(record.communication_cost - want_comm) > rtol * max(
            1.0, abs(want_comm)
        ):
            violations.append(
                Violation(
                    "fault_communication_cost",
                    f"hour {hour}: communication cost "
                    f"{record.communication_cost!r} != Eq. 1 on the degraded "
                    f"APSP {want_comm!r}",
                    {
                        "hour": hour,
                        "got": record.communication_cost,
                        "want": want_comm,
                    },
                )
            )
    return violations


def run_fault_case(task) -> dict:
    """Simulate, audit and determinism-check one fault case.

    Module-level and driven by a picklable ``(spec, rtol)`` task so it
    can run in worker processes and be journalled for resume.
    """
    spec, rtol = task
    count("fault_cases")
    violations: list[Violation] = []
    outcome = "completed"
    checks = 0
    try:
        topology, flows, rate_process, faults = spec.build()
        try:
            day = spec.simulate()
        except InfeasibleError as exc:
            # a diagnosed infeasibility is the documented outcome for a
            # fabric that lost too much; only an undiagnosed one is a bug
            if exc.diagnosis.get("reason"):
                outcome = "infeasible"
                checks += 1
            else:
                violations.append(
                    Violation(
                        "fault_infeasible_diagnosis",
                        f"InfeasibleError without diagnosis: {exc}",
                        {"error": repr(exc)},
                    )
                )
            day = None
        if day is not None:
            checks += 1
            violations += check_fault_day(
                topology, flows, rate_process, faults, day,
                mu=spec.mu, rtol=rtol,
            )
            # determinism: fresh policy + fresh fault process, same bytes
            checks += 1
            replay = spec.simulate()
            a = json.dumps(day.to_dict(), sort_keys=True)
            b = json.dumps(replay.to_dict(), sort_keys=True)
            if a != b:
                violations.append(
                    Violation(
                        "fault_determinism",
                        "re-simulating the same spec changed the DayResult",
                        {"len_first": len(a), "len_second": len(b)},
                    )
                )
            checks += 1
            trace_a = json.dumps(faults.to_dict(), sort_keys=True)
            trace_b = json.dumps(
                FaultProcess(
                    topology,
                    spec.fault_config(),
                    seed=spec.fault_seed,
                    horizon=spec.horizon,
                ).to_dict(),
                sort_keys=True,
            )
            if trace_a != trace_b:
                violations.append(
                    Violation(
                        "fault_trace_determinism",
                        "rebuilding the fault process changed its trace",
                        {},
                    )
                )
    except Exception as exc:  # a crash on a generated scenario is a finding
        violations.append(
            Violation(
                "exception",
                f"{type(exc).__name__}: {exc}",
                {"error": repr(exc)},
            )
        )
        outcome = "error"
    if violations:
        count("fault_violations", len(violations))
    return {
        "case_id": spec.case_id,
        "family": spec.family,
        "policy": spec.policy,
        "outcome": outcome,
        "checks": checks,
        "violations": [v.to_dict() for v in violations],
        "spec": spec.to_dict(),
    }


@dataclass(frozen=True)
class FaultCampaignConfig:
    cases: int = 100
    seed: int = 0
    workers: int = 1
    rtol: float = DEFAULT_RTOL
    journal_path: str | Path | None = None
    report_path: str | Path | None = None


def run_fault_campaign(config: FaultCampaignConfig) -> dict:
    """Run the fault campaign; returns the JSON-friendly report dict."""
    start = time.perf_counter()
    hits_before = counters().get("journal_hits", 0)
    specs = generate_fault_cases(config.seed, config.cases)
    tasks = [(spec, config.rtol) for spec in specs]
    journal = Journal(config.journal_path) if config.journal_path else None
    try:
        resilience = ResilienceConfig(
            scope=f"verify-faults@{config.seed}", journal=journal
        )
        records = map_tasks(
            run_fault_case, tasks, workers=config.workers, resilience=resilience
        )
    finally:
        if journal is not None:
            journal.close()
    failures = [r for r in records if r["violations"]]
    elapsed = time.perf_counter() - start
    report = {
        "config": {
            "cases": config.cases,
            "seed": config.seed,
            "workers": config.workers,
            "rtol": config.rtol,
        },
        "cases": len(records),
        "checks": int(sum(r["checks"] for r in records)),
        "violations": int(sum(len(r["violations"]) for r in records)),
        "coverage": {
            "by_family": dict(Counter(r["family"] for r in records)),
            "by_policy": dict(Counter(r["policy"] for r in records)),
            "by_outcome": dict(Counter(r["outcome"] for r in records)),
        },
        "failures": failures,
        "runtime": {
            "elapsed_seconds": elapsed,
            "workers": config.workers,
            "journal_hits": counters().get("journal_hits", 0) - hits_before,
        },
    }
    if config.report_path:
        from repro.utils.results_io import write_text_atomic

        write_text_atomic(Path(config.report_path), json.dumps(report, indent=2))
    return report
