"""Metamorphic transforms: scenario rewrites with a known cost relation.

Each transform rewrites a scenario ``(topology, flows, prev)`` into an
equivalent one whose *optimal* cost relates to the original by a known
factor — so running the same solver on both sides and comparing costs
catches pricing and search bugs without needing any oracle:

========  =============================================  ===========
name      rewrite                                        cost factor
========  =============================================  ===========
relabel   permute node ids (graph isomorphism)           1
scale     multiply every edge weight by ``f`` (2^k)      ``f``
split     one flow λ → two copies at λ/2                 1
reverse   swap every flow's source and destination       1
zero      append a flow with rate 0                      1
========  =============================================  ===========

The factor is exact mathematically; in floating point the two sides may
differ by accumulation-order noise, so comparisons should use a relative
tolerance (the campaign uses Eq. 1's ``DEFAULT_RTOL``).  ``scale`` uses
power-of-two factors, which scale IEEE-754 sums *exactly* — it is the
one transform that is bitwise-safe for every solver, including the
weight-oblivious ``random`` baseline.

Which transform is sound for which solver is a property of the solver's
*contract*, not of the transform: a greedy heuristic is only
relabel-equivariant when it never breaks an exact tie (almost surely
true on jittered weights, false on unit weights), and flow reversal only
preserves the *optimal* cost, not a heuristic's choice.  The campaign's
applicability matrix (:data:`repro.verify.campaign.APPLICABLE`) encodes
those judgements; this module only provides the rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.graphs.adjacency import CostGraph
from repro.topology.base import Topology
from repro.workload.flows import FlowSet

__all__ = [
    "TransformResult",
    "relabel_topology",
    "relabel_transform",
    "scale_transform",
    "split_transform",
    "reverse_transform",
    "zero_flow_transform",
    "TRANSFORMS",
]


@dataclass(frozen=True)
class TransformResult:
    """A rewritten scenario plus the cost relation it must satisfy."""

    name: str
    topology: Topology
    flows: FlowSet
    prev: np.ndarray | None
    cost_factor: float
    detail: dict = field(default_factory=dict)


def relabel_topology(topology: Topology, perm: np.ndarray) -> Topology:
    """Rebuild ``topology`` with node ``i`` renamed to ``perm[i]``.

    The result is the same PPDC up to isomorphism: permuted labels and
    edges, hosts/switches re-sorted into ascending id order with the
    rack map realigned.
    """
    perm = np.asarray(perm, dtype=np.int64)
    n = topology.graph.num_nodes
    if sorted(perm.tolist()) != list(range(n)):
        raise ReproError(f"perm must be a permutation of 0..{n - 1}")
    old_labels = topology.graph.labels
    labels = [""] * n
    for i in range(n):
        labels[int(perm[i])] = old_labels[i]
    edges = [
        (int(perm[u]), int(perm[v]), w) for u, v, w in topology.graph.edges
    ]
    graph = CostGraph(labels, edges)
    order = np.argsort(perm[topology.hosts], kind="stable")
    hosts = perm[topology.hosts][order]
    racks = perm[topology.host_edge_switch][order]
    switches = np.sort(perm[topology.switches])
    return Topology(
        name=f"{topology.name}#relabel",
        graph=graph,
        hosts=hosts,
        switches=switches,
        host_edge_switch=racks,
        meta={k: v for k, v in topology.meta.items() if not k.startswith("_")},
    )


def relabel_transform(
    topology: Topology,
    flows: FlowSet,
    prev: np.ndarray | None = None,
    *,
    seed: int = 0,
) -> TransformResult:
    """Graph isomorphism: costs are label-independent (factor 1)."""
    n = topology.graph.num_nodes
    perm = np.random.default_rng(seed).permutation(n).astype(np.int64)
    new_topology = relabel_topology(topology, perm)
    new_flows = flows.with_endpoints(perm[flows.sources], perm[flows.destinations])
    new_prev = perm[np.asarray(prev, dtype=np.int64)] if prev is not None else None
    return TransformResult(
        "relabel", new_topology, new_flows, new_prev, 1.0, {"seed": seed}
    )


def scale_transform(
    topology: Topology,
    flows: FlowSet,
    prev: np.ndarray | None = None,
    *,
    factor: float = 4.0,
) -> TransformResult:
    """Uniform edge-weight scaling: every cost scales by ``factor``.

    Power-of-two factors keep the scaling exact in floating point
    (shortest paths, tie-breaks, and therefore every solver decision are
    bit-identical); other factors are allowed but then the relation only
    holds to rounding.
    """
    if not (factor > 0.0 and np.isfinite(factor)):
        raise ReproError(f"scale factor must be positive finite, got {factor}")
    graph = topology.graph.reweighted(lambda u, v, w: w * factor)
    new_topology = topology.with_graph(graph, name=f"{topology.name}#scale{factor:g}")
    new_prev = np.asarray(prev, dtype=np.int64) if prev is not None else None
    return TransformResult(
        "scale", new_topology, flows, new_prev, float(factor), {"factor": factor}
    )


def split_transform(
    topology: Topology,
    flows: FlowSet,
    prev: np.ndarray | None = None,
    *,
    index: int | None = None,
) -> TransformResult:
    """Split one flow λ → λ/2 + λ/2 between the same endpoints (factor 1).

    Eq. 1 is linear in the rates, so splitting a flow into two identical
    halves changes nothing.  Defaults to splitting the highest-rate flow
    (ties to the lowest index).
    """
    if index is None:
        index = int(np.argmax(flows.rates))
    if not (0 <= index < flows.num_flows):
        raise ReproError(f"flow index {index} out of range")
    half = flows.rates[index] / 2.0
    rates = flows.rates.copy()
    rates[index] = half
    new_flows = FlowSet(
        sources=np.concatenate([flows.sources, flows.sources[index : index + 1]]),
        destinations=np.concatenate(
            [flows.destinations, flows.destinations[index : index + 1]]
        ),
        rates=np.concatenate([rates, [half]]),
        meta=dict(flows.meta),
    )
    new_prev = np.asarray(prev, dtype=np.int64) if prev is not None else None
    return TransformResult(
        "split", topology, new_flows, new_prev, 1.0, {"index": index}
    )


def reverse_transform(
    topology: Topology,
    flows: FlowSet,
    prev: np.ndarray | None = None,
) -> TransformResult:
    """Swap every flow's source and destination (factor 1 for exact solvers).

    Reversing all flows turns any placement ``p`` into an equally priced
    ``reversed(p)`` — the undirected metric is symmetric — so the
    *optimal* cost is unchanged.  A previous placement, if any, is
    reversed alongside.
    """
    new_flows = flows.with_endpoints(flows.destinations, flows.sources)
    new_prev = (
        np.asarray(prev, dtype=np.int64)[::-1].copy() if prev is not None else None
    )
    return TransformResult("reverse", topology, new_flows, new_prev, 1.0, {})


def zero_flow_transform(
    topology: Topology,
    flows: FlowSet,
    prev: np.ndarray | None = None,
    *,
    seed: int = 0,
) -> TransformResult:
    """Append a zero-rate flow: it contributes nothing to any cost.

    The phantom flow's endpoints are drawn from the hosts; it is appended
    *after* the real flows so flow 0 (the TOP-1 solvers' subject) is
    untouched.
    """
    gen = np.random.default_rng(seed)
    s, d = gen.choice(topology.hosts, size=2)
    new_flows = FlowSet(
        sources=np.concatenate([flows.sources, [int(s)]]),
        destinations=np.concatenate([flows.destinations, [int(d)]]),
        rates=np.concatenate([flows.rates, [0.0]]),
        meta=dict(flows.meta),
    )
    new_prev = np.asarray(prev, dtype=np.int64) if prev is not None else None
    return TransformResult(
        "zero", topology, new_flows, new_prev, 1.0, {"seed": seed}
    )


#: name -> transform callable, all sharing the (topology, flows, prev, **kw)
#: signature; the campaign iterates this table
TRANSFORMS = {
    "relabel": relabel_transform,
    "scale": scale_transform,
    "split": split_transform,
    "reverse": reverse_transform,
    "zero": zero_flow_transform,
}
