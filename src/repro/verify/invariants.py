"""Pure invariant checks for any solver result.

Every solver in this repo — the TOP/TOM algorithms, the baselines, and
the :class:`~repro.session.SolverSession` fast paths — reports a cost it
claims for a placement it returns.  The paper's structural decomposition
makes those claims cheap to audit from scratch:

* Eq. 1: ``C_a(p) = a_in[p(1)] + Λ·Σ_j c(p(j), p(j+1)) + a_out[p(n)]``
  with ``a_in[u] = Σ_i λ_i·c(s(v_i), u)`` — recomputable in O(l + n)
  given the APSP table, independent of any solver's internal caches.
* Feasibility: a placement is ``n`` *distinct switches* (the paper's
  anti-affinity assumption), and every entry is a real switch.
* Eq. 8: ``C_t(p, m) = C_b(p, m) + C_a(m)`` with
  ``C_b = μ·Σ_j c(p(j), m(j))`` for migrations.
* Metric consistency: APSP distances form a metric, so any reported
  chain cost is bounded below by the direct ``c(p(1), p(n))`` distance.
* The TOP-1 LP relaxation is a certified lower bound on any single-flow
  placement cost.

Checks are pure functions returning a list of :class:`Violation` — empty
means the result passed.  Nothing here raises on a bad result; raising is
the caller's policy (``assert not check_result(...)`` in tests, report
aggregation in the campaign runner).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.baselines.common import VMMigrationResult
from repro.core.lp_bound import top1_lp_lower_bound
from repro.core.types import MigrationResult, PlacementResult
from repro.topology.base import Topology
from repro.workload.flows import FlowSet

__all__ = [
    "DEFAULT_RTOL",
    "Violation",
    "recompute_communication_cost",
    "check_feasibility",
    "check_cost_decomposition",
    "check_total_split",
    "check_migration_distance",
    "check_triangle_consistency",
    "check_metric",
    "check_lp_floor",
    "check_placement_result",
    "check_migration_result",
    "check_vm_migration_result",
    "check_result",
]

#: Eq. 1 recomputation agrees with reported costs to this relative tolerance;
#: both sides are short sums over the same float64 APSP table, so anything
#: looser would paper over a real pricing bug.
DEFAULT_RTOL = 1e-9

#: the LP relaxation is solved numerically (HiGHS); give its floor more slack
LP_RTOL = 1e-6


def _jsonable(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


@dataclass(frozen=True)
class Violation:
    """One failed invariant: which check, what it saw, and the numbers."""

    invariant: str
    message: str
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "message": self.message,
            "detail": _jsonable(self.detail),
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.invariant}] {self.message}"


def _rel_err(got: float, want: float) -> float:
    return abs(got - want) / max(1.0, abs(want))


def recompute_communication_cost(
    topology: Topology, flows: FlowSet, placement: Sequence[int] | np.ndarray
) -> float:
    """Eq. 1 from scratch: attraction terms + Λ·chain off the APSP table.

    Deliberately bypasses :class:`~repro.core.costs.CostContext` (and its
    caches) — this is the independent referee the solvers are audited
    against, so it shares no code path with them beyond the APSP table
    itself.
    """
    dist = topology.graph.distances
    p = np.asarray(placement, dtype=np.int64)
    rates = flows.rates
    ingress = float(rates @ dist[flows.sources, p[0]])
    egress = float(rates @ dist[p[-1], flows.destinations])
    chain = float(dist[p[:-1], p[1:]].sum()) if p.size >= 2 else 0.0
    return ingress + float(rates.sum()) * chain + egress


def check_feasibility(
    topology: Topology,
    placement: Sequence[int] | np.ndarray,
    n: int | None = None,
    *,
    label: str = "placement",
) -> list[Violation]:
    """The paper's feasibility rules: ``n`` distinct switch entries."""
    violations: list[Violation] = []
    arr = np.asarray(placement, dtype=np.int64)
    if arr.ndim != 1 or arr.size == 0:
        return [
            Violation(
                "feasibility",
                f"{label} must be non-empty 1-D, got shape {arr.shape}",
                {"label": label, "shape": list(arr.shape)},
            )
        ]
    if n is not None and arr.size != n:
        violations.append(
            Violation(
                "feasibility",
                f"{label} has {arr.size} VNFs, expected {n}",
                {"label": label, "placement": arr, "n": n},
            )
        )
    switch_set = set(topology.switches.tolist())
    stray = [int(x) for x in arr if int(x) not in switch_set]
    if stray:
        violations.append(
            Violation(
                "feasibility",
                f"{label} entries {stray[:5]} are not switches",
                {"label": label, "placement": arr, "stray": stray[:5]},
            )
        )
    if len(set(arr.tolist())) != arr.size:
        violations.append(
            Violation(
                "feasibility",
                f"{label} {arr.tolist()} repeats a switch",
                {"label": label, "placement": arr},
            )
        )
    return violations


def check_cost_decomposition(
    topology: Topology,
    flows: FlowSet,
    placement: Sequence[int] | np.ndarray,
    reported: float,
    *,
    rtol: float = DEFAULT_RTOL,
    label: str = "cost",
) -> list[Violation]:
    """Reported C_a must equal the from-scratch Eq. 1 recomputation."""
    recomputed = recompute_communication_cost(topology, flows, placement)
    err = _rel_err(float(reported), recomputed)
    if err > rtol:
        return [
            Violation(
                "cost_decomposition",
                f"reported {label} {reported!r} != Eq. 1 recomputation "
                f"{recomputed!r} (rel err {err:.3e} > {rtol:.1e})",
                {
                    "label": label,
                    "reported": float(reported),
                    "recomputed": recomputed,
                    "rel_err": err,
                    "placement": np.asarray(placement, dtype=np.int64),
                },
            )
        ]
    return []


def check_total_split(
    cost: float,
    communication_cost: float,
    migration_cost: float,
    *,
    rtol: float = DEFAULT_RTOL,
) -> list[Violation]:
    """Eq. 8: the reported total must be exactly C_b + C_a."""
    err = _rel_err(float(cost), float(communication_cost) + float(migration_cost))
    if err > rtol:
        return [
            Violation(
                "total_split",
                f"cost {cost!r} != communication {communication_cost!r} + "
                f"migration {migration_cost!r} (rel err {err:.3e})",
                {
                    "cost": float(cost),
                    "communication_cost": float(communication_cost),
                    "migration_cost": float(migration_cost),
                    "rel_err": err,
                },
            )
        ]
    return []


def check_migration_distance(
    topology: Topology,
    source: np.ndarray,
    migration: np.ndarray,
    reported_migration_cost: float,
    mu: float,
    *,
    rtol: float = DEFAULT_RTOL,
) -> list[Violation]:
    """C_b(p, m) must equal μ·Σ_j c(p(j), m(j)) off the APSP table."""
    src = np.asarray(source, dtype=np.int64)
    dst = np.asarray(migration, dtype=np.int64)
    if src.shape != dst.shape:
        return [
            Violation(
                "migration_distance",
                f"source shape {src.shape} != migration shape {dst.shape}",
                {"source": src, "migration": dst},
            )
        ]
    dist = topology.graph.distances
    want = float(mu) * float(dist[src, dst].sum())
    err = _rel_err(float(reported_migration_cost), want)
    if err > rtol:
        return [
            Violation(
                "migration_distance",
                f"migration_cost {reported_migration_cost!r} != "
                f"mu·Σ c(p(j), m(j)) = {want!r} (rel err {err:.3e})",
                {
                    "reported": float(reported_migration_cost),
                    "recomputed": want,
                    "mu": float(mu),
                    "rel_err": err,
                },
            )
        ]
    return []


def check_metric(dist: np.ndarray, *, rtol: float = DEFAULT_RTOL) -> list[Violation]:
    """A distance matrix must be a (semi-)metric: APSP output or otherwise.

    Checks symmetry, zero diagonal, non-negativity, and the triangle
    inequality ``d(u, w) <= d(u, v) + d(v, w)`` for every triple.  Meant
    for small matrices (the campaign's topologies); O(V³) like APSP
    itself.
    """
    d = np.asarray(dist, dtype=float)
    violations: list[Violation] = []
    finite = np.isfinite(d)
    if not finite.all():
        bad = np.argwhere(~finite)[:5]
        violations.append(
            Violation(
                "metric",
                f"distance matrix has non-finite entries at {bad.tolist()}",
                {"entries": bad},
            )
        )
        return violations
    if not np.allclose(d, d.T, rtol=rtol, atol=0.0):
        violations.append(
            Violation("metric", "distance matrix is not symmetric", {})
        )
    diag = np.abs(np.diagonal(d))
    if diag.max(initial=0.0) > rtol:
        violations.append(
            Violation(
                "metric",
                f"diagonal is not zero (max {diag.max():.3e})",
                {"max_diag": float(diag.max())},
            )
        )
    if d.min(initial=0.0) < -rtol:
        violations.append(
            Violation(
                "metric",
                f"negative distances (min {d.min():.3e})",
                {"min": float(d.min())},
            )
        )
    # triangle: min over v of d[u,v] + d[v,w] must not beat d[u,w]
    slack = (d[:, :, None] + d[None, :, :]).min(axis=1) - d
    tol = rtol * np.maximum(1.0, np.abs(d))
    if (slack < -tol).any():
        u, w = np.unravel_index(int((slack + tol).argmin()), slack.shape)
        violations.append(
            Violation(
                "metric",
                f"triangle inequality violated at ({u}, {w}): "
                f"d={d[u, w]!r} but a two-hop path costs {d[u, w] + slack[u, w]!r}",
                {"u": int(u), "w": int(w), "direct": float(d[u, w])},
            )
        )
    return violations


def check_triangle_consistency(
    topology: Topology,
    placement: Sequence[int] | np.ndarray,
    *,
    rtol: float = DEFAULT_RTOL,
) -> list[Violation]:
    """The chain's hop costs must respect the APSP metric.

    Each hop is an APSP entry, so it must be non-negative and finite, and
    the summed chain cost can never undercut the direct
    ``c(p(1), p(n))`` distance (triangle inequality).
    """
    p = np.asarray(placement, dtype=np.int64)
    if p.size < 2:
        return []
    dist = topology.graph.distances
    hops = dist[p[:-1], p[1:]]
    violations: list[Violation] = []
    if not np.isfinite(hops).all() or (hops < 0).any():
        violations.append(
            Violation(
                "triangle",
                f"chain hops {hops.tolist()} contain negative or non-finite costs",
                {"placement": p, "hops": hops},
            )
        )
        return violations
    chain = float(hops.sum())
    direct = float(dist[p[0], p[-1]])
    if chain < direct - rtol * max(1.0, direct):
        violations.append(
            Violation(
                "triangle",
                f"chain cost {chain!r} undercuts the direct distance "
                f"c(p(1), p(n)) = {direct!r}",
                {"placement": p, "chain": chain, "direct": direct},
            )
        )
    return violations


def check_lp_floor(
    topology: Topology,
    flows: FlowSet,
    placement: Sequence[int] | np.ndarray,
    reported: float,
    *,
    rtol: float = LP_RTOL,
    max_nodes: int = 64,
) -> list[Violation]:
    """Single-flow results can never beat the TOP-1 LP relaxation.

    Only meaningful when ``flows`` has exactly one flow (the LP is the
    TOP-1 relaxation); silently skipped otherwise, and size-gated so the
    campaign never stalls in a solver it is supposed to be auditing.
    """
    if flows.num_flows != 1 or topology.graph.num_nodes > max_nodes:
        return []
    p = np.asarray(placement, dtype=np.int64)
    source = int(flows.sources[0])
    target = int(flows.destinations[0])
    rate = float(flows.rates[0])
    countable = set(int(s) for s in topology.switches) - {source, target}
    if len(countable) < p.size:
        return []
    bound = top1_lp_lower_bound(
        topology.graph, source, target, int(p.size), countable, rate
    )
    if float(reported) < bound - rtol * max(1.0, abs(bound)):
        return [
            Violation(
                "lp_floor",
                f"reported cost {reported!r} beats the LP lower bound {bound!r}",
                {"reported": float(reported), "lp_bound": bound},
            )
        ]
    return []


# -- result-level dispatchers -----------------------------------------------


def check_placement_result(
    topology: Topology,
    flows: FlowSet,
    result: PlacementResult,
    *,
    n: int | None = None,
    lp: bool = False,
    rtol: float = DEFAULT_RTOL,
) -> list[Violation]:
    """All placement invariants on one :class:`PlacementResult`."""
    violations = check_feasibility(topology, result.placement, n)
    violations += check_cost_decomposition(
        topology, flows, result.placement, result.cost, rtol=rtol
    )
    violations += check_triangle_consistency(topology, result.placement, rtol=rtol)
    if lp:
        violations += check_lp_floor(topology, flows, result.placement, result.cost)
    return violations


def check_migration_result(
    topology: Topology,
    flows: FlowSet,
    result: MigrationResult,
    *,
    mu: float | None = None,
    n: int | None = None,
    rtol: float = DEFAULT_RTOL,
) -> list[Violation]:
    """All migration invariants on one :class:`MigrationResult`."""
    violations = check_feasibility(topology, result.source, n, label="source")
    violations += check_feasibility(topology, result.migration, n, label="migration")
    violations += check_cost_decomposition(
        topology,
        flows,
        result.migration,
        result.communication_cost,
        rtol=rtol,
        label="communication_cost",
    )
    violations += check_total_split(
        result.cost, result.communication_cost, result.migration_cost, rtol=rtol
    )
    if mu is not None:
        violations += check_migration_distance(
            topology,
            result.source,
            result.migration,
            result.migration_cost,
            mu,
            rtol=rtol,
        )
    violations += check_triangle_consistency(topology, result.migration, rtol=rtol)
    return violations


def check_vm_migration_result(
    topology: Topology,
    result: VMMigrationResult,
    *,
    n: int | None = None,
    rtol: float = DEFAULT_RTOL,
) -> list[Violation]:
    """Invariants on a VM-baseline round (PLAN / MCF).

    The VNF placement is fixed; the *flows* moved, so the communication
    cost must equal Eq. 1 priced under ``result.flows`` (the post-move
    endpoints), and the total must still split per Eq. 8.
    """
    violations = check_feasibility(
        topology, result.vnf_placement, n, label="vnf_placement"
    )
    violations += check_cost_decomposition(
        topology,
        result.flows,
        result.vnf_placement,
        result.communication_cost,
        rtol=rtol,
        label="communication_cost",
    )
    violations += check_total_split(
        result.cost, result.communication_cost, result.migration_cost, rtol=rtol
    )
    violations += check_triangle_consistency(topology, result.vnf_placement, rtol=rtol)
    return violations


def check_result(
    topology: Topology,
    flows: FlowSet,
    result,
    *,
    mu: float | None = None,
    n: int | None = None,
    lp: bool = False,
    rtol: float = DEFAULT_RTOL,
) -> list[Violation]:
    """Dispatch on the result type; the one entry point callers need.

    ``flows`` must be the flow set the result's cost was priced under —
    for the TOP-1 solvers that is the single-flow subset, and for the VM
    baselines the post-move ``result.flows`` is used automatically.
    """
    if isinstance(result, VMMigrationResult):
        return check_vm_migration_result(topology, result, n=n, rtol=rtol)
    if isinstance(result, MigrationResult):
        return check_migration_result(
            topology, flows, result, mu=mu, n=n, rtol=rtol
        )
    if isinstance(result, PlacementResult):
        return check_placement_result(
            topology, flows, result, n=n, lp=lp, rtol=rtol
        )
    return [
        Violation(
            "dispatch",
            f"unknown result type {type(result).__name__}",
            {"type": type(result).__name__},
        )
    ]
