"""Constrained-placement verification: MSG solvers vs the exact referee.

The fifth campaign family, auditing the capacity/delay/bandwidth
constraint machinery (:mod:`repro.constraints`) end to end.  Each
:class:`ConstrainedCaseSpec` describes one constrained query — topology,
workload, a :class:`~repro.constraints.Constraints` object derived from
seeded knobs, a solver (``msg`` / ``msg-greedy``) and an entry point —
and :func:`run_constrained_case` audits the answer from scratch:

* **feasibility** — every accepted placement passes
  :meth:`Constraints.check_placement` recomputed from the topology's
  APSP table (never from solver state), on top of the unconstrained
  invariants (distinct switches, Eq. 1 / Eq. 8 price recomputation);
* **optimality floor** — on gate-sized instances the *constrained*
  exact search (Algorithm 4/6 with the same constraint pruning) is run
  as referee: the MSG answer may never beat it, and when MSG declares
  the instance infeasible the referee must agree (and vice versa);
* **diagnosis** — a declared infeasibility must carry a structured
  diagnosis naming the binding constraint; an
  :class:`~repro.errors.InfeasibleError` without one is a finding;
* **determinism** — re-running the same spec reproduces a
  byte-identical result (compared as canonical JSON).

A diagnosed infeasible instance is a *valid recorded outcome* (the
constraints genuinely exclude every chain), not a violation.  The
``contention`` mode drives :func:`repro.solvers.contention.place_chains`
and replays the admission sequence from scratch to confirm that every
accepted chain was feasible under the occupancy/load state accumulated
by the chains admitted before it.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.constraints import Constraints, active_constraints, chain_delay
from repro.core.placement import dp_placement
from repro.errors import InfeasibleError
from repro.runtime.executor import map_tasks
from repro.runtime.instrument import count, counters
from repro.runtime.journal import Journal
from repro.session import SolverSession
from repro.solvers.contention import ORDERS, place_chains
from repro.solvers.msg_stage_graph import msg_greedy_placement, msg_placement
from repro.solvers.msg_stage_graph import msg_greedy_migration, msg_migration
from repro.verify.invariants import (
    DEFAULT_RTOL,
    Violation,
    check_migration_result,
    check_placement_result,
)
from repro.verify.oracles import (
    OracleGate,
    check_oracle_floor,
    oracle_migration,
    oracle_placement,
)
from repro.verify.scenarios import FAMILIES, RATE_MODELS, sample_rates
from repro.workload.flows import FlowSet, place_vm_pairs

__all__ = [
    "CONSTRAINED_FAMILIES",
    "ConstrainedCaseSpec",
    "generate_constrained_cases",
    "run_constrained_case",
    "ConstrainedCampaignConfig",
    "run_constrained_campaign",
]

#: ladder rungs small enough that :class:`OracleGate` admits them — the
#: whole point of this campaign is the exact referee — plus one gated
#: fat-tree rung so the larger-fabric code path gets coverage too
CONSTRAINED_FAMILIES: dict[str, tuple] = {
    "fat_tree": ((2,), (4,)),
    "linear": ((6,), (5,)),
    "leaf_spine": ((3, 2, 3), (2, 2, 2)),
    "vl2": ((2, 2, 2, 2), (1, 2, 2, 2)),
    "bcube": ((3,), (2,)),
    "dcell": ((3,),),
    "jellyfish": ((8, 3, 1), (6, 3, 1)),
}

_ALGOS = ("msg", "msg", "msg-greedy")
_MODES = ("place", "place", "migrate", "contention")
_ENTRIES = ("cold", "session", "solve")
#: ``max_delay = delay_factor × (delay of the unconstrained dp chain)``
#: — below 1.0 the unconstrained answer is excluded and the solver must
#: reroute or prove infeasibility; tiny factors force the infeasible arm
_DELAY_FACTORS = (None, None, 1.5, 1.0, 0.9, 0.6, 0.25)
#: ``bandwidth = bandwidth_factor × Λ`` — every switch a chain touches
#: is charged the full chain rate, so 1.0 is the tightest satisfiable cap
_BANDWIDTH_FACTORS = (None, None, 1.0, 1.5, 2.0)


@dataclass(frozen=True)
class ConstrainedCaseSpec:
    """Everything needed to rebuild one constrained case, bit-for-bit."""

    case_id: int
    family: str
    params: tuple
    n: int
    mode: str  # "place" | "migrate" | "contention"
    entry: str  # "cold" | "session" | "solve" (contention is always cold)
    algo: str  # "msg" | "msg-greedy"; contention: admission order
    num_flows: int
    flow_seed: int
    rate_model: str
    rate_seed: int
    intra_rack: float
    mu: float = 0.0
    prev_seed: int = 0
    # -- constraint knobs ------------------------------------------------
    vnf_capacity: int | None = None
    #: pre-fill this many switches to ``vnf_capacity`` (inadmissible)
    occupied_switches: int = 0
    delay_factor: float | None = None
    bandwidth_factor: float | None = None
    #: pre-load this many switches to the full bandwidth cap
    saturated_switches: int = 0
    #: contention mode only: how many chains compete for the fabric
    num_chains: int = 2

    def build(self) -> tuple:
        """Materialize ``(topology, flows, prev, constraints)``."""
        topology = FAMILIES[self.family].builder(*self.params)
        flows = place_vm_pairs(
            topology, self.num_flows, self.intra_rack, seed=self.flow_seed
        )
        flows = flows.with_rates(
            sample_rates(self.rate_model, self.num_flows, self.rate_seed)
        )
        prev = None
        if self.mode == "migrate":
            prev_rates = sample_rates(
                self.rate_model, self.num_flows, self.prev_seed
            )
            prev = dp_placement(
                topology, flows.with_rates(prev_rates), self.n
            ).placement
        return topology, flows, prev, self.constraints(topology, flows)

    def constraints(self, topology, flows: FlowSet) -> Constraints:
        """Derive the concrete :class:`Constraints` for this instance.

        The delay bound is anchored to the *unconstrained* dp optimum's
        chain delay so the factors sweep the feasible/tight/infeasible
        boundary on every instance instead of depending on absolute edge
        weights; the bandwidth cap is anchored to the chain rate Λ.
        """
        switches = [int(s) for s in topology.switches]
        max_delay = None
        if self.delay_factor is not None and self.n >= 2:
            reference = chain_delay(
                topology, dp_placement(topology, flows, self.n).placement
            )
            if reference > 0.0:
                max_delay = self.delay_factor * reference
        bandwidth = None
        load: dict[int, float] = {}
        if self.bandwidth_factor is not None:
            bandwidth = self.bandwidth_factor * max(float(flows.total_rate), 1e-9)
            for s in switches[: self.saturated_switches]:
                load[s] = bandwidth
        occupancy: dict[int, int] = {}
        if self.vnf_capacity is not None:
            for s in switches[len(switches) - self.occupied_switches:]:
                occupancy[s] = self.vnf_capacity
        return Constraints(
            vnf_capacity=self.vnf_capacity,
            max_delay=max_delay,
            bandwidth=bandwidth,
            occupancy=occupancy,
            load=load,
        )

    def chains(self, topology) -> list[tuple[FlowSet, int]]:
        """Contention mode: the competing ``(flows, n)`` chains."""
        chains = []
        for k in range(self.num_chains):
            fl = place_vm_pairs(
                topology,
                self.num_flows,
                self.intra_rack,
                seed=self.flow_seed + 7919 * (k + 1),
            )
            fl = fl.with_rates(
                sample_rates(
                    self.rate_model, self.num_flows, self.rate_seed + k
                )
            )
            chains.append((fl, self.n))
        return chains

    def to_dict(self) -> dict:
        return {
            "case_id": self.case_id,
            "family": self.family,
            "params": list(self.params),
            "n": self.n,
            "mode": self.mode,
            "entry": self.entry,
            "algo": self.algo,
            "num_flows": self.num_flows,
            "flow_seed": self.flow_seed,
            "rate_model": self.rate_model,
            "rate_seed": self.rate_seed,
            "intra_rack": self.intra_rack,
            "mu": self.mu,
            "prev_seed": self.prev_seed,
            "vnf_capacity": self.vnf_capacity,
            "occupied_switches": self.occupied_switches,
            "delay_factor": self.delay_factor,
            "bandwidth_factor": self.bandwidth_factor,
            "saturated_switches": self.saturated_switches,
            "num_chains": self.num_chains,
        }


def _rung_size(family: str, params: tuple) -> int:
    for rung_params, switches in FAMILIES[family].ladder:
        if rung_params == params:
            return switches
    return FAMILIES[family].builder(*params).num_switches


def generate_constrained_cases(seed: int, cases: int) -> list[ConstrainedCaseSpec]:
    """``cases`` independent constrained scenarios from one campaign seed.

    Mirrors :func:`repro.verify.scenarios.generate_cases`: each case gets
    its own :class:`~numpy.random.SeedSequence` child, so case ``i`` is
    identical across runs and ``--cases`` counts.
    """
    root = np.random.SeedSequence(seed)
    specs = []
    for case_id, child in enumerate(root.spawn(cases)):
        rng = np.random.default_rng(child)
        family = sorted(CONSTRAINED_FAMILIES)[
            int(rng.integers(len(CONSTRAINED_FAMILIES)))
        ]
        rungs = CONSTRAINED_FAMILIES[family]
        params = rungs[int(rng.integers(len(rungs)))]
        num_switches = _rung_size(family, params)
        mode = _MODES[int(rng.integers(len(_MODES)))]
        # keep n ≥ 2 so the delay bound has a path to constrain, and
        # within the oracle gate so the exact referee stays available
        n = int(rng.integers(2, min(4, num_switches - 1) + 1))
        vnf_capacity = [None, 1, 2][int(rng.integers(3))]
        occupied = (
            int(rng.integers(0, 3)) if vnf_capacity is not None else 0
        )
        # never wall off so many switches that every instance trivially
        # fails the capacity precheck — leave at least n candidates free
        occupied = min(occupied, max(0, num_switches - n))
        delay_factor = _DELAY_FACTORS[int(rng.integers(len(_DELAY_FACTORS)))]
        bandwidth_factor = _BANDWIDTH_FACTORS[
            int(rng.integers(len(_BANDWIDTH_FACTORS)))
        ]
        saturated = (
            int(rng.integers(0, 2)) if bandwidth_factor is not None else 0
        )
        if mode == "contention":
            entry, algo = "cold", ORDERS[int(rng.integers(len(ORDERS)))]
        else:
            entry = _ENTRIES[int(rng.integers(len(_ENTRIES)))]
            algo = _ALGOS[int(rng.integers(len(_ALGOS)))]
        specs.append(
            ConstrainedCaseSpec(
                case_id=case_id,
                family=family,
                params=params,
                n=n,
                mode=mode,
                entry=entry,
                algo=algo,
                num_flows=int(rng.integers(2, 7)),
                flow_seed=int(rng.integers(2**30)),
                rate_model=RATE_MODELS[int(rng.integers(len(RATE_MODELS)))],
                rate_seed=int(rng.integers(2**30)),
                intra_rack=float(rng.choice([0.0, 0.5, 0.8])),
                mu=float(rng.choice([0.0, 5.0, 100.0])),
                prev_seed=int(rng.integers(2**30)),
                vnf_capacity=vnf_capacity,
                occupied_switches=occupied,
                delay_factor=delay_factor,
                bandwidth_factor=bandwidth_factor,
                saturated_switches=saturated,
                num_chains=int(rng.integers(2, 5)),
            )
        )
    return specs


def _solve_spec(spec: ConstrainedCaseSpec, topology, flows, prev, constraints):
    """Run the spec's solver through its entry point (fresh state)."""
    if spec.entry == "cold":
        if spec.mode == "place":
            solver = msg_placement if spec.algo == "msg" else msg_greedy_placement
            return solver(topology, flows, spec.n, constraints=constraints)
        solver = msg_migration if spec.algo == "msg" else msg_greedy_migration
        return solver(topology, flows, prev, spec.mu, constraints=constraints)
    session = SolverSession(topology)
    if spec.entry == "session":
        if spec.mode == "place":
            return session.place(
                flows, spec.n, algo=spec.algo, constraints=constraints
            )
        return session.migrate(
            prev, flows, mu=spec.mu, algo=spec.algo, constraints=constraints
        )
    return session.solve(
        flows, spec.n,
        prev=prev, mu=spec.mu, algo=spec.algo, constraints=constraints,
    )


def _check_contention(spec: ConstrainedCaseSpec, topology, constraints, result):
    """Replay the admission sequence from scratch and audit it."""
    violations: list[Violation] = []
    chains = spec.chains(topology)
    # the documented admission orders, recomputed independently of the
    # solver: first-fit keeps input order, contention-aware sorts by
    # descending chain rate (ties by index)
    if spec.algo == "first-fit":
        order = list(range(len(chains)))
    else:
        order = sorted(
            range(len(chains)),
            key=lambda i: (-float(chains[i][0].total_rate), i),
        )
    rejected = {idx for idx, _ in result.rejections}
    state = constraints
    for i in order:
        chain_result = result.placements[i]
        if i in rejected:
            if chain_result is not None:
                violations.append(
                    Violation(
                        "contention_bookkeeping",
                        f"chain {i} is both rejected and placed",
                        {"chain": i},
                    )
                )
            continue
        if chain_result is None:
            violations.append(
                Violation(
                    "contention_bookkeeping",
                    f"chain {i} has neither a placement nor a rejection",
                    {"chain": i},
                )
            )
            continue
        placement = chain_result.placement
        rate = float(chains[i][0].total_rate)
        problems = state.check_placement(topology, placement, rate)
        if problems:
            violations.append(
                Violation(
                    "contention_feasibility",
                    f"chain {i} violates the accumulated constraints: "
                    f"{problems}",
                    {"chain": i, "problems": problems},
                )
            )
        if active_constraints(state) is not None:
            state = state.after_placement(placement, rate)
    for idx, diagnosis in result.rejections:
        if not diagnosis.get("reason"):
            violations.append(
                Violation(
                    "contention_diagnosis",
                    f"rejected chain {idx} carries no diagnosis reason",
                    {"chain": idx, "diagnosis": diagnosis},
                )
            )
    return violations


def run_constrained_case(task) -> dict:
    """Solve, referee and determinism-check one constrained case.

    Module-level and driven by a picklable ``(spec, rtol)`` task so it
    can run in worker processes and be journalled for resume.
    """
    spec, rtol = task
    count("constrained_cases")
    violations: list[Violation] = []
    outcome = "completed"
    checks = 0
    gate = OracleGate()
    try:
        topology, flows, prev, constraints = spec.build()
        active = active_constraints(constraints)

        if spec.mode == "contention":
            result = place_chains(
                topology, spec.chains(topology),
                constraints=constraints, order=spec.algo,
            )
            checks += 1
            violations += _check_contention(spec, topology, constraints, result)
            checks += 1
            replay = place_chains(
                topology, spec.chains(topology),
                constraints=constraints, order=spec.algo,
            )
            if json.dumps(result.to_dict(), sort_keys=True) != json.dumps(
                replay.to_dict(), sort_keys=True
            ):
                violations.append(
                    Violation(
                        "constrained_determinism",
                        "re-running the same contention spec changed the result",
                        {},
                    )
                )
            if not result.accepted:
                outcome = "infeasible"
        else:
            result = None
            try:
                result = _solve_spec(spec, topology, flows, prev, constraints)
            except InfeasibleError as exc:
                checks += 1
                if exc.diagnosis.get("reason"):
                    outcome = "infeasible"
                else:
                    violations.append(
                        Violation(
                            "constrained_diagnosis",
                            f"InfeasibleError without diagnosis: {exc}",
                            {"error": repr(exc)},
                        )
                    )

            # the constrained exact referee (gated; may itself declare
            # the instance infeasible — that is its answer, not an error)
            oracle = None
            oracle_infeasible = False
            try:
                if spec.mode == "place":
                    oracle = oracle_placement(
                        topology, flows, spec.n,
                        gate=gate, constraints=constraints,
                    )
                else:
                    oracle = oracle_migration(
                        topology, flows, prev, spec.mu,
                        gate=gate, constraints=constraints,
                    )
            except InfeasibleError:
                oracle_infeasible = True

            if result is not None:
                checks += 1
                if spec.mode == "place":
                    violations += check_placement_result(
                        topology, flows, result, n=spec.n, rtol=rtol
                    )
                else:
                    violations += check_migration_result(
                        topology, flows, result, mu=spec.mu, n=spec.n, rtol=rtol
                    )
                checks += 1
                problems = (
                    active.check_placement(
                        topology, result.placement, float(flows.total_rate)
                    )
                    if active is not None
                    else []
                )
                if problems:
                    violations.append(
                        Violation(
                            "constrained_feasibility",
                            f"accepted placement violates the constraints "
                            f"recomputed from scratch: {problems}",
                            {"problems": problems},
                        )
                    )
                checks += 1
                if oracle_infeasible:
                    violations.append(
                        Violation(
                            "constrained_soundness",
                            "solver accepted a placement on an instance the "
                            "exact referee proved infeasible",
                            {"placement": result.placement},
                        )
                    )
                else:
                    violations += check_oracle_floor(result, oracle, rtol=rtol)
            elif outcome == "infeasible":
                checks += 1
                if oracle is not None and not oracle_infeasible:
                    violations.append(
                        Violation(
                            "constrained_completeness",
                            "solver declared the instance infeasible but the "
                            "exact referee found a feasible placement "
                            f"(cost {float(oracle.cost)!r})",
                            {"oracle_cost": float(oracle.cost)},
                        )
                    )

            if result is not None:
                checks += 1
                try:
                    replayed = _solve_spec(
                        spec, topology, flows, prev, constraints
                    )
                except InfeasibleError:
                    replayed = None
                if replayed is None or json.dumps(
                    result.to_dict(), sort_keys=True
                ) != json.dumps(replayed.to_dict(), sort_keys=True):
                    violations.append(
                        Violation(
                            "constrained_determinism",
                            "re-running the same spec changed the result",
                            {},
                        )
                    )
    except Exception as exc:  # a crash on a generated scenario is a finding
        violations.append(
            Violation(
                "exception",
                f"{type(exc).__name__}: {exc}",
                {"error": repr(exc)},
            )
        )
        outcome = "error"
    if violations:
        count("constrained_violations", len(violations))
    return {
        "case_id": spec.case_id,
        "family": spec.family,
        "policy": f"{spec.mode}:{spec.algo}",
        "outcome": outcome,
        "checks": checks,
        "violations": [v.to_dict() for v in violations],
        "spec": spec.to_dict(),
    }


@dataclass(frozen=True)
class ConstrainedCampaignConfig:
    cases: int = 100
    seed: int = 0
    workers: int = 1
    rtol: float = DEFAULT_RTOL
    journal_path: str | Path | None = None
    report_path: str | Path | None = None


def run_constrained_campaign(config: ConstrainedCampaignConfig) -> dict:
    """Run the constrained campaign; returns the JSON-friendly report dict."""
    from repro.runtime.resilience import ResilienceConfig

    start = time.perf_counter()
    hits_before = counters().get("journal_hits", 0)
    specs = generate_constrained_cases(config.seed, config.cases)
    tasks = [(spec, config.rtol) for spec in specs]
    journal = Journal(config.journal_path) if config.journal_path else None
    try:
        resilience = ResilienceConfig(
            scope=f"verify-constrained@{config.seed}", journal=journal
        )
        records = map_tasks(
            run_constrained_case, tasks,
            workers=config.workers, resilience=resilience,
        )
    finally:
        if journal is not None:
            journal.close()
    failures = [r for r in records if r["violations"]]
    elapsed = time.perf_counter() - start
    report = {
        "config": {
            "cases": config.cases,
            "seed": config.seed,
            "workers": config.workers,
            "rtol": config.rtol,
        },
        "cases": len(records),
        "checks": int(sum(r["checks"] for r in records)),
        "violations": int(sum(len(r["violations"]) for r in records)),
        "coverage": {
            "by_family": dict(Counter(r["family"] for r in records)),
            "by_policy": dict(Counter(r["policy"] for r in records)),
            "by_outcome": dict(Counter(r["outcome"] for r in records)),
        },
        "failures": failures,
        "runtime": {
            "elapsed_seconds": elapsed,
            "workers": config.workers,
            "journal_hits": counters().get("journal_hits", 0) - hits_before,
        },
    }
    if config.report_path:
        from repro.utils.results_io import write_text_atomic

        write_text_atomic(Path(config.report_path), json.dumps(report, indent=2))
    return report
