"""Seeded random scenarios for the verification campaign.

A :class:`CaseSpec` is a *generating description* of one verification
case — topology family and parameters, weight jitter seed, workload
shape, solver entry point — small, hashable, and picklable, so it can be
journalled by the runtime layer (resume) and mutated field-wise by the
shrinker.  :meth:`CaseSpec.build` deterministically materializes the
actual ``(topology, flows, prev)`` scenario.

The family ladders are ordered large → small; the shrinker walks down a
ladder to find the smallest topology that still reproduces a failure.
Every entry was chosen to have at least two racks (so any
``intra_rack_fraction`` is buildable) and is small enough for the exact
oracles to referee.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.core.placement import dp_placement
from repro.topology import (
    bcube,
    dcell,
    fat_tree,
    jellyfish,
    leaf_spine,
    linear_ppdc,
    vl2,
    apply_uniform_delays,
)
from repro.topology.base import Topology
from repro.workload.flows import FlowSet, place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel, UniformTrafficModel

__all__ = ["FAMILIES", "CaseSpec", "generate_cases"]


@dataclass(frozen=True)
class Family:
    """One topology family: builder + its shrink ladder (large → small)."""

    builder: Callable[..., Topology]
    #: ``(params, num_switches)`` pairs, strictly decreasing in size
    ladder: tuple[tuple[tuple, int], ...]


#: every topology family of the repo, with validated ≥2-rack ladders
FAMILIES: dict[str, Family] = {
    "fat_tree": Family(fat_tree, (((4,), 20), ((2,), 5))),
    "linear": Family(linear_ppdc, (((6,), 6), ((5,), 5), ((4,), 4), ((3,), 3))),
    "leaf_spine": Family(
        leaf_spine, (((3, 2, 3), 5), ((3, 2, 2), 5), ((2, 2, 2), 4))
    ),
    "vl2": Family(vl2, (((2, 2, 2, 2), 6), ((1, 2, 2, 2), 5), ((1, 2, 2, 1), 5))),
    "bcube": Family(bcube, (((3,), 6), ((2,), 4))),
    "dcell": Family(dcell, (((3,), 4), ((2,), 3))),
    "jellyfish": Family(
        jellyfish, (((8, 3, 1), 8), ((6, 3, 1), 6), ((4, 3, 1), 4))
    ),
}

PLACE_ENTRIES = ("cold", "session", "solve", "place_many")
MIGRATE_ENTRIES = ("cold", "session", "solve")

#: sampling weights lean toward the paper's headline algorithms
_PLACE_ALGOS = (
    "dp", "dp", "dp",
    "top1", "dp-stroll", "primal-dual",
    "steering", "greedy", "random",
    "optimal",
)
_MIGRATE_ALGOS = ("mpareto", "mpareto", "optimal", "none", "plan", "mcf")

#: the exact solvers stay fast below this many switches / VNFs
_EXACT_MAX_SWITCHES = 10
_EXACT_MAX_VNFS = 4

RATE_MODELS = ("facebook", "uniform", "ones")


def sample_rates(model: str, count: int, seed: int) -> np.ndarray:
    """Deterministic traffic-rate vector for ``(model, count, seed)``."""
    if model == "facebook":
        return FacebookTrafficModel().sample(count, rng=seed)
    if model == "uniform":
        return UniformTrafficModel().sample(count, rng=seed)
    if model == "ones":
        return np.ones(count, dtype=np.float64)
    raise ValueError(f"unknown rate model {model!r}")


@dataclass(frozen=True)
class CaseSpec:
    """Everything needed to rebuild one verification case, bit-for-bit."""

    case_id: int
    family: str
    params: tuple
    n: int
    mode: str  # "place" | "migrate"
    entry: str  # "cold" | "session" | "solve" | "place_many"
    algo: str
    num_flows: int
    flow_seed: int
    rate_model: str
    rate_seed: int
    intra_rack: float
    mu: float = 0.0
    prev_seed: int = 0
    weight_seed: int | None = None
    #: shrinker knob: round edge weights to this many decimals
    weight_decimals: int | None = None
    #: shrinker knob: keep only these flow indices (None = all)
    flow_mask: tuple[int, ...] | None = None
    #: corrupt the solver's result on purpose ("" = no); campaign/testing
    inject: str = ""

    @property
    def effective_flows(self) -> int:
        return len(self.flow_mask) if self.flow_mask is not None else self.num_flows

    @property
    def num_switches(self) -> int:
        for params, switches in FAMILIES[self.family].ladder:
            if params == self.params:
                return switches
        return FAMILIES[self.family].builder(*self.params).num_switches

    def build(self) -> tuple[Topology, FlowSet, np.ndarray | None]:
        """Materialize ``(topology, flows, prev)`` for this spec."""
        topology = FAMILIES[self.family].builder(*self.params)
        if self.weight_seed is not None:
            topology = apply_uniform_delays(topology, seed=self.weight_seed)
        if self.weight_decimals is not None:
            d = self.weight_decimals
            floor = 1.0 if d == 0 else 10.0 ** (-d)
            graph = topology.graph.reweighted(
                lambda u, v, w: max(round(w, d), floor)
            )
            topology = topology.with_graph(graph, name=f"{topology.name}#q{d}")
        flows = place_vm_pairs(
            topology, self.num_flows, self.intra_rack, seed=self.flow_seed
        )
        rates = sample_rates(self.rate_model, self.num_flows, self.rate_seed)
        flows = flows.with_rates(rates)
        prev_rates = sample_rates(self.rate_model, self.num_flows, self.prev_seed)
        if self.flow_mask is not None:
            mask = np.asarray(self.flow_mask, dtype=np.int64)
            flows = flows.subset(mask)
            prev_rates = prev_rates[mask]
        prev = None
        if self.mode == "migrate":
            # previous epoch: same VM pairs under the previous rate draw
            prev = dp_placement(
                topology, flows.with_rates(prev_rates), self.n
            ).placement
        return topology, flows, prev

    def to_dict(self) -> dict:
        return {
            "case_id": self.case_id,
            "family": self.family,
            "params": list(self.params),
            "n": self.n,
            "mode": self.mode,
            "entry": self.entry,
            "algo": self.algo,
            "num_flows": self.num_flows,
            "flow_seed": self.flow_seed,
            "rate_model": self.rate_model,
            "rate_seed": self.rate_seed,
            "intra_rack": self.intra_rack,
            "mu": self.mu,
            "prev_seed": self.prev_seed,
            "weight_seed": self.weight_seed,
            "weight_decimals": self.weight_decimals,
            "flow_mask": list(self.flow_mask) if self.flow_mask else None,
            "inject": self.inject,
        }


def _spec_from_rng(case_id: int, rng: np.random.Generator) -> CaseSpec:
    family = sorted(FAMILIES)[int(rng.integers(len(FAMILIES)))]
    ladder = FAMILIES[family].ladder
    params, num_switches = ladder[int(rng.integers(len(ladder)))]
    weight_seed = int(rng.integers(2**31 - 1)) if rng.random() < 0.8 else None
    num_flows = int(rng.integers(1, 9))
    intra_rack = float(rng.choice([0.0, 0.5, 0.8, 1.0]))
    rate_model = RATE_MODELS[int(rng.integers(len(RATE_MODELS)))]
    n = int(rng.integers(1, min(5, num_switches) + 1))
    mode = "migrate" if rng.random() < 0.35 else "place"
    exact_ok = num_switches <= _EXACT_MAX_SWITCHES and n <= _EXACT_MAX_VNFS
    if mode == "place":
        algo = _PLACE_ALGOS[int(rng.integers(len(_PLACE_ALGOS)))]
        if algo == "optimal" and not exact_ok:
            algo = "dp"
        entry = PLACE_ENTRIES[int(rng.integers(len(PLACE_ENTRIES)))]
        if entry == "place_many" and algo != "dp":
            entry = "session"
        mu = 0.0
    else:
        algo = _MIGRATE_ALGOS[int(rng.integers(len(_MIGRATE_ALGOS)))]
        if algo == "optimal" and not (exact_ok and n <= 3):
            algo = "mpareto"
        entry = MIGRATE_ENTRIES[int(rng.integers(len(MIGRATE_ENTRIES)))]
        mu = float(rng.choice([0.0, 0.5, 5.0, 100.0]))
    return CaseSpec(
        case_id=case_id,
        family=family,
        params=params,
        n=n,
        mode=mode,
        entry=entry,
        algo=algo,
        num_flows=num_flows,
        flow_seed=int(rng.integers(2**31 - 1)),
        rate_model=rate_model,
        rate_seed=int(rng.integers(2**31 - 1)),
        intra_rack=intra_rack,
        mu=mu,
        prev_seed=int(rng.integers(2**31 - 1)),
        weight_seed=weight_seed,
    )


def generate_cases(seed: int, cases: int) -> list[CaseSpec]:
    """``cases`` independent scenario specs from one campaign seed.

    Each case gets its own :class:`~numpy.random.SeedSequence` child, so
    case ``i`` is identical across runs (and across ``cases`` counts — a
    resumed campaign with a larger ``--cases`` extends the same prefix).
    """
    root = np.random.SeedSequence(seed)
    return [
        _spec_from_rng(i, np.random.default_rng(child))
        for i, child in enumerate(root.spawn(cases))
    ]


def shrink_candidates(spec: CaseSpec):
    """Strictly-smaller mutations of ``spec``, most aggressive first.

    Every candidate reduces a bounded quantity (flow count, ladder
    position, chain length, weight complexity), so greedy descent over
    these candidates terminates.
    """
    # drop one flow at a time (the classic delta-debugging move)
    mask = (
        spec.flow_mask
        if spec.flow_mask is not None
        else tuple(range(spec.num_flows))
    )
    if len(mask) > 1:
        for drop in range(len(mask)):
            yield replace(
                spec, flow_mask=tuple(m for k, m in enumerate(mask) if k != drop)
            )
    # step down the topology ladder
    ladder = FAMILIES[spec.family].ladder
    position = next(
        (k for k, (params, _) in enumerate(ladder) if params == spec.params), None
    )
    if position is not None and position + 1 < len(ladder):
        params, switches = ladder[position + 1]
        yield replace(spec, params=params, n=min(spec.n, switches))
    # shorten the chain
    if spec.n > 1:
        yield replace(spec, n=spec.n - 1)
    # simplify the weights: fewer decimals, then unit weights
    if spec.weight_seed is not None:
        if spec.weight_decimals is None:
            yield replace(spec, weight_decimals=1)
        elif spec.weight_decimals > 0:
            yield replace(spec, weight_decimals=spec.weight_decimals - 1)
        yield replace(spec, weight_seed=None, weight_decimals=None)
    # drop the migration pressure
    if spec.mu != 0.0:
        yield replace(spec, mu=0.0)
