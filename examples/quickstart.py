#!/usr/bin/env python3
"""Quickstart: the paper's Example 1, end to end.

Builds the k=2 fat tree of Fig. 3 (the linear PPDC of Fig. 1), places a
2-VNF service chain optimally for the initial traffic, flips the traffic
rates, and lets mPareto (Algorithm 5) migrate the chain — reproducing the
published numbers 410 → 1004 → 416 (a 58.6 % total-cost reduction).

Run:  python examples/quickstart.py
"""

from repro import fat_tree
from repro.core import dp_placement, mpareto_migration, no_migration
from repro.workload.flows import FlowSet


def main() -> None:
    # the smallest PPDC: 2 hosts, 5 switches (Fig. 1 / Fig. 3)
    topo = fat_tree(2)
    h1, h2 = int(topo.hosts[0]), int(topo.hosts[1])
    print(f"topology: {topo}")

    # two VM flows: (v1, v1') both on h1, (v2, v2') both on h2
    flows = FlowSet(sources=[h1, h2], destinations=[h1, h2], rates=[100.0, 1.0])

    # TOP: the initial optimal placement (Algorithm 3)
    initial = dp_placement(topo, flows, 2)
    labels = [topo.graph.label(int(s)) for s in initial.placement]
    print(f"\ninitial rates <100, 1>: place f1,f2 on {labels}")
    print(f"  communication cost C_a = {initial.cost:.0f}   (paper: 410)")

    # dynamic traffic: the rates flip
    flipped = flows.with_rates([1.0, 100.0])
    stale = no_migration(topo, flipped, initial.placement)
    print(f"\nrates flip to <1, 100>; staying put costs {stale.cost:.0f}   (paper: 1004)")

    # TOM: mPareto migrates the chain (Algorithm 5)
    migrated = mpareto_migration(topo, flipped, initial.placement, mu=1.0)
    labels = [topo.graph.label(int(s)) for s in migrated.migration]
    print(f"\nmPareto migrates the chain to {labels}:")
    print(f"  communication cost  C_a = {migrated.communication_cost:.0f}")
    print(f"  migration cost      C_b = {migrated.migration_cost:.0f}")
    print(f"  total cost          C_t = {migrated.cost:.0f}   (paper: 416)")
    reduction = 1.0 - migrated.cost / stale.cost
    print(f"\ntotal-cost reduction vs no migration: {reduction:.1%}   (paper: 58.6%)")


if __name__ == "__main__":
    main()
