#!/usr/bin/env python3
"""Capacity planning: does the 40 % provisioning premise survive placement?

The paper assumes "enough edge bandwidths" because production links run
around 40 % utilization [31].  This example plans capacity for a
gravity-skewed tenant mix (hot racks, heavy-tailed Zoom-style sessions)
under the DP placement, then asks what happens to the same fabric when a
chain-blind baseline places the SFC instead — and renders where the DP
put the chain.

Run:  python examples/capacity_planning.py
"""

from repro import fat_tree
from repro.analysis import describe_placement, render_fat_tree_placement
from repro.baselines import steering_placement
from repro.core import dp_placement
from repro.routing import utilization_report
from repro.workload.gravity import place_vm_pairs_gravity
from repro.workload.zoom import ZoomTrafficModel


def main() -> None:
    topo = fat_tree(8)
    n = 5
    num_pairs = 96
    flows = place_vm_pairs_gravity(topo, num_pairs, skew=1.5, seed=11)
    flows = flows.with_rates(ZoomTrafficModel().sample(num_pairs, rng=11))
    print(f"fabric {topo}")
    print(f"workload: {num_pairs} gravity-skewed pairs, Zoom-style rates "
          f"(total {flows.total_rate:,.0f})\n")

    dp = dp_placement(topo, flows, n)
    print(describe_placement(topo, flows, dp.placement))
    print()
    print(render_fat_tree_placement(topo, dp.placement))

    # provision links so the DP placement's hottest link runs at 40%
    dp_report = utilization_report(topo, flows, dp.placement)
    print(f"\nprovisioned link capacity: {dp_report.capacity:,.0f} "
          f"(hottest link at {dp_report.max_utilization:.0%})")
    print(f"loaded links: {dp_report.num_loaded_links}/{dp_report.num_links}, "
          f"mean utilization {dp_report.mean_utilization:.1%}")

    # what the same fabric looks like under a chain-blind placement
    steering = steering_placement(topo, flows, n)
    st_report = utilization_report(
        topo, flows, steering.placement, capacity=dp_report.capacity
    )
    print(f"\nSteering placement on the same capacity:")
    print(f"  aggregate traffic: {steering.cost:,.0f} "
          f"(DP: {dp.cost:,.0f}, {steering.cost / dp.cost - 1:+.0%})")
    print(f"  hottest link: {st_report.max_utilization:.0%} of capacity")
    print(f"  links beyond the 40% design point: "
          f"{sum(1 for _ in st_report.overloaded)} overloaded outright"
          if not st_report.within_provisioning
          else "  no link exceeds capacity")


if __name__ == "__main__":
    main()
