#!/usr/bin/env python3
"""Beyond fat trees: TOP/TOM on leaf-spine, BCube and jellyfish fabrics.

The paper notes its "problems and solutions apply to any data center
topology".  This example builds three structurally different fabrics,
runs the same SFC placement + traffic change + migration pipeline on
each, and shows the frontier Pareto trace for the largest one.

Run:  python examples/custom_topology.py
"""

from repro import FacebookTrafficModel, bcube, jellyfish, leaf_spine, place_vm_pairs
from repro.core import dp_placement, mpareto_migration, no_migration
from repro.core.costs import CostContext
from repro.core.migration import frontier_trace, pareto_points
from repro.workload.sfc import access_sfc


def main() -> None:
    fabrics = [
        leaf_spine(num_leaves=8, num_spines=4, hosts_per_leaf=4),
        bcube(n=4, levels=1),
        jellyfish(num_switches=20, degree=4, hosts_per_switch=2, seed=3),
    ]
    sfc = access_sfc(5)
    model = FacebookTrafficModel()
    mu = 500.0

    for topo in fabrics:
        print(f"\n=== {topo.name}: {topo.num_hosts} hosts, "
              f"{topo.num_switches} switches ===")
        flows = place_vm_pairs(topo, 24, seed=11)
        flows = flows.with_rates(model.sample(24, rng=11))

        placed = dp_placement(topo, flows, sfc)
        print(f"SFC {tuple(sfc)}")
        print(f"  TOP placement cost: {placed.cost:,.0f}")

        # traffic changes: full redraw, then migrate
        new_flows = flows.with_rates(model.sample(24, rng=12))
        stay = no_migration(topo, new_flows, placed.placement)
        moved = mpareto_migration(topo, new_flows, placed.placement, mu)
        print(f"  after rate change: stay {stay.cost:,.0f}  "
              f"mPareto {moved.cost:,.0f} "
              f"({moved.num_migrated} VNFs moved, "
              f"{1 - moved.cost / stay.cost:.1%} saved)")

    # Pareto trace on the last fabric
    topo = fabrics[-1]
    flows = place_vm_pairs(topo, 24, seed=11)
    flows = flows.with_rates(model.sample(24, rng=11))
    source = dp_placement(topo, flows, sfc).placement
    new_flows = flows.with_rates(model.sample(24, rng=12))
    target = dp_placement(topo, new_flows, sfc).placement
    trace = frontier_trace(CostContext(topo, new_flows), source, target, mu)
    print(f"\nfrontier trace on {topo.name}: "
          f"{trace.num_frontiers} parallel frontiers, "
          f"non-dominated: {pareto_points(trace).tolist()}")
    for i in range(trace.num_frontiers):
        print(f"  frontier {i}: C_b {trace.migration_costs[i]:>8,.0f}  "
              f"C_a {trace.communication_costs[i]:>10,.0f}")


if __name__ == "__main__":
    main()
