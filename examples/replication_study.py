#!/usr/bin/env python3
"""Replication vs migration — the paper's closing future-work question.

Section VII asks "to which extent VNF replication could be beneficial in
terms of dynamic traffic mitigation when compared to VNF migration".
This example deploys 1–3 static chain copies (every flow picks its
cheapest complete copy; nothing ever moves) and races them against
single-chain mPareto migration over the same dynamic day.

Run:  python examples/replication_study.py
"""

import numpy as np

from repro import DiurnalModel, FacebookTrafficModel, assign_cohorts, fat_tree, place_vm_pairs
from repro.core.replication import (
    per_flow_copy_choice,
    replicated_communication_cost,
    replicated_placement,
)
from repro.core.costs import CostContext
from repro.sim.engine import simulate_day
from repro.sim.policies import MParetoPolicy, NoMigrationPolicy
from repro.utils.tables import ascii_table
from repro.workload.dynamics import RedrawnRates


def main() -> None:
    topo = fat_tree(8)
    l, n, mu = 48, 5, 1e4
    model = FacebookTrafficModel()
    rng = np.random.default_rng(5)

    flows = place_vm_pairs(topo, l, seed=5)
    flows = flows.with_rates(model.sample(l, rng=5))
    process = RedrawnRates(flows, DiurnalModel(), assign_cohorts(l, seed=5), model, seed=5)
    start = np.sort(rng.choice(topo.switches, size=n, replace=False))
    print(f"fabric {topo}; {l} flows; {n}-VNF chain; mu={mu:g}")

    rows = []
    # dynamic single chain
    for name, policy in (
        ("mPareto migration", MParetoPolicy(topo, mu)),
        ("no migration", NoMigrationPolicy(topo, mu)),
    ):
        day = simulate_day(topo, flows, policy, process, start)
        rows.append([name, 1, day.total_cost, day.total_migrations])

    # static replication
    hour1 = flows.with_rates(process.rates_at(1))
    for copies in (1, 2, 3):
        deployment = replicated_placement(topo, hour1, n, num_copies=copies)
        day_cost = sum(
            replicated_communication_cost(
                topo, flows.with_rates(process.rates_at(h)), deployment.copies
            )
            for h in range(1, 13)
        )
        rows.append([f"static {copies}-replica", copies, day_cost, 0])
        if copies == 3:
            ctx = CostContext(topo, flows.with_rates(process.rates_at(6)))
            choice = per_flow_copy_choice(ctx, deployment)
            share = np.bincount(choice, minlength=copies) / l
            print(f"copy usage at noon: {np.round(share, 2)}")

    print()
    print(ascii_table(
        ["strategy", "chains", "day cost", "migrations"],
        rows,
        title="replication vs migration over one dynamic day",
    ))
    mp = rows[0][2]
    best_static = min(r[2] for r in rows[2:])
    print(f"\nbest static replication vs mPareto migration: "
          f"{best_static / mp - 1.0:+.1%} day cost")


if __name__ == "__main__":
    main()
