#!/usr/bin/env python3
"""A full diurnal day in a k=8 policy-preserving data center.

Simulates the paper's dynamic-traffic setting (Section VI): Facebook-like
flow rates with hourly churn under the Eq. 9 diurnal envelope, a 7-VNF
service chain, and four reactions to the changing traffic — mPareto VNF
migration (Algorithm 5), exact VNF migration (Algorithm 6), PLAN VM
migration [17] and no migration at all.  Prints the hourly cost table and
the day totals.

Run:  python examples/datacenter_day.py
"""

import numpy as np

from repro import FacebookTrafficModel, fat_tree
from repro.sim import (
    McfVmPolicy,
    MParetoPolicy,
    NoMigrationPolicy,
    OptimalVnfPolicy,
    RunConfig,
    run_replications,
)
from repro.utils.tables import ascii_table


def main() -> None:
    topo = fat_tree(8)
    print(f"fabric: {topo}")

    config = RunConfig(
        num_pairs=64,
        num_vnfs=7,
        mu=1e4,  # VNF migration coefficient (paper: 1e4 .. 1e5)
        dynamics="redrawn",  # per-flow rate churn every hour
        initial_placement="hour0",  # the day starts from the silent-hour tie
        replications=3,
        seed=2024,
    )
    policies = {
        "mpareto": lambda t, mu: MParetoPolicy(t, mu),
        "optimal": lambda t, mu: OptimalVnfPolicy(t, mu),
        "mcf-vm": lambda t, mu: McfVmPolicy(t, mu),
        "no-migration": lambda t, mu: NoMigrationPolicy(t, mu),
    }

    print(f"simulating {config.replications} replications of a 12-hour day ...")
    results, summaries = run_replications(
        topo, FacebookTrafficModel(), config, policies
    )

    # hourly table, averaged over replications
    hours = [r.hour for r in results[0].days["mpareto"].records]
    rows = []
    for idx, hour in enumerate(hours):
        row = [hour]
        for name in policies:
            row.append(
                float(
                    np.mean(
                        [rep.days[name].records[idx].total_cost for rep in results]
                    )
                )
            )
        rows.append(row)
    print()
    print(ascii_table(["hour", *policies], rows, title="mean hourly total cost"))

    print("\nday totals (mean over replications, 95% CI):")
    for name in policies:
        total = summaries[name]["total_cost"]
        migs = summaries[name]["migrations"]
        print(f"  {name:13s} cost {total.mean:>14,.0f} ± {total.halfwidth:,.0f}"
              f"   migrations {migs.mean:5.1f}")

    stay = summaries["no-migration"]["total_cost"].mean
    mp = summaries["mpareto"]["total_cost"].mean
    print(f"\nmPareto reduces the day's traffic cost by {1 - mp / stay:.1%} "
          "vs never migrating")

    # gap-to-exact and cost-saved-per-migration, on the first replication
    from repro.sim import analyze_gaps, migration_efficiency

    days = results[0].days
    gaps = analyze_gaps(days, reference="optimal")
    worst_hour, worst_gap = gaps["mpareto"].worst_hour()
    print(f"mPareto vs exact TOM (rep 0): total gap "
          f"{gaps['mpareto'].total_gap:+.1%}, worst hour "
          f"{worst_hour + 1} at {worst_gap:+.1%}")
    efficiency = migration_efficiency(days, baseline="no-migration")
    for name in ("mpareto", "mcf-vm"):
        if name in efficiency and efficiency[name] > 0:
            print(f"{name}: {efficiency[name]:,.0f} traffic saved per migration")


if __name__ == "__main__":
    main()
