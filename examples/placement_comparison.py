#!/usr/bin/env python3
"""Compare every VNF placement algorithm on one realistic workload.

Places service chains of growing length on a delay-weighted k=8 fat tree
(the Fig. 10 setting) with 64 Facebook-rate VM pairs, and prints the
total communication cost of:

* DP            — Algorithm 3 (the paper's practical solver)
* Optimal       — Algorithm 4 (warm-started branch-and-bound, exact)
* DP-Stroll     — Algorithm 2 driven by the single heaviest flow
* PrimalDual    — Algorithm 1 (the 2+ε scheme) on that flow
* Steering [55] and Greedy [34] — the published baselines

Run:  python examples/placement_comparison.py
"""

import numpy as np

from repro import FacebookTrafficModel, apply_uniform_delays, fat_tree, place_vm_pairs
from repro.baselines import greedy_liu_placement, steering_placement
from repro.core import (
    dp_placement,
    dp_placement_top1,
    optimal_placement,
    primal_dual_placement_top1,
)
from repro.utils.tables import ascii_table


def main() -> None:
    topo = apply_uniform_delays(fat_tree(8), mean=1.5, variance=0.5, seed=7)
    print(f"fabric: {topo}")

    num_pairs = 64
    flows = place_vm_pairs(topo, num_pairs, seed=7)
    flows = flows.with_rates(FacebookTrafficModel().sample(num_pairs, rng=7))
    heaviest = int(np.argmax(flows.rates))
    print(f"workload: {num_pairs} VM pairs, total rate {flows.total_rate:,.0f}")

    from repro.core.costs import CostContext

    ctx = CostContext(topo, flows)
    rows = []
    for n in (3, 5, 7, 9):
        dp = dp_placement(topo, flows, n)
        opt = optimal_placement(topo, flows, n, budget=500_000)
        steering = steering_placement(topo, flows, n)
        greedy = greedy_liu_placement(topo, flows, n)
        # the single-flow algorithms, driven by the heaviest flow; their
        # placements are priced against the FULL workload for comparability
        stroll = dp_placement_top1(topo, flows, n, flow_index=heaviest)
        pd = primal_dual_placement_top1(topo, flows, n, flow_index=heaviest)
        rows.append(
            [
                n,
                opt.cost,
                dp.cost,
                greedy.cost,
                steering.cost,
                ctx.communication_cost(stroll.placement),
                ctx.communication_cost(pd.placement),
            ]
        )
        print(f"  n={n}: DP within {dp.cost / opt.cost - 1:.2%} of Optimal")

    print()
    print(
        ascii_table(
            ["n", "optimal", "dp", "greedy", "steering", "dp-stroll*", "primal-dual*"],
            rows,
            title=(
                "total communication cost C_a(p) for the full workload\n"
                "(* = chain placed for the heaviest flow only, then priced "
                "on all flows)"
            ),
        )
    )


if __name__ == "__main__":
    main()
