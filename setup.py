"""Legacy setup shim.

All metadata lives in pyproject.toml; this file exists so the package
installs in offline environments whose pip/setuptools cannot build
PEP 660 editable wheels (`python setup.py develop`).
"""

from setuptools import setup

setup()
