"""Benchmark: regenerate Fig. 12 (survivability under fault injection)."""

import numpy as np


def test_fig12_survivability(run_experiment):
    result = run_experiment("fig12_survivability")
    zero = result.rows[0]
    assert zero["switch_rate"] == 0.0
    # a fault-free day books no repairs and drops nothing
    for policy in ("mpareto", "nomig"):
        assert zero[f"{policy}_repair_cost"] == 0.0
        assert zero[f"{policy}_dropped_traffic"] == 0.0
        assert zero[f"{policy}_infeasible"] == 0
    for row in result.rows:
        mp_drop = row["mpareto_dropped_traffic"]
        stay_drop = row["nomig_dropped_traffic"]
        if not (np.isnan(mp_drop) or np.isnan(stay_drop)):
            # the drop mask depends only on the fault trace and the flow
            # endpoints — never on the placement — so both policies drop
            # exactly the same traffic under the same fault seed
            np.testing.assert_allclose(mp_drop, stay_drop, rtol=1e-9)
        mp = row["mpareto_total_cost"]
        stay = row["nomig_total_cost"]
        if not (np.isnan(mp) or np.isnan(stay)):
            # hour-by-hour, staying put is always in mPareto's candidate
            # set; path divergence keeps this empirical rather than exact
            assert mp <= 1.05 * stay
