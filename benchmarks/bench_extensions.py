"""Benchmarks: the paper's Section VII future-work extensions."""


def test_ext_replication(run_experiment):
    result = run_experiment("ext_replication")
    by_name = {row["strategy"]: row["day_cost"] for row in result.rows}
    # more copies never hurt a static deployment
    reps = sorted(k for k in by_name if k.startswith("replicas"))
    for a, b in zip(reps, reps[1:]):
        assert by_name[b] <= by_name[a] + 1e-6
    # any strategy beats never moving a stale chain
    assert by_name["mpareto"] <= by_name["no_migration"] + 1e-6


def test_ext_multi_sfc(run_experiment):
    result = run_experiment("ext_multi_sfc")
    for row in result.rows:
        assert row["migrated_cost"] <= row["stay_cost"] + 1e-6


def test_ext_schedules(run_experiment):
    result = run_experiment("ext_schedules")
    by_name = {row["policy"]: row for row in result.rows}
    # every-hour migrates at least as often as the sparser schedules
    assert by_name["every_hour"]["migrations"] >= by_name["periodic_3h"]["migrations"]
    assert by_name["never"]["migrations"] == 0
    # never-migrate pays the most (stale hour-0 chain all day)
    worst = max(row["day_cost"] for row in result.rows)
    assert by_name["never"]["day_cost"] == worst


def test_ext_arrivals(run_experiment):
    result = run_experiment("ext_arrivals")
    by_name = {row["policy"]: row for row in result.rows}
    assert by_name["mpareto"]["day_cost"] <= by_name["no_migration"]["day_cost"] + 1e-6
    assert by_name["no_migration"]["vnf_moves"] == 0.0
