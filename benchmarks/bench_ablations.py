"""Benchmarks: the ablation studies of DESIGN.md §5."""


def test_ablation_complete_graph(run_experiment):
    result = run_experiment("ablation_complete_graph")
    for row in result.rows:
        if row["raw_graph_cost"] is not None:
            assert row["raw_graph_cost"] >= row["closure_cost"] - 1e-9


def test_ablation_dp_backends(run_experiment):
    result = run_experiment("ablation_dp_backends")
    for row in result.rows:
        # paper mode == the pseudocode reference; second-best never worse
        # per instance is not guaranteed, but the reference must agree
        assert abs(row["paper_mode"] - row["reference"]) < 1e-9


def test_ablation_frontiers(run_experiment):
    result = run_experiment("ablation_frontiers")
    for row in result.rows:
        assert row["mpareto"] >= row["optimal"] - 1e-6
        assert row["mpareto"] <= row["endpoints_only"] + 1e-6


def test_ablation_mu(run_experiment):
    result = run_experiment("ablation_mu")
    moves = [row["vnfs_moved"] for row in result.rows]
    # more expensive migration => no more moves than cheaper migration
    assert all(a >= b for a, b in zip(moves, moves[1:]))


def test_ablation_dynamics(run_experiment):
    result = run_experiment("ablation_dynamics")
    for row in result.rows:
        assert row["fresh_day_cost"] <= row["stale_day_cost"] + 1e-6
