"""Benchmark: regenerate Fig. 8 (the Eq. 9 daily traffic pattern)."""


def test_fig08_diurnal(run_experiment):
    result = run_experiment("fig08_diurnal")
    west = [row["tau_west"] for row in result.rows]
    # Eq. 9 exactly: silent boundaries, 1 - tau_min peak at noon
    assert west[0] == 0.0 and west[-1] == 0.0
    assert abs(max(west) - 0.8) < 1e-12
