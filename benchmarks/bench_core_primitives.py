"""Micro-benchmarks of the hot computational primitives.

Unlike the figure benchmarks (which run an experiment once and attach its
table), these use pytest-benchmark's statistical timing on the kernels
the profiling in DESIGN.md §7 identified as hot: the all-pairs
shortest-path computation, the vectorized stroll DP, the full Algorithm 3
placement, the mPareto migration and the min-cost-flow solver.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.migration import mpareto_migration
from repro.core.placement import dp_placement
from repro.core.stroll import StrollEngine
from repro.flow.mincostflow import solve_transportation
from repro.graphs.metric_closure import metric_closure
from repro.topology.fattree import fat_tree
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


@pytest.fixture(scope="module")
def k8():
    return fat_tree(8)


@pytest.fixture(scope="module")
def workload(k8):
    flows = place_vm_pairs(k8, 64, seed=1)
    return flows.with_rates(FacebookTrafficModel().sample(64, rng=1))


def test_apsp_k8(benchmark):
    def compute():
        topo = fat_tree(8)  # fresh instance: defeat the cache
        return topo.graph.distances

    dist = benchmark(compute)
    assert dist.shape == (208, 208)


def test_stroll_engine_batch_k8(benchmark, k8):
    closure = metric_closure(k8.graph, k8.switches)

    def solve():
        engine = StrollEngine(closure, target=0)
        return engine.batch_solve(5)

    costs, _ = benchmark(solve)
    assert np.isfinite(costs[1:]).all()


def test_dp_placement_k8_n7(benchmark, k8, workload):
    result = benchmark(dp_placement, k8, workload, 7)
    assert result.num_vnfs == 7


def test_mpareto_k8(benchmark, k8, workload):
    source = dp_placement(k8, workload, 5).placement
    changed = workload.with_rates(FacebookTrafficModel().sample(64, rng=2))
    result = benchmark(mpareto_migration, k8, changed, source, 1e3)
    assert result.cost > 0


def test_min_cost_flow_transportation(benchmark):
    rng = np.random.default_rng(0)
    cost = rng.uniform(1, 10, size=(60, 40))
    supply = np.ones(60, dtype=np.int64)
    capacity = np.full(40, 3, dtype=np.int64)
    assignment, total = benchmark(solve_transportation, cost, supply, capacity)
    assert assignment.sum() == 60
