"""Benchmark: constrained solve throughput (MSG vs constrained exact).

Times the constrained placement family on one topology across constraint
regimes — unconstrained MSG, capacity-pruned, delay-bounded, and the
multi-SFC contention loop — and compares against the constrained exact
solver where the instance is gate-sized.  The interesting ratios:

* MSG under active constraints should stay within a small factor of the
  unconstrained MSG solve (pruning pays for the label bookkeeping);
* the constrained exact solve is the cost ceiling MSG is amortizing
  away — the speedup column is why the beam family exists.

The JSON report (``--json``, default ``reports/BENCH_constrained.json``)
is persisted as a CI artifact next to ``BENCH_incremental.json``.

Usage::

    python benchmarks/bench_constrained.py            # default sizes
    python benchmarks/bench_constrained.py --smoke    # CI-sized
    python benchmarks/bench_constrained.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import time

from repro import (
    Constraints,
    FacebookTrafficModel,
    fat_tree,
    msg_placement,
    optimal_placement,
    place_chains,
    place_vm_pairs,
)
from repro.constraints import chain_delay
from repro.core.placement import dp_placement
from repro.utils.results_io import write_text_atomic


def _timed(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench(k, num_pairs, n, num_chains, repeats, json_path, smoke):
    topology = fat_tree(k)
    flows = place_vm_pairs(topology, num_pairs, seed=3)
    flows = flows.with_rates(FacebookTrafficModel().sample(num_pairs, rng=3))
    reference = chain_delay(topology, dp_placement(topology, flows, n).placement)
    regimes = {
        "unconstrained": None,
        "capacity": Constraints(
            vnf_capacity=1,
            occupancy={int(s): 1 for s in topology.switches[: k]},
        ),
        "delay": Constraints(max_delay=1.2 * reference) if reference else None,
        "combined": Constraints(
            vnf_capacity=2,
            max_delay=1.5 * reference if reference else None,
            bandwidth=4.0 * float(flows.total_rate),
        ),
    }

    report = {"k": k, "num_pairs": num_pairs, "n": n, "smoke": smoke,
              "regimes": {}}
    baseline = None
    for name, constraints in regimes.items():
        seconds, result = _timed(
            lambda c=constraints: msg_placement(
                topology, flows, n, constraints=c
            ),
            repeats,
        )
        if baseline is None:
            baseline = seconds
        row = {
            "seconds": seconds,
            "cost": float(result.cost),
            "vs_unconstrained": seconds / baseline if baseline else None,
        }
        exact_ok = topology.num_switches <= 12 and n <= 4
        if exact_ok:
            exact_seconds, exact = _timed(
                lambda c=constraints: optimal_placement(
                    topology, flows, n, constraints=c
                ),
                repeats,
            )
            row["exact_seconds"] = exact_seconds
            row["msg_speedup_vs_exact"] = exact_seconds / max(seconds, 1e-12)
            row["optimality_gap"] = float(result.cost) / max(
                float(exact.cost), 1e-12
            ) - 1.0
        report["regimes"][name] = row
        print(
            f"{name:14s} {seconds * 1e3:8.2f} ms  cost {row['cost']:.4g}"
            + (
                f"  exact {row['exact_seconds'] * 1e3:8.2f} ms "
                f"(speedup {row['msg_speedup_vs_exact']:.1f}x, "
                f"gap {row['optimality_gap']:+.2%})"
                if "exact_seconds" in row
                else ""
            )
        )

    chains = []
    for i in range(num_chains):
        fl = place_vm_pairs(topology, num_pairs, seed=100 + i)
        chains.append(
            (fl.with_rates(FacebookTrafficModel().sample(num_pairs, rng=100 + i)), n)
        )
    for order in ("first-fit", "contention-aware"):
        seconds, result = _timed(
            lambda o=order: place_chains(
                topology, chains,
                constraints=Constraints(vnf_capacity=1), order=o,
            ),
            repeats,
        )
        report["regimes"][f"contention:{order}"] = {
            "seconds": seconds,
            "accepted": result.accepted,
            "offered": num_chains,
            "chains_per_second": num_chains / max(seconds, 1e-12),
        }
        print(
            f"contention:{order:17s} {seconds * 1e3:8.2f} ms  "
            f"admitted {result.accepted}/{num_chains}"
        )

    if json_path:
        write_text_atomic(json_path, json.dumps(report, indent=2, sort_keys=True))
        print(f"report written to {json_path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--k", type=int, default=4, help="fat-tree arity")
    parser.add_argument("--pairs", type=int, default=12)
    parser.add_argument("--n", type=int, default=3, help="chain length")
    parser.add_argument("--chains", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run (k=2, 1 repeat)"
    )
    parser.add_argument("--json", default="reports/BENCH_constrained.json")
    args = parser.parse_args(argv)
    if args.smoke:
        return bench(2, 6, 3, 4, 1, args.json, True)
    return bench(
        args.k, args.pairs, args.n, args.chains, args.repeats, args.json, False
    )


if __name__ == "__main__":
    raise SystemExit(main())
