"""Benchmark: the placement service under million-user flow churn.

Drives :class:`~repro.serve.server.PlacementService` with the seeded
churn workload from :mod:`repro.serve.driver`: redrawn tenant flowsets
(each flow aggregating ``users_per_flow`` end users), periodic deadline
pressure, switch fail/repair ingestion mid-traffic, and migrations off
the last served placement.  The default (full) shape models over ten
million users (``500 requests x 12 pairs x 2000 users``); ``--smoke`` is
the CI-sized slice.

Reported (and persisted to ``--json``, default
``reports/BENCH_serve.json``, as a CI artifact next to
``BENCH_incremental.json``):

* **throughput** — requests/second actually served;
* **latency** — p50/p95/p99/max end-to-end seconds plus p95 queue wait;
* **shed rate** — the fraction of requests explicitly rejected by
  admission control (never silently queued);
* **degraded-solve fraction** — how many served answers rode a fallback
  chain, every one flagged ``extra["degraded"]``;
* **service health** — pool/breaker/admission counters and per-epoch
  cache hit/miss/invalidation stats from the metrics endpoint.

Usage::

    python benchmarks/bench_serve.py            # full: ~12M modeled users
    python benchmarks/bench_serve.py --smoke    # CI-sized
    python benchmarks/bench_serve.py --rate-limit 200 --latency-budget 0.05
"""

from __future__ import annotations

import argparse
import asyncio
import json

from repro.serve import ChurnConfig, PlacementService, ServeConfig, run_churn
from repro.utils.results_io import write_text_atomic


def bench(args) -> int:
    serve_config = ServeConfig(
        max_queue=args.max_queue,
        max_concurrency=args.solver_concurrency,
        rate_limit=args.rate_limit,
        latency_budget=args.latency_budget,
    )
    churn = ChurnConfig(
        k=args.k,
        num_pairs=args.pairs,
        sfc_size=args.sfc,
        requests=args.requests,
        concurrency=args.concurrency,
        users_per_flow=args.users_per_flow,
        seed=args.seed,
        deadline_every=args.deadline_every,
        tight_deadline=0.0,
        fault_every=args.fault_every,
        migrate_every=args.migrate_every,
    )

    async def run() -> dict:
        async with PlacementService(serve_config) as service:
            summary = await run_churn(service, churn)
            summary["service"] = service.metrics()
            return summary

    summary = asyncio.run(run())

    resolved = summary["completed"] + summary["shed_total"] + summary["failed"]
    resolved += summary["infeasible"]
    assert resolved == summary["requests"], "requests leaked: some never resolved"
    assert summary["failed"] == 0, "unflagged failures under a healthy fabric"

    latency = summary["latency"]
    print(
        f"churn: fat_tree({args.k}), {args.requests} requests x "
        f"{args.pairs} pairs x {args.users_per_flow} users "
        f"= {summary['users_modeled']:,} modeled users"
    )
    print(
        f"served      : {summary['completed']}/{summary['requests']} "
        f"at {summary['rps']:.0f} rps "
        f"(shed rate {100 * summary['shed_rate']:.1f}%, "
        f"degraded {100 * summary['degraded_fraction']:.1f}%, "
        f"{summary['batched']} batched, {summary['retried']} retried)"
    )
    print(
        f"latency     : p50 {1000 * latency['p50']:.1f}ms  "
        f"p95 {1000 * latency['p95']:.1f}ms  "
        f"p99 {1000 * latency['p99']:.1f}ms  "
        f"max {1000 * latency['max']:.1f}ms  "
        f"(queue-wait p95 {1000 * summary['queue_wait_p95']:.1f}ms)"
    )
    pool = summary["service"]["pool"]
    print(
        f"service     : {pool['sessions']} pooled session(s), "
        f"{pool['quarantined']} quarantined, "
        f"{summary['faults_ingested']} fault deltas ingested, "
        f"breaker {summary['service']['breaker']['state']}"
    )
    if args.json:
        write_text_atomic(args.json, json.dumps(summary, indent=2, sort_keys=True))
        print(f"report written to {args.json}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--k", type=int, default=4)
    parser.add_argument("--pairs", type=int, default=None)
    parser.add_argument("--sfc", type=int, default=2)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument("--users-per-flow", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--max-queue", type=int, default=128)
    parser.add_argument("--solver-concurrency", type=int, default=4)
    parser.add_argument("--rate-limit", type=float, default=None)
    parser.add_argument("--latency-budget", type=float, default=None)
    parser.add_argument(
        "--deadline-every", type=int, default=10,
        help="every Nth request carries a zero deadline (0 disables)",
    )
    parser.add_argument(
        "--fault-every", type=int, default=25,
        help="ingest a switch fail/repair delta every N requests (0 disables)",
    )
    parser.add_argument(
        "--migrate-every", type=int, default=8,
        help="every Nth request migrates off the last placement (0 disables)",
    )
    parser.add_argument("--json", default="reports/BENCH_serve.json")
    args = parser.parse_args(argv)
    if args.requests is None:
        args.requests = 60 if args.smoke else 500
    if args.pairs is None:
        args.pairs = 8 if args.smoke else 12
    return bench(args)


if __name__ == "__main__":
    raise SystemExit(main())
