"""Benchmark: the sharded day loop on a streamed paper-scale population.

Runs one diurnal day over a :class:`~repro.workload.stream.StreamingWorkload`
— the parent process never materializes the flow population — three ways:

* **serial**: one shard, in-process (the unsharded-equivalent baseline);
* **sharded**: 8 shards on a worker pool (``min(8, cores)`` workers);
* **chaos**: the same 8-shard run under deterministic fault injection
  (worker crashes and hard kills with pool rebuilds and re-dispatch).

and reports

* **bit-identity**: all three runs must serialize to the same JSON bytes
  (asserted, not just reported — supervision is pure scheduling);
* **wall clock**: seconds per leg and the pool-vs-serial speedup.  The
  ``>= 2x`` speedup gate only applies on machines with at least 4 cores
  (a 1-core container runs the pool legs for correctness, not speed);
* **supervision counters**: dispatches, retries, pool restarts.

The JSON report (``--json``, default ``reports/BENCH_shard.json``) is
persisted as a CI artifact by the shard workflow job.

Usage::

    python benchmarks/bench_shard.py            # full: k=16, 1M flows
    python benchmarks/bench_shard.py --smoke    # CI-sized
    python benchmarks/bench_shard.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.runtime.resilience import ChaosConfig
from repro.shard import ShardConfig, simulate_day_sharded
from repro.sim.policies import MParetoPolicy
from repro.topology.fattree import fat_tree
from repro.utils.results_io import write_text_atomic
from repro.workload.diurnal import DiurnalModel
from repro.workload.stream import RackTable, StreamingWorkload

SPEEDUP_FLOOR = 2.0
SPEEDUP_MIN_CORES = 4


def _run_leg(topology, stream, placement, horizon, mu, *, num_shards,
             workers, chaos=None):
    config = ShardConfig(
        num_shards=num_shards,
        block_size=stream.chunk_size,
        workers=workers,
        chaos=chaos,
        backoff_base=0.001,
    )
    report: dict = {}
    start = time.perf_counter()
    day = simulate_day_sharded(
        topology,
        stream,
        MParetoPolicy(topology, mu=mu),
        None,
        placement,
        range(1, horizon + 1),
        config=config,
        diurnal=DiurnalModel(num_hours=horizon),
        report=report,
    )
    elapsed = time.perf_counter() - start
    return json.dumps(day.to_dict(), sort_keys=True), elapsed, report


def bench(k, num_flows, chunk_size, n, horizon, mu, json_path, smoke):
    cores = os.cpu_count() or 1
    topology = fat_tree(k)
    stream = StreamingWorkload(
        rack_table=RackTable.from_topology(topology),
        num_flows=num_flows,
        chunk_size=chunk_size,
        seed=11,
    )
    placement = np.asarray(topology.switches[:n], dtype=np.int64)
    pool_workers = min(8, max(2, cores))
    print(
        f"streamed day: fat_tree(k={k}), {num_flows} flows in "
        f"{stream.num_chunks} chunks of {chunk_size}, n={n}, {horizon}h, "
        f"{cores} cores"
    )

    serial_bytes, serial_s, _ = _run_leg(
        topology, stream, placement, horizon, mu, num_shards=1, workers=1
    )
    sharded_bytes, sharded_s, sharded_report = _run_leg(
        topology, stream, placement, horizon, mu,
        num_shards=8, workers=pool_workers,
    )
    chaos = ChaosConfig(
        seed=7, crash_rate=0.1, kill_rate=0.1, faulty_attempts=1
    )
    chaos_bytes, chaos_s, chaos_report = _run_leg(
        topology, stream, placement, horizon, mu,
        num_shards=8, workers=pool_workers, chaos=chaos,
    )

    assert sharded_bytes == serial_bytes, (
        "8-shard day diverged from the serial baseline"
    )
    assert chaos_bytes == serial_bytes, (
        "chaos-injected day diverged from the serial baseline"
    )
    print("bit-identity: serial == sharded == chaos on the full DayResult  OK")

    speedup = serial_s / sharded_s if sharded_s else 0.0
    print(f"serial      : {serial_s:7.3f}s")
    print(
        f"sharded     : {sharded_s:7.3f}s  ({pool_workers} workers, "
        f"{sharded_report['dispatched']} tasks)  {speedup:5.2f}x"
    )
    print(
        f"chaos       : {chaos_s:7.3f}s  "
        f"(retries={chaos_report['retries']}, "
        f"pool_restarts={chaos_report['pool_restarts']})"
    )
    if cores >= SPEEDUP_MIN_CORES:
        assert speedup >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x on {cores} cores, got {speedup:.2f}x"
        )
    else:
        print(
            f"speedup gate skipped: {cores} core(s) < {SPEEDUP_MIN_CORES} "
            "(pool legs ran for correctness only)"
        )

    report = {
        "workload": {
            "topology": f"fat_tree({k})",
            "num_flows": num_flows,
            "chunk_size": chunk_size,
            "num_chunks": stream.num_chunks,
            "num_vnfs": n,
            "horizon": horizon,
            "mu": mu,
            "smoke": smoke,
        },
        "environment": {"cores": cores, "pool_workers": pool_workers},
        "serial": {"seconds": serial_s},
        "sharded": {"seconds": sharded_s, "report": sharded_report},
        "chaos": {"seconds": chaos_s, "report": chaos_report},
        "bit_identical": True,
        "chaos_identical": True,
        "speedup": speedup,
        "speedup_gate_applied": cores >= SPEEDUP_MIN_CORES,
    }
    if json_path:
        write_text_atomic(json_path, json.dumps(report, indent=2, sort_keys=True))
        print(f"report written to {json_path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--k", type=int, default=None)
    parser.add_argument("--flows", type=int, default=None)
    parser.add_argument("--chunk-size", type=int, default=None)
    parser.add_argument("--n", type=int, default=None)
    parser.add_argument("--horizon", type=int, default=None)
    parser.add_argument("--mu", type=float, default=1e2)
    parser.add_argument("--json", default="reports/BENCH_shard.json")
    args = parser.parse_args(argv)
    k = args.k or (4 if args.smoke else 16)
    flows = args.flows or (600 if args.smoke else 1_000_000)
    chunk = args.chunk_size or (64 if args.smoke else 65_536)
    n = args.n or (2 if args.smoke else 3)
    horizon = args.horizon or (4 if args.smoke else 6)
    return bench(k, flows, chunk, n, horizon, args.mu, args.json, args.smoke)


if __name__ == "__main__":
    raise SystemExit(main())
