"""Benchmark: regenerate Example 1 / Fig. 3 (the worked migration example)."""


def test_fig03_example(run_experiment):
    result = run_experiment("fig03_example")
    totals = [row["total_cost"] for row in result.rows]
    # the three published stage totals: 410, 1004, 416
    assert totals == [410.0, 1004.0, 416.0]
