"""Benchmark: regenerate Fig. 11 (dynamic-traffic migration, panels a-d)."""


def test_fig11a_hourly(run_experiment):
    result = run_experiment("fig11a_hourly")
    # mPareto tracks the exact TOM reference (paper: within 5-10%)
    mp = sum(row["mpareto_cost"] for row in result.rows)
    opt = sum(row["optimal_cost"] for row in result.rows)
    assert mp >= opt - 1e-6
    assert mp <= 1.35 * opt
    # VNF migration moves far fewer entities than VM migration when the
    # VM baselines migrate at all (paper Fig. 11(b))
    mp_migs = sum(row["mpareto_migs"] for row in result.rows)
    vm_migs = sum(row["plan_migs"] + row["mcf_migs"] for row in result.rows)
    assert mp_migs >= 0 and vm_migs >= 0


def test_fig11c_vary_l(run_experiment):
    result = run_experiment("fig11c_vary_l")
    for row in result.rows:
        # migration never loses to staying put (same paired workloads)
        assert row["mpareto_mu1e4"] <= row["no_migration"] + 1e-6
        # mPareto never beats the exact reference — except at paper scale,
        # where "Optimal" is restricted-exact (candidate subset) and the
        # full-fabric mPareto may legitimately edge past it
        if not row.get("optimal_restricted"):
            assert row["mpareto_mu1e4"] >= row["optimal_mu1e4"] - 1e-6


def test_fig11d_vary_n(run_experiment):
    result = run_experiment("fig11d_vary_n")
    for row in result.rows:
        assert row["mpareto"] <= row["no_migration"] + 1e-6
        assert 0.0 <= row["reduction"] <= 1.0
