"""Benchmark: the incremental solver core on a fig12-shaped fault loop.

Runs the same seeded survivability days twice — once through the cold
path (every distinct fault state pays a from-scratch APSP + stroll
build) and once through the incremental session path (delta-maintained
:class:`~repro.graphs.incremental.DynamicAPSP` seeds every degraded
view; content-identical stroll tables are adopted from the shared
cache) — and reports

* **bit-identity**: every ``DayResult`` must serialize to the same JSON
  bytes on both paths (asserted, not just reported);
* **solver effort**: ``apsp_computes`` / ``stroll_matrix_builds`` per
  path, plus the incremental-only counters (seeded tables, row fix-ups,
  full rebuilds, warm stroll hits);
* **wall clock**: total loop time per path and the speedup.

The JSON report (``--json``, default ``reports/BENCH_incremental.json``)
is persisted as a CI artifact by the verify-campaign workflow job.

Usage::

    python benchmarks/bench_incremental.py            # full: k=6, 3 days
    python benchmarks/bench_incremental.py --smoke    # CI-sized
    python benchmarks/bench_incremental.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.core.placement import dp_placement
from repro.utils.results_io import write_text_atomic
from repro.faults import FaultConfig, FaultProcess
from repro.runtime.cache import ComputeCache, set_compute_cache
from repro.runtime.instrument import snapshot, snapshot_delta
from repro.sim.engine import simulate_day
from repro.sim.policies import MParetoPolicy
from repro.topology.fattree import fat_tree
from repro.workload.diurnal import DiurnalModel
from repro.workload.dynamics import RedrawnRates
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel

EFFORT_COUNTERS = (
    "apsp_computes",
    "apsp_seeded",
    "apsp_incremental_updates",
    "apsp_rows_recomputed",
    "apsp_full_rebuilds",
    "stroll_matrix_builds",
    "stroll_warm_hits",
    "session_fault_views",
    "session_rate_ticks",
)


def _build_days(k, num_pairs, n, horizon, seeds):
    """fig12's point shape: one fabric, seeded fault days over redrawn rates."""
    topology = fat_tree(k)
    model = FacebookTrafficModel()
    days = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        flows = place_vm_pairs(topology, num_pairs, seed=rng)
        flows = flows.with_rates(model.sample(num_pairs, rng=rng))
        rates = RedrawnRates(
            flows, DiurnalModel(num_hours=horizon), np.zeros(flows.num_flows),
            model, seed=seed,
        )
        faults = FaultProcess(
            topology,
            # sparse-fault regime: one or two element transitions per hour,
            # so most deltas dirty only a handful of source rows and the
            # row fix-up / leaf-patch paths (not the full-rebuild fallback)
            # carry the loop — the regime the delta maintenance exists for.
            # Denser mixes legitimately dirty most rows and degenerate to
            # threshold rebuilds, which is correct but not interesting.
            FaultConfig(switch_rate=0.005, link_rate=0.015, mean_repair_hours=3.0),
            seed=seed,
            horizon=horizon,
        )
        days.append((flows, rates, faults))
    return topology, n, horizon, days


def _run_path(topology, n, horizon, days, mu, *, incremental):
    """One full pass over every day under a fresh cache; returns a record."""
    previous = set_compute_cache(ComputeCache())
    before = snapshot()
    results = []
    start = time.perf_counter()
    try:
        for flows, rates, faults in days:
            placement = dp_placement(topology, flows, n).placement
            day = simulate_day(
                topology, flows, MParetoPolicy(topology, mu=mu), rates,
                placement, range(1, horizon + 1), faults=faults,
                incremental=incremental,
            )
            results.append(json.dumps(day.to_dict(), sort_keys=True))
    finally:
        elapsed = time.perf_counter() - start
        set_compute_cache(previous)
    delta = snapshot_delta(snapshot(), before)
    counters = delta["counters"]
    timers = {
        name: total
        for name, (total, _laps) in delta.get("timers", {}).items()
        if name in ("apsp", "apsp_incremental")
    }
    return {
        "seconds": elapsed,
        "counters": {key: counters.get(key, 0) for key in EFFORT_COUNTERS},
        "apsp_seconds": timers,
    }, results


def bench(k, num_pairs, n, horizon, num_days, mu, json_path, smoke):
    topology, n, horizon, days = _build_days(
        k, num_pairs, n, horizon, seeds=range(11, 11 + num_days)
    )
    print(
        f"fig12-shaped loop: fat-tree(k={k}), l={num_pairs}, n={n}, "
        f"{num_days} fault days x {horizon}h"
    )
    cold, cold_results = _run_path(
        topology, n, horizon, days, mu, incremental=False
    )
    incremental, inc_results = _run_path(
        topology, n, horizon, days, mu, incremental=True
    )
    assert inc_results == cold_results, (
        "incremental DayResults diverged from the cold path"
    )
    print("bit-identity: incremental == cold on every DayResult  OK")

    cold_apsp = cold["counters"]["apsp_computes"]
    inc_apsp = incremental["counters"]["apsp_computes"]
    assert inc_apsp < cold_apsp, (
        f"incremental path must pay fewer cold APSP solves "
        f"({inc_apsp} vs {cold_apsp})"
    )
    speedup = cold["seconds"] / incremental["seconds"] if incremental["seconds"] else 0.0
    cold_apsp_s = sum(cold["apsp_seconds"].values())
    inc_apsp_s = sum(incremental["apsp_seconds"].values())
    apsp_speedup = cold_apsp_s / inc_apsp_s if inc_apsp_s else 0.0
    for name, rec in (("cold", cold), ("incremental", incremental)):
        c = rec["counters"]
        print(
            f"{name:12s}: {rec['seconds']:7.3f}s  apsp={c['apsp_computes']:4d} "
            f"strolls={c['stroll_matrix_builds']:4d} seeded={c['apsp_seeded']:4d} "
            f"rebuilds={c['apsp_full_rebuilds']:4d} warm={c['stroll_warm_hits']:4d}"
        )
    print(
        f"speedup     : {speedup:5.2f}x wall  "
        f"{apsp_speedup:5.2f}x apsp-kernel "
        f"({1000 * cold_apsp_s:.1f}ms -> {1000 * inc_apsp_s:.1f}ms, "
        f"solves {cold_apsp} -> {inc_apsp})"
    )

    report = {
        "workload": {
            "topology": f"fat_tree({k})",
            "num_pairs": num_pairs,
            "num_vnfs": n,
            "horizon": horizon,
            "num_days": num_days,
            "mu": mu,
            "smoke": smoke,
        },
        "cold": cold,
        "incremental": incremental,
        "bit_identical": True,
        "speedup": speedup,
        "apsp_kernel_speedup": apsp_speedup,
        "apsp_reduction": {"cold": cold_apsp, "incremental": inc_apsp},
    }
    if json_path:
        write_text_atomic(json_path, json.dumps(report, indent=2, sort_keys=True))
        print(f"report written to {json_path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--k", type=int, default=None)
    parser.add_argument("--pairs", type=int, default=None)
    parser.add_argument("--n", type=int, default=None)
    parser.add_argument("--horizon", type=int, default=None)
    parser.add_argument("--days", type=int, default=None)
    parser.add_argument("--mu", type=float, default=1e2)
    parser.add_argument("--json", default="reports/BENCH_incremental.json")
    args = parser.parse_args(argv)
    k = args.k or (4 if args.smoke else 6)
    pairs = args.pairs or (6 if args.smoke else 24)
    n = args.n or (2 if args.smoke else 3)
    horizon = args.horizon or (6 if args.smoke else 12)
    days = args.days or (2 if args.smoke else 3)
    return bench(k, pairs, n, horizon, days, args.mu, args.json, args.smoke)


if __name__ == "__main__":
    raise SystemExit(main())
