"""Benchmark: regenerate Fig. 10 (TOP on delay-weighted PPDCs)."""


def test_fig10_top_weighted(run_experiment):
    result = run_experiment("fig10_top_weighted")
    for row in result.rows:
        if row.get("optimal") is not None:
            assert row["optimal"] <= row["dp"] + 1e-6
        assert row["dp"] <= row["steering"] + 1e-6
        assert row["dp"] <= row["greedy"] + 1e-6
