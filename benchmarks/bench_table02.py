"""Benchmark: emit Table II (the algorithm/baseline map)."""


def test_table02(run_experiment):
    result = run_experiment("table02_algorithms")
    assert [row["problem"] for row in result.rows] == ["TOP-1", "TOP", "TOM"]
