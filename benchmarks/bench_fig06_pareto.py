"""Benchmark: regenerate Fig. 6(b) (parallel-frontier Pareto trace)."""


def test_fig06_pareto(run_experiment):
    result = run_experiment("fig06_pareto")
    assert len(result.rows) >= 2  # at least p and p'
    # C_b is non-decreasing along parallel frontiers by construction
    cbs = [row["C_b"] for row in result.rows]
    assert all(a <= b + 1e-9 for a, b in zip(cbs, cbs[1:]))
