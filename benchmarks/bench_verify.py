"""Benchmark: verification-campaign throughput (cases and checks per second).

The campaign's value scales with how many scenarios it can audit per CPU
second — every check layer (invariants, oracles, differential re-solves,
metamorphic re-solves) multiplies the work per case.  This script times
one seeded campaign, reports the throughput, and asserts it found zero
violations (a benchmark that passes on a broken verifier is worthless).

Usage::

    python benchmarks/bench_verify.py             # 200 cases, all layers
    python benchmarks/bench_verify.py --smoke     # CI-sized (50 cases)
    python benchmarks/bench_verify.py --workers 2
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.verify import CampaignConfig, CheckOptions, run_campaign


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cases", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run (50 cases)"
    )
    parser.add_argument(
        "--no-metamorphic",
        action="store_true",
        help="time the invariant/oracle layers alone",
    )
    args = parser.parse_args(argv)
    cases = 50 if args.smoke else args.cases

    checks = CheckOptions(metamorphic=not args.no_metamorphic)
    start = time.perf_counter()
    report = run_campaign(
        CampaignConfig(
            cases=cases,
            seed=args.seed,
            workers=args.workers,
            shrink=False,
            checks=checks,
        )
    )
    elapsed = time.perf_counter() - start

    print(
        f"{report['cases']} cases / {report['checks']} checks in {elapsed:.2f}s "
        f"({report['cases'] / elapsed:.1f} cases/s, "
        f"{report['checks'] / elapsed:.1f} checks/s, workers={args.workers})"
    )
    for key, countsr in sorted(report["coverage"]["by_mode"].items()):
        print(f"  {key}: {countsr}")
    if report["violations"]:
        print(f"FAIL: {report['violations']} violations", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
