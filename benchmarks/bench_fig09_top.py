"""Benchmark: regenerate Fig. 9 (TOP comparison, unweighted fat tree)."""


def test_fig09_top(run_experiment):
    result = run_experiment("fig09_top")
    for row in result.rows:
        # the paper's ordering: Optimal <= DP <= both baselines (DP can tie)
        if row.get("optimal") is not None:
            assert row["optimal"] <= row["dp"] + 1e-6
        assert row["dp"] <= row["steering"] + 1e-6
        assert row["dp"] <= row["greedy"] + 1e-6
