"""Diff a fresh performance scorecard against the committed anchor.

CI runs ``bench_scorecard.py`` on every build and persists the result as
an artifact; this script compares the fresh report's headline throughput
numbers against the anchor checked into the repo
(``reports/BENCH_scorecard.json``) and emits a GitHub Actions
``::warning::`` annotation for every metric that regressed by more than
the threshold (default 20 %).

It always exits 0: CI runners are noisy shared machines, so a wall-clock
regression is a *flag for a human*, not a merge blocker — bit-identity
and correctness gates live in the test suites, not here.

Usage::

    python benchmarks/scorecard_diff.py --fresh reports/BENCH_scorecard.json
    python benchmarks/scorecard_diff.py --fresh new.json --anchor old.json
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

#: headline metrics: (dotted path under "shapes", higher_is_better)
HEADLINES = (
    ("fig11_session_day.hours_per_second", True),
    ("fig12_fault_loop.hours_per_second", True),
    ("replication_sweep.baseline_seconds", False),
    ("serve_churn.rps", True),
    ("serve_churn.p95_seconds", False),
)


def _dig(shapes: dict, dotted: str):
    node = shapes
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


def diff(anchor: dict, fresh: dict, threshold: float) -> list[str]:
    """Return one warning line per regressed headline metric."""
    warnings = []
    anchor_shapes = anchor.get("shapes", {})
    fresh_shapes = fresh.get("shapes", {})
    for dotted, higher_is_better in HEADLINES:
        old = _dig(anchor_shapes, dotted)
        new = _dig(fresh_shapes, dotted)
        if not old or new is None:
            continue  # metric absent or zero in the anchor: nothing to diff
        change = (new - old) / abs(old)
        regressed = change < -threshold if higher_is_better else change > threshold
        if regressed:
            direction = "down" if higher_is_better else "up"
            warnings.append(
                f"scorecard regression: {dotted} {direction} "
                f"{abs(change):.1%} vs anchor ({old:.6g} -> {new:.6g}, "
                f"threshold {threshold:.0%})"
            )
    return warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", required=True, help="scorecard JSON from this build"
    )
    parser.add_argument(
        "--anchor",
        default="reports/BENCH_scorecard.json",
        help="committed anchor scorecard (default: %(default)s)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="relative regression that triggers a warning (default: 20%%)",
    )
    args = parser.parse_args(argv)
    anchor_path, fresh_path = Path(args.anchor), Path(args.fresh)
    if not anchor_path.exists():
        print(f"no anchor at {anchor_path}; nothing to diff")
        return 0
    if not fresh_path.exists():
        print(f"::warning::scorecard diff: no fresh report at {fresh_path}")
        return 0
    anchor = json.loads(anchor_path.read_text())
    fresh = json.loads(fresh_path.read_text())
    warnings = diff(anchor, fresh, args.threshold)
    for line in warnings:
        print(f"::warning::{line}")
    if not warnings:
        print(
            f"scorecard within {args.threshold:.0%} of the anchor on "
            f"{len(HEADLINES)} headline metrics"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
