"""Benchmark: migrate-vs-replicate cost deltas over the sync ratio ρ.

Runs seeded ``tom-replication`` days against the plain-TOM (mPareto)
baseline on identical workloads and reports, per ρ:

* the **day-cost delta** (serving + migration + replication + sync)
  against the baseline, with the replica activity that produced it;
* the **fault-block delta** on an identical seeded fault stream —
  dropped traffic must stay byte-equal (endpoint-determined) while free
  failovers cut the repair bill (both asserted, not just reported);
* **wall clock** per day for the lattice pricing overhead.

The JSON report (``--json``, default ``reports/BENCH_replication.json``)
is persisted as a CI artifact by the verify-campaign workflow job.

Usage::

    python benchmarks/bench_replication.py            # full: k=6, 3 days
    python benchmarks/bench_replication.py --smoke    # CI-sized
    python benchmarks/bench_replication.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.core.placement import dp_placement
from repro.errors import InfeasibleError
from repro.faults import FaultConfig, FaultProcess
from repro.runtime.cache import ComputeCache, set_compute_cache
from repro.sim.engine import simulate_day
from repro.sim.metrics import replication_summary
from repro.sim.policies import MParetoPolicy, TomReplicationPolicy
from repro.topology.fattree import fat_tree
from repro.utils.results_io import write_text_atomic
from repro.workload.diurnal import DiurnalModel
from repro.workload.dynamics import RedrawnRates
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel

MU = 1e2
SYNC_FRACTION = 1e-3
MAX_REPLICAS = 2
SWITCH_RATE = 0.1


def _build_days(k, num_pairs, horizon, seeds):
    topology = fat_tree(k)
    model = FacebookTrafficModel()
    days = []
    for seed in seeds:
        flows = place_vm_pairs(topology, num_pairs, seed=seed)
        flows = flows.with_rates(model.sample(num_pairs, rng=seed))
        rates = RedrawnRates(
            flows, DiurnalModel(num_hours=horizon), np.zeros(flows.num_flows),
            model, seed=seed,
        )
        faults = FaultProcess(
            topology,
            FaultConfig(switch_rate=SWITCH_RATE, mean_repair_hours=4.0),
            seed=seed,
            horizon=horizon,
        )
        days.append((flows, rates, faults))
    return topology, days


def _run_day(topology, flows, rates, faults, policy, n, horizon):
    previous = set_compute_cache(ComputeCache())
    try:
        placement = dp_placement(topology, flows, n).placement
        start = time.perf_counter()
        try:
            day = simulate_day(
                topology, flows, policy, rates, placement,
                range(1, horizon + 1), faults=faults,
            )
        except InfeasibleError:
            return time.perf_counter() - start, None
        return time.perf_counter() - start, day
    finally:
        set_compute_cache(previous)


def bench(k, num_pairs, n, horizon, num_days, rhos, json_path, smoke) -> int:
    topology, days = _build_days(
        k, num_pairs, horizon, seeds=range(31, 31 + num_days)
    )
    print(
        f"replication sweep: fat-tree(k={k}), l={num_pairs}, n={n}, "
        f"{num_days} days x {horizon}h, rho in {rhos}"
    )

    def run_all(policy_factory, *, faulty):
        elapsed_total, results = 0.0, []
        for flows, rates, faults in days:
            elapsed, day = _run_day(
                topology, flows, rates, faults if faulty else None,
                policy_factory(), n, horizon,
            )
            elapsed_total += elapsed
            results.append(day)
        return elapsed_total, results

    rows = []
    base_time, base_days = run_all(
        lambda: MParetoPolicy(topology, mu=MU), faulty=False
    )
    base_fault_time, base_fault_days = run_all(
        lambda: MParetoPolicy(topology, mu=MU), faulty=True
    )
    base_cost = float(
        np.mean([d.total_cost for d in base_days if d is not None])
    )
    for rho in rhos:
        factory = lambda: TomReplicationPolicy(  # noqa: B023, E731
            topology, mu=MU, rho=rho, sync_fraction=SYNC_FRACTION,
            max_replicas=MAX_REPLICAS,
        )
        repl_time, repl_days = run_all(factory, faulty=False)
        fault_time, fault_days = run_all(factory, faulty=True)

        done = [d for d in repl_days if d is not None]
        summaries = [replication_summary(d) for d in done]
        repair_repl, repair_base, failovers = [], [], 0
        for mine, theirs in zip(fault_days, base_fault_days):
            if mine is None or theirs is None:
                continue
            # dropped traffic is endpoint-determined: replicas must not
            # change what is dropped, only what repair costs
            assert [r.dropped_traffic for r in mine.records] == [
                r.dropped_traffic for r in theirs.records
            ], f"dropped-traffic series diverged at rho={rho}"
            repair_repl.append(mine.total_repair_cost)
            repair_base.append(theirs.total_repair_cost)
            failovers += mine.total_failovers
        assert repair_repl and sum(repair_repl) <= sum(repair_base), (
            f"replicas must never raise the repair bill (rho={rho}: "
            f"{sum(repair_repl)} vs {sum(repair_base)})"
        )
        row = {
            "rho": rho,
            "day_seconds": repl_time / max(len(days), 1),
            "baseline_day_seconds": base_time / max(len(days), 1),
            "total_cost": float(np.mean([s["total_cost"] for s in summaries])),
            "baseline_total_cost": base_cost,
            "cost_delta": float(
                np.mean([s["total_cost"] for s in summaries]) - base_cost
            ),
            "replications": float(
                np.mean([s["replications"] for s in summaries])
            ),
            "peak_replicas": float(
                np.mean([s["peak_replicas"] for s in summaries])
            ),
            "fault_repair_cost": float(np.mean(repair_repl)),
            "fault_baseline_repair_cost": float(np.mean(repair_base)),
            "fault_failovers": failovers,
            "fault_day_seconds": fault_time / max(len(days), 1),
            "fault_baseline_day_seconds": base_fault_time / max(len(days), 1),
        }
        rows.append(row)
        print(
            f"rho={rho:<4}: cost {row['total_cost']:12.0f} "
            f"({row['cost_delta']:+12.0f} vs TOM, "
            f"{row['replications']:.1f} repl/day) | fault repair "
            f"{row['fault_repair_cost']:8.0f} vs "
            f"{row['fault_baseline_repair_cost']:8.0f} "
            f"({failovers} failovers) | {row['day_seconds']:.3f}s/day"
        )
    print("invariants: dropped-traffic byte-equal, repair bill never raised  OK")

    report = {
        "workload": {
            "topology": f"fat_tree({k})",
            "num_pairs": num_pairs,
            "num_vnfs": n,
            "horizon": horizon,
            "num_days": num_days,
            "mu": MU,
            "sync_fraction": SYNC_FRACTION,
            "max_replicas": MAX_REPLICAS,
            "switch_rate": SWITCH_RATE,
            "smoke": smoke,
        },
        "rows": rows,
    }
    if json_path:
        write_text_atomic(json_path, json.dumps(report, indent=2, sort_keys=True))
        print(f"report written to {json_path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--k", type=int, default=None)
    parser.add_argument("--pairs", type=int, default=None)
    parser.add_argument("--n", type=int, default=None)
    parser.add_argument("--horizon", type=int, default=None)
    parser.add_argument("--days", type=int, default=None)
    parser.add_argument("--json", default="reports/BENCH_replication.json")
    args = parser.parse_args(argv)
    k = args.k or 4
    pairs = args.pairs or (8 if args.smoke else 16)
    n = args.n or 3
    horizon = args.horizon or (8 if args.smoke else 12)
    days = args.days or (2 if args.smoke else 3)
    rhos = (0.2, 0.9) if args.smoke else (0.05, 0.2, 0.5, 0.9)
    return bench(k, pairs, n, horizon, days, rhos, args.json, args.smoke)


if __name__ == "__main__":
    raise SystemExit(main())
