"""Benchmark harness configuration.

Each ``bench_*.py`` regenerates one figure/table of the paper via the
experiment registry and times the run with pytest-benchmark.  The
regenerated table is printed (visible with ``pytest -s``) and its rows
and notes are attached to the benchmark's ``extra_info`` so the JSON
output of ``--benchmark-json`` carries the reproduced numbers.

Scale selection: ``REPRO_BENCH_SCALE`` ∈ {smoke, default, paper},
defaulting to ``default`` (laptop-friendly, minutes for the full suite).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import get_experiment


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "default")


@pytest.fixture()
def run_experiment(benchmark):
    """Run a registered experiment exactly once under the benchmark timer."""

    def _run(name: str):
        scale = bench_scale()
        result = benchmark.pedantic(
            get_experiment(name), args=(scale,), iterations=1, rounds=1
        )
        print()
        print(result.to_table())
        benchmark.extra_info["scale"] = scale
        benchmark.extra_info["rows"] = result.rows
        benchmark.extra_info["notes"] = result.notes
        return result

    return _run
