"""Benchmark: parallel-executor scaling of the replication runner.

Times the Fig. 11(a) experiment (the heaviest per-replication work in the
suite) at ``workers=1`` and ``workers=4`` and records the measured wall
times, the instrumented task seconds and the speedup in ``extra_info``.
On a multi-core machine the parallel run should approach the worker
count; on a single-core CI box it degrades gracefully to ~1x (plus pool
overhead) while still exercising the fan-out path.

Also usable standalone, without pytest-benchmark::

    PYTHONPATH=src python benchmarks/bench_runtime_scaling.py
"""

from __future__ import annotations

import time

from repro.experiments.common import run_experiment

#: the experiment whose replications are fanned out
EXPERIMENT = "fig11a_hourly"
PARALLEL_WORKERS = 4


def _timed_run(workers: int, scale: str = "smoke"):
    start = time.perf_counter()
    result = run_experiment(EXPERIMENT, scale, workers=workers)
    elapsed = time.perf_counter() - start
    return elapsed, result


def test_runtime_scaling(benchmark):
    serial_s, serial = benchmark.pedantic(
        _timed_run, args=(1,), iterations=1, rounds=1
    )
    parallel_s, parallel = _timed_run(PARALLEL_WORKERS)
    # the scaling benchmark is only meaningful if both paths agree exactly
    assert serial.rows == parallel.rows
    benchmark.extra_info["serial_seconds"] = serial_s
    benchmark.extra_info["parallel_seconds"] = parallel_s
    benchmark.extra_info["parallel_workers"] = PARALLEL_WORKERS
    benchmark.extra_info["observed_speedup"] = serial_s / parallel_s
    benchmark.extra_info["serial_runtime"] = serial.params["runtime"]
    benchmark.extra_info["parallel_runtime"] = parallel.params["runtime"]


def main() -> None:
    from repro.runtime.instrument import format_report

    for workers in (1, PARALLEL_WORKERS):
        elapsed, result = _timed_run(workers)
        print(f"== {EXPERIMENT} @ smoke, workers={workers}: {elapsed:.2f}s ==")
        print(format_report(result.params["runtime"]))
        print()


if __name__ == "__main__":
    main()
