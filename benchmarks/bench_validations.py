"""Benchmarks: model-premise validation experiments."""


def test_val_link_utilization(run_experiment):
    result = run_experiment("val_link_utilization")
    for row in result.rows:
        # the DP placement defines the 40% provisioning point
        assert abs(row["dp_max_util"] - 0.4) < 1e-9
        # chain-blind placement never concentrates traffic *less*
        assert row["steering_max_util"] >= row["dp_max_util"] - 1e-9
        # aggregate volume ordering matches the cost-model ordering
        assert row["dp_total_volume"] <= row["steering_total_volume"] + 1e-6


def test_val_gravity_dynamics(run_experiment):
    result = run_experiment("val_gravity_dynamics")
    by_name = {row["workload"]: row for row in result.rows}
    # migration never loses money
    for row in result.rows:
        assert row["saving"] >= -1e-9
    # skewed workloads give migration at least as much room as uniform
    assert by_name["gravity"]["saving"] >= by_name["uniform"]["saving"] - 0.02
