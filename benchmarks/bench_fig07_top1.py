"""Benchmark: regenerate Fig. 7 (TOP-1: DP-Stroll vs Optimal vs 2+eps)."""


def test_fig07_top1(run_experiment):
    result = run_experiment("fig07_top1")
    for row in result.rows:
        if row["optimal"] is not None:
            # DP-Stroll never beats the exact optimum and stays below the
            # PrimalDual guarantee (the paper's headline shape)
            assert row["dp_stroll"] >= row["optimal"] - 1e-6
            assert row["dp_stroll"] <= row["primaldual_guarantee"] + 1e-6
