"""Benchmark: amortized SolverSession queries vs cold per-call solves.

The fig11 shape — one topology, the same VM pairs re-rated every hour,
Algorithm 3 run per hour — is the workload the session API exists for.
This script times three ways of answering ``--queries`` such queries:

* **cold**  — ``dp_placement`` with a fresh :class:`ComputeCache` per
  call: every query pays for APSP, the metric closure and the stroll
  matrix from scratch (the pre-session behaviour of a fresh process per
  query);
* **session** — ``session.place`` per query on one
  :class:`~repro.session.SolverSession`;
* **place_many** — one ``session.place_many`` batch over all queries.

All three must produce bit-identical placements and costs; the script
asserts that before reporting.  In full mode it also asserts the
headline contract: session queries at least ``--min-speedup`` (default
3×) faster than cold calls.  ``--smoke`` shrinks the workload for CI and
skips the speedup floor (shared CI machines make wall-clock floors
flaky) while still checking bit-identity end to end.

Optionally ``--workers N`` times the fig11 replication runner serially
vs in parallel (with the shared-memory artifact hand-off) on a small
dynamic run, checking bit-identity between the two.

Usage::

    python benchmarks/bench_session.py            # full: k=8, 64 pairs, 50 queries
    python benchmarks/bench_session.py --smoke    # CI-sized, no speedup floor
    python benchmarks/bench_session.py --workers 2
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.placement import dp_placement
from repro.runtime.cache import ComputeCache
from repro.session import SolverSession
from repro.topology.fattree import fat_tree
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


def _fig11_queries(topology, num_pairs, queries, seed):
    """The fig11 shape: fixed VM pairs, a fresh rate vector per hour."""
    model = FacebookTrafficModel()
    base = place_vm_pairs(topology, num_pairs, seed=seed)
    base = base.with_rates(model.sample(num_pairs, rng=seed))
    return [
        base.with_rates(model.sample(num_pairs, rng=seed * 1000 + h))
        for h in range(queries)
    ]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def bench(k, num_pairs, n, queries, seed, min_speedup, smoke):
    topo = fat_tree(k)
    flowsets = _fig11_queries(topo, num_pairs, queries, seed)
    print(
        f"fig11-shaped workload: fat-tree(k={k}), l={num_pairs}, n={n}, "
        f"{queries} queries"
    )

    cold_results, cold_s = _timed(
        lambda: [dp_placement(topo, f, n, cache=ComputeCache()) for f in flowsets]
    )

    session = SolverSession(topo, cache=ComputeCache())
    session_results, session_s = _timed(
        lambda: [session.place(f, n) for f in flowsets]
    )

    batch_session = SolverSession(topo, cache=ComputeCache())
    batch_results, batch_s = _timed(lambda: batch_session.place_many(flowsets, n))

    for name, results in (("session", session_results), ("place_many", batch_results)):
        for got, want in zip(results, cold_results):
            assert np.array_equal(got.placement, want.placement), (
                f"{name} placement diverged from the cold per-call path"
            )
            assert got.cost == want.cost, (
                f"{name} cost diverged from the cold per-call path"
            )
    print("bit-identity: session == place_many == cold per-call  OK")

    per = lambda s: 1000.0 * s / queries  # noqa: E731
    speedup = cold_s / session_s if session_s else float("inf")
    batch_speedup = cold_s / batch_s if batch_s else float("inf")
    print(f"cold per-call : {cold_s:8.3f}s  ({per(cold_s):7.2f} ms/query)")
    print(
        f"session       : {session_s:8.3f}s  ({per(session_s):7.2f} ms/query)"
        f"  {speedup:5.1f}x vs cold"
    )
    print(
        f"place_many    : {batch_s:8.3f}s  ({per(batch_s):7.2f} ms/query)"
        f"  {batch_speedup:5.1f}x vs cold"
    )
    if not smoke:
        assert speedup >= min_speedup, (
            f"session speedup {speedup:.1f}x below the {min_speedup:.1f}x floor"
        )
        print(f"speedup floor ({min_speedup:.1f}x): OK")
    return 0


def bench_workers(workers, smoke):
    from repro.sim.policies import MParetoPolicy, NoMigrationPolicy
    from repro.sim.runner import RunConfig, run_replications
    from repro.workload.diurnal import DiurnalModel

    topo = fat_tree(4)
    model = FacebookTrafficModel()
    config = RunConfig(
        num_pairs=4 if smoke else 16,
        num_vnfs=3,
        mu=1e4,
        diurnal=DiurnalModel(num_hours=4 if smoke else 12),
        replications=2 if smoke else 4,
        seed=7,
    )
    factories = {"mpareto": MParetoPolicy, "nomig": NoMigrationPolicy}
    serial, serial_s = _timed(
        lambda: run_replications(topo, model, config, factories, workers=1)
    )
    parallel, parallel_s = _timed(
        lambda: run_replications(topo, model, config, factories, workers=workers)
    )
    for a, b in zip(serial[0], parallel[0]):
        for name in factories:
            assert a.days[name].total_cost == b.days[name].total_cost, (
                "parallel day diverged from serial"
            )
    print(f"replications  : serial {serial_s:.3f}s, workers={workers} {parallel_s:.3f}s")
    print("bit-identity: serial == parallel (shared artifacts)  OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--k", type=int, default=None)
    parser.add_argument("--pairs", type=int, default=None)
    parser.add_argument("--n", type=int, default=None)
    parser.add_argument("--seed", type=int, default=29)
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument(
        "--workers", type=int, default=0, help="also bench the parallel runner"
    )
    args = parser.parse_args(argv)
    k = args.k or (4 if args.smoke else 8)
    pairs = args.pairs or (8 if args.smoke else 64)
    n = args.n or (3 if args.smoke else 7)
    queries = args.queries or (10 if args.smoke else 50)
    rc = bench(k, pairs, n, queries, args.seed, args.min_speedup, args.smoke)
    if args.workers > 1:
        rc = rc or bench_workers(args.workers, args.smoke)
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
