"""Benchmark: the executable reproduction scorecard."""


def test_scorecard(run_experiment):
    result = run_experiment("scorecard")
    verdicts = [row["verdict"] for row in result.rows]
    assert verdicts and all(v == "PASS" for v in verdicts)
