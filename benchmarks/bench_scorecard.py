"""Benchmark: the executable reproduction scorecard + perf trajectory.

Two entry points:

* under pytest-benchmark (``pytest benchmarks/bench_scorecard.py``) the
  scorecard *experiment* runs once and every verdict must be PASS;
* as a standalone script (``python benchmarks/bench_scorecard.py``) the
  four tier-1 performance shapes are timed and written to a JSON
  scorecard — the committed ``reports/BENCH_scorecard.json`` is the
  repo's perf-trajectory anchor, re-emitted by CI on every run:

  1. **fig11 session path** — one classic simulated day (Algorithm 5
     every hour through the pooled solver-session machinery);
  2. **fig12 fault loop** — the same day shape under a seeded fault
     process (degrade, evacuate, re-optimize);
  3. **serve rps** — the hardened placement service driven by the
     seeded churn workload;
  4. **replication sweep** — ``tom-replication`` days over ρ, with the
     migrate-vs-replicate lattice priced every hour.

Usage::

    python benchmarks/bench_scorecard.py            # full shapes
    python benchmarks/bench_scorecard.py --smoke    # CI-sized
    python benchmarks/bench_scorecard.py --json reports/BENCH_scorecard.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import time

import numpy as np

from repro.core.placement import dp_placement
from repro.faults import FaultConfig, FaultProcess
from repro.runtime.cache import ComputeCache, set_compute_cache
from repro.sim.engine import simulate_day
from repro.sim.policies import MParetoPolicy, TomReplicationPolicy
from repro.topology.fattree import fat_tree
from repro.utils.results_io import write_text_atomic
from repro.workload.diurnal import DiurnalModel
from repro.workload.dynamics import RedrawnRates
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


def test_scorecard(run_experiment):
    result = run_experiment("scorecard")
    verdicts = [row["verdict"] for row in result.rows]
    assert verdicts and all(v == "PASS" for v in verdicts)


def _scenario(k, num_pairs, horizon, seed, *, faulty=False, switch_rate=0.05):
    topology = fat_tree(k)
    model = FacebookTrafficModel()
    flows = place_vm_pairs(topology, num_pairs, seed=seed)
    flows = flows.with_rates(model.sample(num_pairs, rng=seed))
    rates = RedrawnRates(
        flows, DiurnalModel(num_hours=horizon), np.zeros(flows.num_flows),
        model, seed=seed,
    )
    faults = None
    if faulty:
        faults = FaultProcess(
            topology,
            FaultConfig(switch_rate=switch_rate, mean_repair_hours=4.0),
            seed=seed,
            horizon=horizon,
        )
    return topology, flows, rates, faults


def _timed_day(topology, flows, rates, faults, policy, n, horizon):
    previous = set_compute_cache(ComputeCache())
    try:
        placement = dp_placement(topology, flows, n).placement
        start = time.perf_counter()
        day = simulate_day(
            topology, flows, policy, rates, placement,
            range(1, horizon + 1), faults=faults,
        )
        elapsed = time.perf_counter() - start
    finally:
        set_compute_cache(previous)
    return elapsed, day


def _shape_fig11(k, num_pairs, n, horizon, seed) -> dict:
    topology, flows, rates, _ = _scenario(k, num_pairs, horizon, seed)
    elapsed, day = _timed_day(
        topology, flows, rates, None, MParetoPolicy(topology, mu=1e2),
        n, horizon,
    )
    return {
        "seconds": elapsed,
        "hours_per_second": horizon / elapsed if elapsed else 0.0,
        "total_cost": day.total_cost,
        "migrations": day.total_migrations,
    }


def _shape_fig12(k, num_pairs, n, horizon, seed) -> dict:
    topology, flows, rates, faults = _scenario(
        k, num_pairs, horizon, seed, faulty=True
    )
    elapsed, day = _timed_day(
        topology, flows, rates, faults, MParetoPolicy(topology, mu=1e2),
        n, horizon,
    )
    return {
        "seconds": elapsed,
        "hours_per_second": horizon / elapsed if elapsed else 0.0,
        "total_cost": day.total_cost,
        "repairs": day.total_repairs,
        "dropped_traffic": day.total_dropped_traffic,
    }


def _shape_serve(requests, concurrency) -> dict:
    from repro.serve import ChurnConfig, PlacementService, ServeConfig, run_churn

    async def run() -> dict:
        async with PlacementService(ServeConfig(max_concurrency=4)) as service:
            return await run_churn(
                service,
                ChurnConfig(
                    k=4, num_pairs=8, sfc_size=2,
                    requests=requests, concurrency=concurrency, seed=11,
                ),
            )

    summary = asyncio.run(run())
    return {
        "requests": summary["requests"],
        "completed": summary["completed"],
        "rps": summary["rps"],
        "p95_seconds": summary["latency"]["p95"],
        "shed": summary["shed_total"],
    }


def _shape_replication(k, num_pairs, n, horizon, seed, rhos) -> dict:
    topology, flows, rates, _ = _scenario(k, num_pairs, horizon, seed)
    base_elapsed, base_day = _timed_day(
        topology, flows, rates, None, MParetoPolicy(topology, mu=1e2),
        n, horizon,
    )
    points = []
    for rho in rhos:
        elapsed, day = _timed_day(
            topology, flows, rates, None,
            TomReplicationPolicy(
                topology, mu=1e2, rho=rho, sync_fraction=1e-3, max_replicas=2
            ),
            n, horizon,
        )
        points.append(
            {
                "rho": rho,
                "seconds": elapsed,
                "hours_per_second": horizon / elapsed if elapsed else 0.0,
                "total_cost": day.total_cost,
                "replications": day.total_replications,
                "cost_vs_baseline": day.total_cost - base_day.total_cost,
            }
        )
    return {
        "baseline_seconds": base_elapsed,
        "baseline_total_cost": base_day.total_cost,
        "points": points,
    }


def bench(smoke: bool, json_path: str | None) -> int:
    k = 4 if smoke else 6
    pairs = 8 if smoke else 24
    n = 2 if smoke else 3
    horizon = 6 if smoke else 12
    requests = 40 if smoke else 150
    rhos = (0.1, 0.5) if smoke else (0.1, 0.3, 0.5, 0.9)

    shapes = {}
    print(f"scorecard shapes: fat-tree(k={k}), l={pairs}, n={n}, {horizon}h")
    shapes["fig11_session_day"] = _shape_fig11(k, pairs, n, horizon, seed=17)
    print(
        f"fig11 session day : {shapes['fig11_session_day']['seconds']:7.3f}s "
        f"({shapes['fig11_session_day']['hours_per_second']:.1f} hours/s)"
    )
    shapes["fig12_fault_loop"] = _shape_fig12(k, pairs, n, horizon, seed=17)
    print(
        f"fig12 fault loop  : {shapes['fig12_fault_loop']['seconds']:7.3f}s "
        f"({shapes['fig12_fault_loop']['hours_per_second']:.1f} hours/s, "
        f"{shapes['fig12_fault_loop']['repairs']} repairs)"
    )
    shapes["serve_churn"] = _shape_serve(requests, concurrency=8)
    print(
        f"serve churn       : {shapes['serve_churn']['rps']:7.0f} rps "
        f"({shapes['serve_churn']['completed']}/{shapes['serve_churn']['requests']} "
        f"served, p95 {1000 * shapes['serve_churn']['p95_seconds']:.1f}ms)"
    )
    # seed scanned so the lattice actually replicates at full scale and
    # the sweep's cost column carries signal, not a row of zeros
    shapes["replication_sweep"] = _shape_replication(
        k, pairs, n, horizon, seed=14, rhos=rhos
    )
    for point in shapes["replication_sweep"]["points"]:
        print(
            f"replication rho={point['rho']:<4} : {point['seconds']:7.3f}s "
            f"({point['replications']} replications, "
            f"cost {point['cost_vs_baseline']:+.0f} vs plain TOM)"
        )

    report = {
        "workload": {
            "k": k, "num_pairs": pairs, "num_vnfs": n, "horizon": horizon,
            "serve_requests": requests, "rhos": list(rhos), "smoke": smoke,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "shapes": shapes,
    }
    if json_path:
        write_text_atomic(json_path, json.dumps(report, indent=2, sort_keys=True))
        print(f"report written to {json_path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--json", default="reports/BENCH_scorecard.json")
    args = parser.parse_args(argv)
    return bench(args.smoke, args.json)


if __name__ == "__main__":
    raise SystemExit(main())
