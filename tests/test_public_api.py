"""Snapshot of the public API surface.

Locks two things the redesign promises downstream code:

* the ``repro`` top-level re-export set — a name silently vanishing
  from (or leaking into) ``repro.__all__`` is an API break and must be
  an explicit decision, made by editing this snapshot;
* the keyword-only calling convention of the query surface —
  ``SolverSession.place / migrate / solve / place_many`` and
  ``PlacementService.submit`` accept their options (including
  ``constraints``) by keyword only, so adding one can never reorder a
  positional call site.
"""

from __future__ import annotations

import inspect

import pytest

import repro
from repro.serve import PlacementService
from repro.session import SolverSession

#: the exported surface, sorted.  Editing this list IS the API review.
EXPECTED_EXPORTS = [
    "BudgetExceededError",
    "ConnectivityAudit",
    "ConstraintError",
    "Constraints",
    "ContentionResult",
    "CostGraph",
    "DiurnalModel",
    "FacebookTrafficModel",
    "FaultConfig",
    "FaultError",
    "FaultEvent",
    "FaultProcess",
    "FaultState",
    "FlowSet",
    "FrontierTrace",
    "GraphBuilder",
    "GraphError",
    "InfeasibleError",
    "MigrationError",
    "MigrationResult",
    "PlacementError",
    "PlacementResult",
    "RepairPlan",
    "ReproError",
    "SFC",
    "SolverError",
    "SolverSession",
    "Topology",
    "TopologyError",
    "UniformTrafficModel",
    "WorkloadError",
    "__version__",
    "access_sfc",
    "active_constraints",
    "application_sfc",
    "apply_uniform_delays",
    "assign_cohorts",
    "assign_cohorts_spatial",
    "bcube",
    "chain_delay",
    "dcell",
    "degrade",
    "dp_placement",
    "dp_placement_top1",
    "evacuate",
    "fat_tree",
    "full_sfc",
    "greedy_liu_placement",
    "jellyfish",
    "leaf_spine",
    "linear_ppdc",
    "mcf_vm_migration",
    "mpareto_migration",
    "msg_greedy_migration",
    "msg_greedy_placement",
    "msg_migration",
    "msg_placement",
    "no_migration",
    "optimal_migration",
    "optimal_placement",
    "place_chains",
    "place_vm_pairs",
    "plan_vm_migration",
    "primal_dual_placement_top1",
    "random_placement",
    "random_placement_quantiles",
    "sfc_of_size",
    "steering_placement",
    "vl2",
]


def _shape(fn):
    """(positional-or-keyword, keyword-only, has **kwargs) of a callable."""
    params = inspect.signature(fn).parameters.values()
    return (
        tuple(p.name for p in params if p.kind is p.POSITIONAL_OR_KEYWORD),
        tuple(p.name for p in params if p.kind is p.KEYWORD_ONLY),
        any(p.kind is p.VAR_KEYWORD for p in params),
    )


def test_top_level_exports_match_snapshot():
    assert sorted(repro.__all__) == EXPECTED_EXPORTS


def test_every_export_resolves():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


@pytest.mark.parametrize(
    "fn, lead, keyword_only",
    [
        (
            SolverSession.place,
            ("self", "flows", "sfc"),
            ("algo", "constraints"),
        ),
        (
            SolverSession.migrate,
            ("self", "prev", "flows"),
            ("mu", "algo", "constraints"),
        ),
        (
            SolverSession.solve,
            ("self", "flows", "sfc"),
            ("prev", "mu", "algo", "deadline", "constraints"),
        ),
        (
            SolverSession.place_many,
            ("self", "flowsets", "sfc"),
            ("algo", "batch", "constraints"),
        ),
        (
            PlacementService.submit,
            ("self", "topology", "flows", "sfc"),
            ("prev", "mu", "algo", "deadline", "constraints"),
        ),
    ],
    ids=lambda v: getattr(v, "__qualname__", None),
)
def test_query_surface_signatures(fn, lead, keyword_only):
    got_lead, got_kw, has_var_kw = _shape(fn)
    assert got_lead == lead
    assert got_kw == keyword_only
    assert has_var_kw  # solver pass-through options stay open


def test_constraints_is_keyword_constructible_only_by_field():
    _, kw, _ = _shape(repro.Constraints.__init__)
    # frozen dataclass: every field addressable by name
    params = inspect.signature(repro.Constraints.__init__).parameters
    assert set(params) - {"self"} == {
        "vnf_capacity", "max_delay", "bandwidth", "occupancy", "load",
    }
