"""Supervision mechanics: journal salvage, degradation ladder, watchdog."""

from __future__ import annotations

import pytest

import repro.shard.supervisor as supervisor_module
from repro.errors import ShardError
from repro.runtime.journal import Journal
from repro.runtime.resilience import ChaosConfig

from .conftest import DayCase, canon


@pytest.fixture()
def case():
    # small and fresh per test: journal/monkeypatch state must not leak
    return DayCase(num_flows=12, horizon=4)


class TestJournalResume:
    def test_rerun_salvages_every_shard(self, case, tmp_path):
        path = tmp_path / "shards.jsonl"
        with Journal(path) as journal:
            first, first_report = case.sharded(2, journal=journal)
        assert first_report["dispatched"] > 0
        assert first_report["journal_hits"] == 0
        with Journal(path) as journal:
            second, second_report = case.sharded(2, journal=journal)
        assert canon(second) == canon(first)
        assert second_report["dispatched"] == 0
        assert second_report["journal_hits"] == first_report["dispatched"]

    def test_truncated_journal_resumes_mid_hour(self, case, tmp_path):
        # a run killed mid-day leaves a journal prefix; the resume must
        # salvage the completed shards byte-identically and recompute the
        # rest — the result cannot depend on where the kill landed
        path = tmp_path / "shards.jsonl"
        with Journal(path) as journal:
            first, first_report = case.sharded(2, journal=journal)
        lines = path.read_text().splitlines(keepends=True)
        assert len(lines) >= 2
        path.write_text("".join(lines[: len(lines) // 2]))
        with Journal(path) as journal:
            second, second_report = case.sharded(2, journal=journal)
        assert canon(second) == canon(first)
        assert 0 < second_report["journal_hits"] < first_report["dispatched"]
        assert second_report["dispatched"] > 0

    def test_shard_count_does_not_invalidate_the_journal(self, case, tmp_path):
        # task keys name hour/kind/shard; a different shard count redraws
        # the schedule, so only same-schedule records may be adopted —
        # but the result must stay byte-identical regardless
        path = tmp_path / "shards.jsonl"
        with Journal(path) as journal:
            first, _ = case.sharded(1, journal=journal)
        with Journal(path) as journal:
            second, _ = case.sharded(3, journal=journal)
        assert canon(second) == canon(first)


class TestDegradationLadder:
    def test_memory_breach_splits_multi_block_tasks(self, case, monkeypatch):
        # rung 2: a worker reporting MemoryError on a multi-block task gets
        # re-dispatched block by block instead of retried wholesale
        want = canon(case.sharded(1, block_size=3)[0])
        real = supervisor_module.run_shard_task
        breached: set[str] = set()

        def breach_once(task, attempt=0):
            if len(task.blocks) > 1 and task.key not in breached:
                breached.add(task.key)
                return (
                    "err",
                    {
                        "error": "MemoryError()",
                        "traceback": "",
                        "memory": True,
                        "shard_error": False,
                        "diagnosis": {},
                    },
                )
            return real(task, attempt)

        breach_once.accepts_attempt = True
        monkeypatch.setattr(supervisor_module, "run_shard_task", breach_once)
        day, report = case.sharded(1, block_size=3)
        assert canon(day) == want
        assert report["degraded_tasks"] > 0
        assert breached  # the breach actually fired

    def test_mem_budget_day_is_byte_identical_or_diagnosed(self, case):
        # rung 1 in-worker: a tiny budget forces the column-strip gather
        # when this BLAS assembles strips bitwise, and a diagnosed refusal
        # (never silently different books) when it does not
        from repro.shard.aggregate import column_strips_bitwise

        if not column_strips_bitwise():
            with pytest.raises(ShardError) as err:
                case.sharded(2, mem_budget=2048, max_retries=0)
            assert "mem" in str(err.value).lower()
            return
        want = canon(case.sharded(2)[0])
        day, _ = case.sharded(2, mem_budget=2048)
        assert canon(day) == want


class TestRetryBudget:
    def test_persistent_crash_is_a_diagnosed_shard_error(self, case):
        chaos = ChaosConfig(seed=1, crash_rate=1.0, faulty_attempts=99)
        with pytest.raises(ShardError) as err:
            case.sharded(2, chaos=chaos, max_retries=1)
        assert err.value.diagnosis  # terminal failures carry their history

    def test_bounded_crashes_recover(self, case):
        want = canon(case.sharded(2)[0])
        chaos = ChaosConfig(seed=1, crash_rate=1.0, faulty_attempts=2)
        day, report = case.sharded(2, chaos=chaos, max_retries=3)
        assert canon(day) == want
        assert report["retries"] > 0


class TestWatchdog:
    def test_stalled_worker_is_killed_and_redispatched(self):
        case = DayCase(num_flows=12, horizon=2)
        want = canon(case.sharded(2)[0])
        chaos = ChaosConfig(seed=1, delay_rate=1.0, delay_seconds=5.0,
                            faulty_attempts=1)
        day, report = case.sharded(
            2, workers=2, chaos=chaos, stall_timeout=0.3
        )
        assert canon(day) == want
        assert report["stalls"] > 0
        assert report["pool_restarts"] > 0
