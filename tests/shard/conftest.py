"""Shared scenario builder for the shard suite: one day, many executions."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.placement import dp_placement
from repro.faults import FaultConfig, FaultProcess
from repro.shard import ShardConfig, simulate_day_sharded
from repro.sim.engine import simulate_day
from repro.sim.policies import (
    MParetoPolicy,
    NoMigrationPolicy,
    TomReplicationPolicy,
)
from repro.topology import fat_tree
from repro.workload import (
    DiurnalModel,
    FacebookTrafficModel,
    ScaledRates,
    place_vm_pairs,
)


def canon(day) -> str:
    return json.dumps(day.to_dict(), sort_keys=True)


class DayCase:
    """One reproducible simulated day, runnable unsharded or sharded.

    Every run builds a fresh policy (policies are stateful) but shares
    the topology/flows/placement, so two runs differ only in execution
    strategy — exactly what the byte-identity assertions need.
    """

    def __init__(
        self,
        num_flows: int = 30,
        flow_seed: int = 7,
        rate_seed: int = 3,
        horizon: int = 4,
        policy: str = "mpareto",
        mu: float = 5.0,
        fault_seed: int | None = None,
        k: int = 4,
    ):
        self.topology = fat_tree(k)
        flows = place_vm_pairs(self.topology, num_flows, seed=flow_seed)
        rng = np.random.default_rng(rate_seed)
        self.flows = flows.with_rates(
            FacebookTrafficModel().sample(num_flows, rng=rng)
        )
        self.horizon = horizon
        self.policy_kind = policy
        self.mu = mu
        self.fault_seed = fault_seed
        self.placement = dp_placement(self.topology, self.flows, 3).placement
        self.rate_process = ScaledRates(
            self.flows, DiurnalModel(num_hours=horizon), np.zeros(num_flows)
        )

    def make_policy(self):
        if self.policy_kind == "mpareto":
            return MParetoPolicy(self.topology, mu=self.mu)
        if self.policy_kind == "no-migration":
            return NoMigrationPolicy(self.topology, mu=self.mu)
        if self.policy_kind == "tom-replication":
            return TomReplicationPolicy(self.topology, mu=self.mu, rho=0.5)
        raise ValueError(self.policy_kind)

    def make_faults(self):
        if self.fault_seed is None:
            return None
        return FaultProcess(
            self.topology,
            FaultConfig(switch_rate=0.12, link_rate=0.05),
            seed=self.fault_seed,
            horizon=self.horizon,
        )

    @property
    def hours(self):
        return range(1, self.horizon + 1)

    def unsharded(self):
        return simulate_day(
            self.topology,
            self.flows,
            self.make_policy(),
            self.rate_process,
            self.placement,
            self.hours,
            faults=self.make_faults(),
        )

    def sharded(self, num_shards: int, *, journal=None, **knobs):
        knobs.setdefault("backoff_base", 0.001)
        report: dict = {}
        day = simulate_day_sharded(
            self.topology,
            self.flows,
            self.make_policy(),
            self.rate_process,
            self.placement,
            self.hours,
            config=ShardConfig(num_shards=num_shards, **knobs),
            faults=self.make_faults(),
            journal=journal,
            report=report,
        )
        return day, report


@pytest.fixture(scope="module")
def plain_case():
    return DayCase()


@pytest.fixture(scope="module")
def fault_case():
    return DayCase(fault_seed=5)


@pytest.fixture(scope="module")
def replication_case():
    return DayCase(policy="tom-replication")
