"""Chaos soak (`-m shard`): a hostile day must cost time, never bits."""

from __future__ import annotations

import time

import pytest

from repro.runtime.resilience import ChaosConfig

from .conftest import DayCase, canon

pytestmark = pytest.mark.shard

#: generous wall-clock leash: kills force pool rebuilds and stalls burn
#: a watchdog timeout each, so the chaos run is legitimately slower —
#: but it must terminate, not thrash forever on a retry loop
SOAK_CEILING_SECONDS = 180.0


@pytest.fixture(scope="module")
def soak_case():
    # multi-block, multi-shard, multi-hour: enough tasks that the chaos
    # hash fires kills in several distinct hours
    return DayCase(num_flows=120, horizon=6)


class TestChaosSoak:
    def test_killed_workers_per_hour_change_no_bits(self, soak_case):
        clean, _ = soak_case.sharded(8, workers=2, block_size=16)
        chaos = ChaosConfig(
            seed=3, kill_rate=0.15, crash_rate=0.1, faulty_attempts=1
        )
        start = time.monotonic()
        day, report = soak_case.sharded(
            8, workers=2, block_size=16, chaos=chaos
        )
        elapsed = time.monotonic() - start
        assert canon(day) == canon(clean)
        assert report["pool_restarts"] > 0  # kills actually landed
        assert report["retries"] > 0
        assert elapsed < SOAK_CEILING_SECONDS

    def test_stalled_workers_change_no_bits(self, soak_case):
        clean, _ = soak_case.sharded(4, workers=2, block_size=16)
        chaos = ChaosConfig(
            seed=5, delay_rate=0.1, delay_seconds=5.0, faulty_attempts=1
        )
        start = time.monotonic()
        day, report = soak_case.sharded(
            4, workers=2, block_size=16, chaos=chaos, stall_timeout=0.4
        )
        elapsed = time.monotonic() - start
        assert canon(day) == canon(clean)
        assert report["stalls"] > 0
        assert elapsed < SOAK_CEILING_SECONDS
