"""Block aggregation kernels: exact expressions, exact folds, exact ladder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShardError
from repro.shard import (
    compute_block_aggregate,
    compute_block_serving,
    fold_aggregates,
    fold_serving,
)
from repro.shard.aggregate import column_strips_bitwise
from repro.topology import fat_tree


@pytest.fixture(scope="module")
def scenario():
    topology = fat_tree(4)
    rng = np.random.default_rng(11)
    hosts = topology.hosts
    sources = rng.choice(hosts, size=17)
    destinations = rng.choice(hosts, size=17)
    rates = rng.uniform(1.0, 50.0, size=17)
    return topology.graph.distances, sources, destinations, rates


class TestBlockAggregate:
    def test_single_block_is_the_unsharded_expression(self, scenario):
        dist, sources, destinations, rates = scenario
        agg = compute_block_aggregate(
            dist, sources, destinations, rates, block_index=0, block_start=0
        )
        # byte-for-byte the expressions CostContext evaluates unsharded
        assert agg.total_rate == float(rates.sum())
        assert np.array_equal(agg.ingress, rates @ dist[sources, :])
        assert np.array_equal(agg.egress, rates @ dist[destinations, :])
        assert agg.any_positive == bool((rates > 0).any())
        assert agg.dropped_rate == 0.0
        assert agg.dropped_flows.size == 0
        assert not agg.all_dropped

    def test_fault_mask_zero_rates_and_parks(self, scenario):
        dist, sources, destinations, rates = scenario
        surviving = np.setdiff1d(
            np.union1d(sources, destinations), [int(sources[0])]
        )
        park = int(surviving[0])
        agg = compute_block_aggregate(
            dist,
            sources,
            destinations,
            rates,
            block_index=0,
            block_start=100,
            surviving_hosts=surviving,
            park_host=park,
        )
        mask = ~(np.isin(sources, surviving) & np.isin(destinations, surviving))
        assert mask.any() and not mask.all()
        assert agg.dropped_rate == float(rates[mask].sum())
        assert np.array_equal(
            agg.dropped_flows, 100 + np.flatnonzero(mask)
        )  # global indices
        eff_rates = np.where(mask, 0.0, rates)
        eff_sources = np.where(mask, park, sources)
        assert agg.total_rate == float(eff_rates.sum())
        assert np.array_equal(agg.ingress, eff_rates @ dist[eff_sources, :])

    def test_all_dropped_flagged(self, scenario):
        dist, sources, destinations, rates = scenario
        agg = compute_block_aggregate(
            dist,
            sources,
            destinations,
            rates,
            block_index=0,
            block_start=0,
            surviving_hosts=np.array([], dtype=np.int64),
            park_host=int(sources[0]),
        )
        assert agg.all_dropped
        assert agg.dropped_rate == float(rates.sum())


class TestDegradationLadder:
    def test_tiny_budget_matches_full_gather_bitwise(self, scenario):
        dist, sources, destinations, rates = scenario
        full = compute_block_aggregate(
            dist, sources, destinations, rates, block_index=0, block_start=0
        )
        if not column_strips_bitwise():
            with pytest.raises(ShardError):
                compute_block_aggregate(
                    dist, sources, destinations, rates,
                    block_index=0, block_start=0, mem_budget=1024,
                )
            return
        stripped = compute_block_aggregate(
            dist, sources, destinations, rates,
            block_index=0, block_start=0, mem_budget=1024,
        )
        assert np.array_equal(full.ingress, stripped.ingress)
        assert np.array_equal(full.egress, stripped.egress)
        assert full.total_rate == stripped.total_rate

    def test_probe_is_memoized(self):
        assert column_strips_bitwise() == column_strips_bitwise()


class TestFolds:
    def _split(self, scenario, cuts):
        dist, sources, destinations, rates = scenario
        aggs = []
        bounds = [0, *cuts, len(rates)]
        for index, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
            aggs.append(
                compute_block_aggregate(
                    dist,
                    sources[lo:hi],
                    destinations[lo:hi],
                    rates[lo:hi],
                    block_index=index,
                    block_start=lo,
                )
            )
        return aggs

    def test_fold_is_input_order_independent(self, scenario):
        aggs = self._split(scenario, [5, 11])
        a = fold_aggregates(list(aggs))
        b = fold_aggregates(list(reversed(aggs)))
        assert a.total_rate == b.total_rate
        assert np.array_equal(a.ingress, b.ingress)
        assert np.array_equal(a.egress, b.egress)

    def test_fold_requires_every_block_exactly_once(self, scenario):
        # a missing *interior* block leaves a hole the fold must reject; a
        # missing trailing block is the plan's job to catch (the engine
        # folds exactly plan.blocks, so a lost tail raises there instead)
        aggs = self._split(scenario, [5, 11])
        with pytest.raises(ShardError):
            fold_aggregates([aggs[0], aggs[2]])
        with pytest.raises(ShardError):
            fold_aggregates(aggs + [aggs[0]])
        with pytest.raises(ShardError):
            fold_aggregates([])

    def test_single_block_fold_is_the_identity(self, scenario):
        dist, sources, destinations, rates = scenario
        agg = compute_block_aggregate(
            dist, sources, destinations, rates, block_index=0, block_start=0
        )
        folded = fold_aggregates([agg])
        assert folded.total_rate == agg.total_rate
        assert np.array_equal(folded.ingress, agg.ingress)
        assert folded.num_flows == len(rates)

    def test_serving_fold_completeness(self):
        assert fold_serving([(1, 2.0), (0, 1.0)]) == 1.0 + 2.0
        with pytest.raises(ShardError):
            fold_serving([(0, 1.0), (2, 2.0)])
        with pytest.raises(ShardError):
            fold_serving([])


class TestBlockServing:
    def test_matches_the_per_copy_min_expression(self, scenario):
        dist, sources, destinations, rates = scenario
        copies = np.array([[2, 5], [8, 11]], dtype=np.int64)
        got = compute_block_serving(
            dist, sources, destinations, rates, copies, block_index=0
        )
        per_copy = np.empty((len(copies), len(rates)))
        for r, row in enumerate(copies):
            chain = float(dist[row[:-1], row[1:]].sum())
            per_copy[r] = rates * (
                dist[sources, row[0]] + chain + dist[row[-1], destinations]
            )
        assert got == float(per_copy.min(axis=0).sum())
