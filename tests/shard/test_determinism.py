"""The shard determinism contract: identical bytes under any scheduling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ShardError
from repro.runtime.resilience import ChaosConfig
from repro.shard import ShardConfig, simulate_day_sharded
from repro.sim.engine import set_sharding, sharding_config, simulate_day
from repro.sim.policies import PlanVmPolicy

from .conftest import DayCase, canon

SHARD_COUNTS = (1, 2, 7, 16)


class TestOracleIdentity:
    """Default block size: sharded days byte-identical to the unsharded loop."""

    def test_plain_day(self, plain_case):
        want = canon(plain_case.unsharded())
        for num_shards in SHARD_COUNTS:
            day, _ = plain_case.sharded(num_shards)
            assert canon(day) == want, f"{num_shards} shards diverged"

    def test_fault_day(self, fault_case):
        want = canon(fault_case.unsharded())
        for num_shards in SHARD_COUNTS:
            day, _ = fault_case.sharded(num_shards)
            assert canon(day) == want, f"{num_shards} shards diverged"

    def test_replication_day(self, replication_case):
        want = canon(replication_case.unsharded())
        for num_shards in SHARD_COUNTS:
            day, _ = replication_case.sharded(num_shards)
            assert canon(day) == want, f"{num_shards} shards diverged"

    def test_pool_matches_serial(self, plain_case):
        serial, _ = plain_case.sharded(2, workers=1)
        pooled, report = plain_case.sharded(2, workers=2)
        assert canon(pooled) == canon(serial)
        assert report["workers"] == 2
        assert report["dispatched"] > 0


class TestShardCountInvariance:
    """Tiny blocks: every shard count folds to the same bytes."""

    @pytest.mark.parametrize("case_name", ["plain_case", "fault_case", "replication_case"])
    def test_multi_block_invariance(self, case_name, request):
        case = request.getfixturevalue(case_name)
        days = [
            canon(case.sharded(num_shards, block_size=4)[0])
            for num_shards in SHARD_COUNTS
        ]
        assert len(set(days)) == 1


class TestChaosImmunity:
    def test_crashed_attempts_change_nothing(self, plain_case):
        want = canon(plain_case.sharded(2)[0])
        chaos = ChaosConfig(seed=1, crash_rate=1.0, faulty_attempts=1)
        day, report = plain_case.sharded(2, chaos=chaos)
        assert canon(day) == want
        assert report["retries"] > 0

    def test_killed_workers_change_nothing(self, plain_case):
        # a hard worker kill (os._exit) breaks the pool; the supervisor
        # rebuilds it and re-dispatches the dead shard's task
        want = canon(plain_case.sharded(2)[0])
        chaos = ChaosConfig(seed=1, kill_rate=1.0, faulty_attempts=1)
        day, report = plain_case.sharded(2, workers=2, chaos=chaos)
        assert canon(day) == want
        assert report["pool_restarts"] > 0


class TestRouting:
    """simulate_day routes through the shard layer when armed."""

    def test_set_sharding_round_trip(self, plain_case):
        want = canon(plain_case.unsharded())
        previous = set_sharding(ShardConfig(num_shards=2))
        try:
            assert sharding_config() is not None
            got = canon(plain_case.unsharded())  # routed through the shard layer
        finally:
            set_sharding(previous)
        assert got == want
        assert sharding_config() is previous

    def test_per_flow_policies_fall_back_unsharded(self, plain_case):
        # PLAN prices per-VM state and cannot shard; routing must skip it
        policy = PlanVmPolicy(plain_case.topology, mu=plain_case.mu)
        assert not getattr(policy, "supports_sharding", True)
        previous = set_sharding(ShardConfig(num_shards=2))
        try:
            day = simulate_day(
                plain_case.topology,
                plain_case.flows,
                policy,
                plain_case.rate_process,
                plain_case.placement,
                plain_case.hours,
            )
        finally:
            set_sharding(previous)
        assert len(day.records) == plain_case.horizon

    def test_direct_call_rejects_per_flow_policies(self, plain_case):
        with pytest.raises(ShardError):
            simulate_day_sharded(
                plain_case.topology,
                plain_case.flows,
                PlanVmPolicy(plain_case.topology, mu=plain_case.mu),
                plain_case.rate_process,
                plain_case.placement,
                plain_case.hours,
                config=ShardConfig(num_shards=2),
            )


class TestPropertySweep:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        num_flows=st.integers(min_value=2, max_value=40),
        flow_seed=st.integers(min_value=0, max_value=2**20),
        num_shards=st.sampled_from(SHARD_COUNTS),
        day_kind=st.sampled_from(["plain", "fault", "replication"]),
    )
    def test_sharded_days_are_scheduling_free(
        self, num_flows, flow_seed, num_shards, day_kind
    ):
        case = DayCase(
            num_flows=num_flows,
            flow_seed=flow_seed,
            horizon=4,
            policy="tom-replication" if day_kind == "replication" else "mpareto",
            fault_seed=5 if day_kind == "fault" else None,
        )
        # oracle identity at the default (single-block) grain
        want = canon(case.unsharded())
        assert canon(case.sharded(num_shards)[0]) == want
        # shard-count invariance at the multi-block grain
        a = canon(case.sharded(num_shards, block_size=3)[0])
        b = canon(case.sharded(1, block_size=3)[0])
        assert a == b

    def test_multi_block_books_match_unsharded_numerically(self, plain_case):
        # across block grains the fold order changes, so bits may differ —
        # but only by float reassociation, never materially
        want = plain_case.unsharded()
        day, _ = plain_case.sharded(3, block_size=4)
        for theirs, ours in zip(want.records, day.records):
            assert np.isclose(
                theirs.communication_cost, ours.communication_cost, rtol=1e-12
            )
            assert theirs.num_migrations == ours.num_migrations
