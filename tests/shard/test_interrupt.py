"""Graceful interruption: SIGTERM mid-day yields a flagged partial day."""

from __future__ import annotations

import os
import signal

from repro.runtime.journal import Journal
from repro.shard import ShardConfig, simulate_day_sharded
from repro.sim.engine import simulate_day

from .conftest import DayCase, canon


class InterruptingRates:
    """Rate process that SIGTERMs its own process at a chosen hour.

    ``deliver_interrupts`` converts the signal to ``KeyboardInterrupt``
    at the next bytecode boundary, so the day loop sees the interrupt
    exactly where a real ``kill`` mid-hour would land.
    """

    def __init__(self, inner, at_hour: int):
        self.inner = inner
        self.at_hour = at_hour

    def rates_at(self, hour: int):
        if hour == self.at_hour:
            os.kill(os.getpid(), signal.SIGTERM)
        return self.inner.rates_at(hour)


class InterruptingPolicy:
    """Policy wrapper that SIGTERMs the process on its n-th ``step``.

    Unlike :class:`InterruptingRates` this leaves the rate process —
    part of the shard journal's scope fingerprint — untouched, so a
    resumed run can adopt the interrupted run's journalled shards.
    """

    def __init__(self, inner, at_step: int):
        self._inner = inner
        self._at_step = at_step
        self._steps = 0

    def step(self, rates):
        self._steps += 1
        if self._steps == self._at_step:
            os.kill(os.getpid(), signal.SIGTERM)
        return self._inner.step(rates)

    def __getattr__(self, name):
        return getattr(self.__dict__["_inner"], name)


def _interrupted_day(case: DayCase, at_hour: int):
    return simulate_day(
        case.topology,
        case.flows,
        case.make_policy(),
        InterruptingRates(case.rate_process, at_hour),
        case.placement,
        case.hours,
        faults=case.make_faults(),
    )


class TestClassicLoop:
    def test_plain_day_returns_flagged_prefix(self):
        case = DayCase(num_flows=12, horizon=4)
        full = case.unsharded()
        partial = _interrupted_day(case, at_hour=3)
        assert partial.extra["interrupted"] is True
        assert len(partial.records) == 2
        # the completed hours are exactly the full day's prefix
        assert partial.records == full.records[:2]

    def test_fault_day_returns_flagged_prefix(self):
        case = DayCase(num_flows=12, horizon=4, fault_seed=5)
        full = case.unsharded()
        partial = _interrupted_day(case, at_hour=3)
        assert partial.extra["interrupted"] is True
        assert len(partial.records) == 2
        assert partial.records == full.records[:2]

    def test_normal_days_are_not_flagged(self):
        case = DayCase(num_flows=12, horizon=4)
        assert "interrupted" not in case.unsharded().extra


class TestShardedLoop:
    def test_sharded_day_returns_flagged_prefix(self):
        case = DayCase(num_flows=12, horizon=4)
        full, _ = case.sharded(2)
        partial = simulate_day_sharded(
            case.topology,
            case.flows,
            case.make_policy(),
            InterruptingRates(case.rate_process, at_hour=3),
            case.placement,
            case.hours,
            config=ShardConfig(num_shards=2, backoff_base=0.001),
        )
        assert partial.extra["interrupted"] is True
        assert len(partial.records) == 2
        assert partial.records == full.records[:2]

    def test_interrupted_shards_are_salvaged_on_resume(self, tmp_path):
        # the shard journal is flushed record-by-record, so a kill
        # mid-day leaves the completed shards on disk; the resumed run
        # adopts them and finishes the day byte-identically
        case = DayCase(num_flows=12, horizon=4)
        clean, _ = case.sharded(2)
        path = tmp_path / "shards.jsonl"
        with Journal(path) as journal:
            partial = simulate_day_sharded(
                case.topology,
                case.flows,
                InterruptingPolicy(case.make_policy(), at_step=3),
                case.rate_process,
                case.placement,
                case.hours,
                config=ShardConfig(num_shards=2, backoff_base=0.001),
                journal=journal,
            )
        assert partial.extra["interrupted"] is True
        assert len(partial.records) == 2
        with Journal(path) as journal:
            resumed, report = case.sharded(2, journal=journal)
        assert canon(resumed) == canon(clean)
        # hours 1-3's shards were journalled before the kill landed;
        # only the tail of the day is recomputed
        assert report["journal_hits"] > 0
        assert report["dispatched"] > 0
