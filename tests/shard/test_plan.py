"""Shard plans: blocks partition the flow order, assignment is pure scheduling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShardError
from repro.shard import ShardConfig, ShardPlan
from repro.topology import fat_tree
from repro.workload import place_vm_pairs
from repro.workload.stream import RackTable, StreamingWorkload


@pytest.fixture(scope="module")
def flows():
    return place_vm_pairs(fat_tree(4), 23, seed=7)


@pytest.fixture(scope="module")
def stream():
    return StreamingWorkload(
        rack_table=RackTable.from_topology(fat_tree(4)),
        num_flows=23,
        chunk_size=5,
        seed=3,
    )


class TestShardConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_shards": 0},
            {"block_size": 0},
            {"workers": 0},
            {"mem_budget": 0},
            {"stall_timeout": 0.0},
            {"max_retries": -1},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ShardError):
            ShardConfig(**kwargs)

    def test_defaults_are_valid(self):
        config = ShardConfig()
        assert config.num_shards == 1
        assert config.block_size == 4096


class TestBlockTable:
    def test_blocks_partition_the_flow_order(self, flows):
        plan = ShardPlan.for_flows(flows, ShardConfig(num_shards=3, block_size=5))
        covered = [
            i for block in plan.blocks for i in range(block.start, block.stop)
        ]
        assert covered == list(range(flows.num_flows))
        assert [b.index for b in plan.blocks] == list(range(plan.num_blocks))

    def test_last_block_is_the_remainder(self, flows):
        plan = ShardPlan.for_flows(flows, ShardConfig(num_shards=2, block_size=5))
        assert plan.blocks[-1].size == flows.num_flows % 5

    def test_block_table_independent_of_shard_count(self, flows):
        plans = [
            ShardPlan.for_flows(flows, ShardConfig(num_shards=s, block_size=5))
            for s in (1, 2, 7)
        ]
        assert plans[0].blocks == plans[1].blocks == plans[2].blocks


class TestAssignment:
    def test_deterministic_across_rebuilds(self, flows):
        config = ShardConfig(num_shards=4, block_size=5)
        a = ShardPlan.for_flows(flows, config)
        b = ShardPlan.for_flows(flows, config)
        assert a == b

    def test_every_block_owned_exactly_once(self, flows):
        plan = ShardPlan.for_flows(flows, ShardConfig(num_shards=4, block_size=5))
        owned = sorted(
            block.index for _, blocks in plan.shards() for block in blocks
        )
        assert owned == list(range(plan.num_blocks))
        assert all(0 <= owner < 4 for owner in plan.assignment)

    def test_single_shard_owns_everything(self, flows):
        plan = ShardPlan.for_flows(flows, ShardConfig(num_shards=1, block_size=5))
        assert plan.assignment == (0,) * plan.num_blocks

    def test_assignment_tracks_content_not_position(self, flows):
        # same endpoints => same hash => same shard, whatever the rates are
        config = ShardConfig(num_shards=4, block_size=5)
        a = ShardPlan.for_flows(flows, config)
        b = ShardPlan.for_flows(
            flows.with_rates(np.arange(flows.num_flows, dtype=float)), config
        )
        assert a.assignment == b.assignment


class TestStreamPlans:
    def test_chunk_grid_is_the_block_grid(self, stream):
        plan = ShardPlan.for_stream(stream, ShardConfig(num_shards=3, block_size=5))
        assert plan.num_blocks == stream.num_chunks
        assert [(b.start, b.stop) for b in plan.blocks] == [
            stream.chunk_bounds(i) for i in range(stream.num_chunks)
        ]

    def test_chunk_size_mismatch_is_diagnosed(self, stream):
        with pytest.raises(ShardError) as err:
            ShardPlan.for_stream(stream, ShardConfig(num_shards=3, block_size=4))
        assert err.value.diagnosis["chunk_size"] == 5
        assert err.value.diagnosis["block_size"] == 4

    def test_assignment_depends_only_on_the_recipe(self, stream):
        config = ShardConfig(num_shards=4, block_size=5)
        assert (
            ShardPlan.for_stream(stream, config).assignment
            == ShardPlan.for_stream(stream, config).assignment
        )
