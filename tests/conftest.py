"""Shared fixtures: small topologies and workloads reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import FacebookTrafficModel, fat_tree, linear_ppdc, place_vm_pairs
from repro.workload.flows import FlowSet


@pytest.fixture(scope="session")
def ft2():
    """The k=2 fat tree of Fig. 3 (equals the linear PPDC of Fig. 1)."""
    return fat_tree(2)


@pytest.fixture(scope="session")
def ft4():
    return fat_tree(4)


@pytest.fixture(scope="session")
def ft8():
    return fat_tree(8)


@pytest.fixture()
def example1_flows(ft2):
    """Example 1's two flows: (v1,v1') on h1 and (v2,v2') on h2, λ = <100, 1>."""
    h1, h2 = int(ft2.hosts[0]), int(ft2.hosts[1])
    return FlowSet(sources=[h1, h2], destinations=[h1, h2], rates=[100.0, 1.0])


@pytest.fixture()
def small_workload(ft4):
    """A 12-pair Facebook-rate workload on the k=4 fabric."""
    flows = place_vm_pairs(ft4, 12, seed=42)
    return flows.with_rates(FacebookTrafficModel().sample(12, rng=42))


@pytest.fixture(scope="session")
def small_scenario():
    """Factory for the suite's standard workload shape.

    ``small_scenario(topology, num_pairs, seed)`` places VM pairs and
    samples Facebook rates, both from ``seed`` — the one workload recipe
    the suites used to copy as per-file ``_workload`` helpers.
    Session-scoped (it is a pure factory), so hypothesis ``@given``
    bodies may use it freely.
    """

    def make(topology, num_pairs, seed=0, *, intra_rack_fraction=None):
        kwargs = {}
        if intra_rack_fraction is not None:
            kwargs["intra_rack_fraction"] = intra_rack_fraction
        flows = place_vm_pairs(topology, num_pairs, seed=seed, **kwargs)
        return flows.with_rates(
            FacebookTrafficModel().sample(num_pairs, rng=seed)
        )

    return make


from repro.graphs.generators import random_cost_graph  # noqa: E402  (re-export for tests)
