"""Multi-SFC contention: sequential admission under shared constraints."""

from __future__ import annotations

import json

import pytest

from repro import Constraints, place_chains
from repro.solvers.contention import ORDERS

pytestmark = pytest.mark.constrained


def _chains(topology, small_scenario, count, n, base_seed=0):
    return [(small_scenario(topology, 4, seed=base_seed + i), n) for i in range(count)]


class TestAdmission:
    def test_unconstrained_admits_everything(self, ft2, small_scenario):
        chains = _chains(ft2, small_scenario, 3, 2)
        result = place_chains(ft2, chains)
        assert result.accepted == 3
        assert result.rejections == ()
        assert all(p is not None for p in result.placements)

    def test_capacity_pressure_rejects_with_diagnosis(self, ft2, small_scenario):
        # 5 switches x 1 slot, 3 chains x 2 VNFs = 6 slots wanted: at
        # least one chain must be turned away, with a structured reason
        chains = _chains(ft2, small_scenario, 3, 2)
        result = place_chains(
            ft2, chains, constraints=Constraints(vnf_capacity=1)
        )
        assert result.accepted == 2
        assert len(result.rejections) == 1
        (idx, diagnosis), = result.rejections
        assert diagnosis["reason"] == "capacity"
        assert result.placements[idx] is None

    def test_accepted_chains_respect_accumulated_state(self, ft2, small_scenario):
        chains = _chains(ft2, small_scenario, 3, 2)
        constraints = Constraints(vnf_capacity=1)
        result = place_chains(ft2, chains, constraints=constraints)
        state = constraints
        for (flows, _n), placed in zip(chains, result.placements):
            if placed is None:
                continue
            rate = float(flows.total_rate)
            assert state.check_placement(ft2, placed.placement, rate) == []
            state = state.after_placement(placed.placement, rate)

    def test_contention_aware_places_heaviest_first(self, ft2, small_scenario):
        chains = _chains(ft2, small_scenario, 3, 2)
        rates = [float(flows.total_rate) for flows, _ in chains]
        heaviest = rates.index(max(rates))
        result = place_chains(
            ft2, chains,
            constraints=Constraints(vnf_capacity=1),
            order="contention-aware",
        )
        # the heaviest chain saw an empty fabric: it can never be rejected
        assert result.placements[heaviest] is not None
        served = sum(
            rate
            for rate, placed in zip(rates, result.placements)
            if placed is not None
        )
        first_fit = place_chains(
            ft2, chains, constraints=Constraints(vnf_capacity=1)
        )
        first_fit_served = sum(
            rate
            for rate, placed in zip(rates, first_fit.placements)
            if placed is not None
        )
        assert served >= first_fit_served - 1e-9

    def test_unknown_order_rejected(self, ft2, small_scenario):
        with pytest.raises(Exception, match="order"):
            place_chains(
                ft2, _chains(ft2, small_scenario, 2, 2), order="lightest-first"
            )


class TestResultSurface:
    def test_orders_tuple_is_the_public_contract(self):
        assert ORDERS == ("first-fit", "contention-aware")

    def test_to_dict_roundtrips_as_json(self, ft2, small_scenario):
        chains = _chains(ft2, small_scenario, 3, 2)
        result = place_chains(
            ft2, chains, constraints=Constraints(vnf_capacity=1)
        )
        data = json.loads(json.dumps(result.to_dict()))
        assert data["accepted"] == result.accepted
        assert len(data["placements"]) == 3

    def test_deterministic_replay(self, ft2, small_scenario):
        chains = _chains(ft2, small_scenario, 4, 2)
        constraints = Constraints(vnf_capacity=1, bandwidth=1e9)
        a = place_chains(ft2, chains, constraints=constraints)
        b = place_chains(ft2, chains, constraints=constraints)
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )
