"""MSG stage-graph solvers: constraints honored, never below the oracle."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro import (
    Constraints,
    InfeasibleError,
    fat_tree,
    msg_greedy_migration,
    msg_greedy_placement,
    msg_migration,
    msg_placement,
    optimal_migration,
    optimal_placement,
)
from repro.constraints import chain_delay
from repro.core.placement import dp_placement
from repro.topology import apply_uniform_delays

pytestmark = pytest.mark.constrained


def _floor_delay(topology, n):
    return min(
        chain_delay(topology, p)
        for p in itertools.permutations(topology.switches.tolist(), n)
    )


class TestUnconstrained:
    def test_matches_placement_surface(self, ft2, small_scenario):
        flows = small_scenario(ft2, 4, seed=1)
        result = msg_placement(ft2, flows, 3)
        assert result.meta["algorithm"] == "msg"
        assert len(set(result.placement.tolist())) == 3
        # never below the exact optimum
        oracle = optimal_placement(ft2, flows, 3)
        assert result.cost >= oracle.cost - 1e-9 * max(1.0, oracle.cost)

    def test_greedy_is_beam_one(self, ft2, small_scenario):
        flows = small_scenario(ft2, 4, seed=2)
        greedy = msg_greedy_placement(ft2, flows, 3)
        assert greedy.meta["algorithm"] == "msg-greedy"
        assert greedy.meta["beam_width"] == 1
        wide = msg_placement(ft2, flows, 3)
        assert wide.cost <= greedy.cost + 1e-9 * max(1.0, greedy.cost)


class TestCapacity:
    def test_occupied_switches_avoided(self, ft2, small_scenario):
        flows = small_scenario(ft2, 4, seed=3)
        full = [int(s) for s in ft2.switches[:2]]
        constraints = Constraints(
            vnf_capacity=1, occupancy={s: 1 for s in full}
        )
        result = msg_placement(ft2, flows, 3, constraints=constraints)
        assert not set(result.placement.tolist()) & set(full)
        assert constraints.check_placement(
            ft2, result.placement, float(flows.total_rate)
        ) == []

    def test_too_few_free_slots_is_diagnosed(self, ft2, small_scenario):
        flows = small_scenario(ft2, 4, seed=3)
        switches = [int(s) for s in ft2.switches]
        constraints = Constraints(
            vnf_capacity=1, occupancy={s: 1 for s in switches[:-2]}
        )
        with pytest.raises(InfeasibleError) as err:
            msg_placement(ft2, flows, 3, constraints=constraints)
        assert err.value.diagnosis["reason"] == "capacity"

    def test_saturated_bandwidth_avoided(self, ft2, small_scenario):
        flows = small_scenario(ft2, 4, seed=4)
        rate = float(flows.total_rate)
        hot = [int(s) for s in ft2.switches[:2]]
        constraints = Constraints(
            bandwidth=2.0 * rate, load={s: 1.5 * rate for s in hot}
        )
        result = msg_placement(ft2, flows, 3, constraints=constraints)
        assert not set(result.placement.tolist()) & set(hot)


class TestDelay:
    def test_bound_honored_and_oracle_agrees(self, small_scenario):
        topo = apply_uniform_delays(fat_tree(2), seed=7)
        flows = small_scenario(topo, 4, seed=7)
        bound = 1.2 * _floor_delay(topo, 3)
        constraints = Constraints(max_delay=bound)
        result = msg_placement(topo, flows, 3, constraints=constraints)
        assert chain_delay(topo, result.placement) <= bound * (1 + 1e-9) + 1e-9
        oracle = optimal_placement(topo, flows, 3, constraints=constraints)
        assert result.cost >= oracle.cost - 1e-9 * max(1.0, oracle.cost)

    def test_witness_fallback_rescues_a_failed_beam(self, small_scenario):
        # seed found by scanning: the cost-greedy beam (width 1) dead-ends
        # under the exact min-delay bound and the solver must fall back to
        # the exact min-delay witness instead of claiming infeasibility
        topo = apply_uniform_delays(fat_tree(2), seed=9)
        flows = small_scenario(topo, 4, seed=9)
        floor = _floor_delay(topo, 4)
        result = msg_greedy_placement(
            topo, flows, 4, constraints=Constraints(max_delay=floor)
        )
        assert result.meta["fallback"] == "min-delay-witness"
        assert chain_delay(topo, result.placement) <= floor * (1 + 1e-9) + 1e-9

    def test_unsatisfiable_bound_reports_min_delay(self, small_scenario):
        topo = apply_uniform_delays(fat_tree(2), seed=11)
        flows = small_scenario(topo, 4, seed=11)
        floor = _floor_delay(topo, 3)
        with pytest.raises(InfeasibleError) as err:
            msg_placement(
                topo, flows, 3, constraints=Constraints(max_delay=0.5 * floor)
            )
        diagnosis = err.value.diagnosis
        assert diagnosis["reason"] == "delay"
        assert diagnosis["min_delay"] == pytest.approx(floor)


class TestMigration:
    def test_constrained_migration_honors_bounds(self, ft2, small_scenario):
        flows = small_scenario(ft2, 4, seed=5)
        prev = dp_placement(ft2, flows, 3).placement
        full = [int(s) for s in ft2.switches[:1]]
        constraints = Constraints(vnf_capacity=1, occupancy={s: 1 for s in full})
        result = msg_migration(ft2, flows, prev, 10.0, constraints=constraints)
        assert not set(result.placement.tolist()) & set(full)
        oracle = optimal_migration(
            ft2, flows, prev, 10.0, constraints=constraints
        )
        assert result.cost >= oracle.cost - 1e-9 * max(1.0, oracle.cost)

    def test_greedy_migration_algorithm_tag(self, ft2, small_scenario):
        flows = small_scenario(ft2, 4, seed=6)
        prev = dp_placement(ft2, flows, 3).placement
        result = msg_greedy_migration(ft2, flows, prev, 5.0)
        assert result.meta["algorithm"] == "msg-greedy"
        assert result.cost == pytest.approx(
            result.communication_cost + result.migration_cost
        )


class TestDeterminism:
    def test_repeat_solves_bit_identical(self, ft2, small_scenario):
        flows = small_scenario(ft2, 4, seed=8)
        constraints = Constraints(vnf_capacity=2, bandwidth=1e9)
        a = msg_placement(ft2, flows, 3, constraints=constraints)
        b = msg_placement(ft2, flows, 3, constraints=constraints)
        assert np.array_equal(a.placement, b.placement)
        assert a.cost == b.cost
        assert a.meta == b.meta
