"""The checkpoint journal: fingerprints, persistence, crash-tolerant loads."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.runtime.journal import Journal, task_fingerprint


class TestTaskFingerprint:
    def test_deterministic(self):
        task = {"seed": 7, "rates": (1.0, 2.0)}
        assert task_fingerprint("fig@smoke", 3, task) == task_fingerprint(
            "fig@smoke", 3, task
        )

    def test_sensitive_to_scope_index_and_content(self):
        base = task_fingerprint("fig@smoke", 0, (1, 2))
        assert task_fingerprint("fig@paper", 0, (1, 2)) != base
        assert task_fingerprint("fig@smoke", 1, (1, 2)) != base
        assert task_fingerprint("fig@smoke", 0, (1, 3)) != base

    def test_ndarray_content_hashes(self):
        a = task_fingerprint("s", 0, np.arange(4))
        b = task_fingerprint("s", 0, np.arange(4))
        c = task_fingerprint("s", 0, np.arange(5))
        assert a == b != c

    def test_unpicklable_task_rejected(self):
        with pytest.raises(ReproError):
            task_fingerprint("s", 0, lambda: None)

    def test_hex_sha256_shape(self):
        assert len(task_fingerprint("s", 0, "task")) == 64

    def test_topology_memo_caches_do_not_shift_fingerprints(self):
        """Using a topology must not change how tasks containing it hash.

        ``Topology.switch_only_graph`` memoizes into ``meta["_switch_graph"]``;
        if that cache leaked into pickles, a journal written early in a
        run would never match fingerprints computed later (or by a
        resumed process) — so resume would silently re-run everything.
        """
        from repro import fat_tree

        topology = fat_tree(2)
        before = task_fingerprint("s", 0, (topology, 3))
        topology.switch_only_graph()  # populate the per-process memo
        assert task_fingerprint("s", 0, (topology, 3)) == before


class TestJournalRoundTrip:
    def test_record_and_lookup(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        fingerprint = task_fingerprint("s", 0, "task")
        assert journal.lookup(fingerprint) == (False, None)
        journal.record(fingerprint, {"cost": 1.5, "placement": [1, 2]})
        hit, value = journal.lookup(fingerprint)
        assert hit and value == {"cost": 1.5, "placement": [1, 2]}

    def test_none_result_distinguished_from_miss(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.record("fp", None)
        assert journal.lookup("fp") == (True, None)
        assert "fp" in journal

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.record("a", np.arange(3))
            journal.record("b", "second")
        reopened = Journal(path)
        assert len(reopened) == 2
        hit, value = reopened.lookup("a")
        assert hit and np.array_equal(value, np.arange(3))

    def test_append_only_ignores_rerecord(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.record("fp", "first")
        size = path.stat().st_size
        journal.record("fp", "second")  # silently kept as the original
        assert path.stat().st_size == size
        assert journal.lookup("fp") == (True, "first")

    def test_missing_file_is_empty(self, tmp_path):
        journal = Journal(tmp_path / "does-not-exist.jsonl")
        assert len(journal) == 0


class TestCrashTolerance:
    def test_truncated_tail_discarded(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.record("a", 1)
            journal.record("b", 2)
        # simulate a run killed mid-append: a partial trailing line
        with path.open("a") as handle:
            handle.write('{"fp": "c", "data": "QUJD')
        reopened = Journal(path)
        assert len(reopened) == 2
        assert "c" not in reopened

    def test_corrupt_lines_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.record("a", 1)
        with path.open("a") as handle:
            handle.write("not json at all\n")
            handle.write('{"fp": "bad-pickle", "data": "???"}\n')
        journal = Journal(path)
        journal.record("b", 2)
        journal.close()
        reopened = Journal(path)
        assert len(reopened) == 2  # a damaged line loses only its own record
        assert "bad-pickle" not in reopened

    def test_can_append_after_truncated_tail(self, tmp_path):
        """A record appended after a crash's partial line must not merge
        into it — the journal newline-terminates the tail first."""
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.record("a", 1)
        with path.open("a") as handle:
            handle.write('{"fp": "partial')
        journal = Journal(path)
        journal.record("b", 2)
        journal.close()
        reopened = Journal(path)
        assert reopened.lookup("a") == (True, 1)
        assert reopened.lookup("b") == (True, 2)

    def test_unpicklable_result_rejected(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        with pytest.raises(ReproError):
            journal.record("fp", lambda: None)


class TestWriterLock:
    """Advisory flock on the sidecar: one writer per journal, ever."""

    def test_concurrent_writer_is_diagnosed(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as first:
            first.record("a", 1)  # first append takes the writer lock
            assert first.lock_path.exists()
            second = Journal(path)  # loading is lock-free
            try:
                with pytest.raises(ReproError) as err:
                    second.record("b", 2)
                assert "locked by another process" in str(err.value)
            finally:
                second.close()

    def test_close_frees_the_writer_slot(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = Journal(path)
        first.record("a", 1)
        first.close()
        with Journal(path) as second:
            second.record("b", 2)  # lock was released with the holder
        reopened = Journal(path)
        assert reopened.lookup("a") == (True, 1)
        assert reopened.lookup("b") == (True, 2)

    def test_readers_need_no_lock(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as writer:
            writer.record("a", 1)
            # a concurrent reader sees committed records while the
            # writer still holds the lock
            reader = Journal(path)
            assert reader.lookup("a") == (True, 1)
            reader.close()

    def test_lock_false_opts_out(self, tmp_path):
        # callers managing their own exclusion may interleave appends
        path = tmp_path / "j.jsonl"
        with Journal(path, lock=False) as first, Journal(path, lock=False) as second:
            first.record("a", 1)
            second.record("b", 2)
        reopened = Journal(path)
        assert reopened.lookup("a") == (True, 1)
        assert reopened.lookup("b") == (True, 2)
