"""Shared-memory artifact hand-off: round-trip fidelity and segment lifetime."""

from __future__ import annotations

import pickle
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.errors import ReproError
from repro.runtime import shm
from repro.runtime.cache import ComputeCache, get_compute_cache, set_compute_cache
from repro.runtime.resilience import ResilienceConfig
from repro.runtime.shm import (
    ArtifactExport,
    SharedArtifactRunner,
    adopt_artifacts,
    content_fingerprint,
    export_session_artifacts,
    set_artifact_sharing,
    sharing_enabled,
)
from repro.sim.policies import MParetoPolicy, NoMigrationPolicy
from repro.sim.runner import RunConfig, run_replications
from repro.topology.fattree import fat_tree
from repro.workload.diurnal import DiurnalModel
from repro.workload.traffic import FacebookTrafficModel


def _segment_names(export: ArtifactExport) -> list[str]:
    return [segment.name for segment in export._segments]


def _assert_unlinked(names: list[str]) -> None:
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


@pytest.fixture()
def fresh_adoption_state():
    """Isolate the worker-side adoption registry and compute cache."""
    saved_adopted = dict(shm._ADOPTED)
    shm._ADOPTED.clear()
    previous = get_compute_cache()
    set_compute_cache(ComputeCache())
    yield
    shm._ADOPTED.clear()
    shm._ADOPTED.update(saved_adopted)
    set_compute_cache(previous)


class TestContentFingerprint:
    def test_stable_across_pickle_round_trips(self):
        topo = fat_tree(2)
        clone = pickle.loads(pickle.dumps(topo))
        assert topo is not clone
        assert content_fingerprint(topo) == content_fingerprint(clone)

    def test_distinguishes_topologies(self):
        assert content_fingerprint(fat_tree(2)) != content_fingerprint(fat_tree(4))

    def test_unpicklable_rejected(self):
        with pytest.raises(ReproError, match="unpicklable"):
            content_fingerprint(lambda: None)


class TestExportAdoptRoundTrip:
    def test_adopted_arrays_bitwise_equal(self, fresh_adoption_state):
        topo = fat_tree(2)
        dist, pred = topo.graph._apsp()
        export = export_session_artifacts(topo, chain_sizes=(3,))
        try:
            worker_topo = pickle.loads(pickle.dumps(topo))
            canonical = adopt_artifacts(export.shared, worker_topo)
            assert canonical is worker_topo
            cache = get_compute_cache()
            got_dist, got_pred = cache.get_or_compute(
                worker_topo.graph, "apsp", lambda: pytest.fail("apsp not seeded")
            )
            assert np.array_equal(got_dist, dist)
            assert np.array_equal(got_pred, pred)
            assert len(export.shared.strolls) == 1  # n=3 has one interior VNF
            key, _refs = export.shared.strolls[0]
            seeded = cache.get_or_compute(
                worker_topo, key, lambda: pytest.fail("stroll matrix not seeded")
            )
            from repro.core.placement import _stroll_matrix

            fresh = _stroll_matrix(topo, topo.switches, 1, "second-best", 18)
            for got, want in zip(seeded, fresh):
                assert np.array_equal(got, want)
        finally:
            export.close()

    def test_adoption_is_idempotent_and_canonicalizing(self, fresh_adoption_state):
        topo = fat_tree(2)
        export = export_session_artifacts(topo)
        try:
            first = pickle.loads(pickle.dumps(topo))
            second = pickle.loads(pickle.dumps(topo))
            assert adopt_artifacts(export.shared, first) is first
            # same fingerprint -> later identity-distinct copies are rewritten
            assert adopt_artifacts(export.shared, second) is first
        finally:
            export.close()

    def test_runner_rewrites_matching_tasks(self, fresh_adoption_state):
        topo = fat_tree(2)
        export = export_session_artifacts(topo)
        try:
            import dataclasses

            @dataclasses.dataclass(frozen=True)
            class Task:
                topology: object

            seen = []
            runner = SharedArtifactRunner(
                lambda task: seen.append(task.topology), export.shared
            )
            runner(Task(topology=pickle.loads(pickle.dumps(topo))))
            runner(Task(topology=pickle.loads(pickle.dumps(topo))))
            assert seen[0] is seen[1]  # both rewritten onto the canonical copy
            foreign = fat_tree(4)
            runner(Task(topology=foreign))
            assert seen[2] is foreign  # fingerprint mismatch: left untouched
        finally:
            export.close()


class TestSegmentLifetime:
    def test_close_unlinks_everything_and_is_idempotent(self):
        export = export_session_artifacts(fat_tree(2), chain_sizes=(3,))
        names = _segment_names(export)
        assert len(names) == 5  # dist, pred + (closure, b_cost, b_edges)
        export.close()
        export.close()
        _assert_unlinked(names)

    def test_context_manager_unlinks_on_exception(self):
        names = []
        with pytest.raises(RuntimeError):
            with export_session_artifacts(fat_tree(2)) as export:
                names = _segment_names(export)
                raise RuntimeError("boom")
        assert names
        _assert_unlinked(names)

    def test_failed_export_leaves_no_segments(self, monkeypatch):
        created = []
        original = shm._export_array

        def tracking_export(arr):
            ref, segment = original(arr)
            created.append(segment.name)
            return ref, segment

        monkeypatch.setattr(shm, "_export_array", tracking_export)
        monkeypatch.setattr(
            shm,
            "content_fingerprint",
            lambda obj: (_ for _ in ()).throw(ReproError("injected")),
        )
        with pytest.raises(ReproError, match="injected"):
            export_session_artifacts(fat_tree(2))
        assert created  # the APSP segments were created before the failure
        _assert_unlinked(created)

    def test_sharing_toggle(self):
        assert sharing_enabled()
        assert set_artifact_sharing(False) is True
        try:
            assert not sharing_enabled()
        finally:
            set_artifact_sharing(True)


class KillOncePolicy(NoMigrationPolicy):
    """Hard-kill the worker on the first step ever taken (marker file)."""

    name = "kill-once"

    def __init__(self, topology, mu, marker=None):
        super().__init__(topology, mu)
        self.marker = marker

    def step(self, rates):
        import os

        if self.marker and not os.path.exists(self.marker):
            open(self.marker, "w").close()
            os._exit(13)
        return super().step(rates)


def _tiny_config(replications=2):
    return RunConfig(
        num_pairs=2,
        num_vnfs=3,
        mu=10.0,
        diurnal=DiurnalModel(num_hours=4),
        replications=replications,
        seed=3,
    )


class TestParallelRuns:
    def test_parallel_bit_identical_to_serial_and_no_leaks(self, monkeypatch):
        from repro.sim import runner as runner_mod

        exports = []
        original = runner_mod.export_session_artifacts

        def tracking(*args, **kwargs):
            export = original(*args, **kwargs)
            exports.append(_segment_names(export))
            return export

        monkeypatch.setattr(runner_mod, "export_session_artifacts", tracking)
        topo = fat_tree(2)
        model = FacebookTrafficModel()
        factories = {"mpareto": MParetoPolicy, "nomig": NoMigrationPolicy}
        serial, _ = run_replications(topo, model, _tiny_config(), factories, workers=1)
        parallel, _ = run_replications(
            topo, model, _tiny_config(), factories, workers=2
        )
        assert exports and all(exports)  # workers=2 actually shipped artifacts
        for names in exports:
            _assert_unlinked(names)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.placement, b.placement)
            for name in factories:
                assert a.days[name].total_cost == b.days[name].total_cost
                assert a.days[name].total_migrations == b.days[name].total_migrations

    def test_broken_pool_salvage_reships_artifacts(self, monkeypatch, tmp_path):
        """A worker death mid-run rebuilds the pool; the rebuilt workers get
        the same shared artifacts and the recovered run stays bit-identical."""
        from functools import partial

        from repro.sim import runner as runner_mod

        exports = []
        original = runner_mod.export_session_artifacts

        def tracking(*args, **kwargs):
            export = original(*args, **kwargs)
            exports.append(_segment_names(export))
            return export

        monkeypatch.setattr(runner_mod, "export_session_artifacts", tracking)
        topo = fat_tree(2)
        model = FacebookTrafficModel()
        clean, _ = run_replications(
            topo,
            model,
            _tiny_config(),
            {"kill": partial(KillOncePolicy, marker=None)},
            workers=1,
        )
        marker = str(tmp_path / "killed")
        salvaged, _ = run_replications(
            topo,
            model,
            _tiny_config(),
            {"kill": partial(KillOncePolicy, marker=marker)},
            workers=2,
            resilience=ResilienceConfig(max_retries=1, backoff_base=0.0),
        )
        import os

        assert os.path.exists(marker)  # a worker really died
        for a, b in zip(clean, salvaged):
            assert a.days["kill"].total_cost == b.days["kill"].total_cost
        assert exports
        for names in exports:
            _assert_unlinked(names)

    def test_segments_unlinked_when_run_fails(self, monkeypatch, tmp_path):
        from repro.sim import runner as runner_mod

        exports = []
        original = runner_mod.export_session_artifacts

        def tracking(*args, **kwargs):
            export = original(*args, **kwargs)
            exports.append(_segment_names(export))
            return export

        monkeypatch.setattr(runner_mod, "export_session_artifacts", tracking)

        class ExplodingExecutor:
            workers = 2

            def map(self, fn, tasks):
                raise RuntimeError("simulated BrokenProcessPool salvage failure")

        monkeypatch.setattr(
            runner_mod, "get_executor", lambda *a, **k: ExplodingExecutor()
        )
        with pytest.raises(RuntimeError, match="salvage failure"):
            run_replications(
                fat_tree(2),
                FacebookTrafficModel(),
                _tiny_config(),
                {"nomig": NoMigrationPolicy},
                workers=2,
                resilience=ResilienceConfig(),
            )
        assert exports
        for names in exports:
            _assert_unlinked(names)
