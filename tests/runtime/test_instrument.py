import pytest

from repro.runtime import instrument
from repro.runtime.cache import ComputeCache, get_compute_cache, set_compute_cache
from repro.utils.timing import Timer, named_timers


@pytest.fixture(autouse=True)
def _clean_instrumentation():
    instrument.reset()
    yield
    instrument.reset()


class Owner:
    """A weakref-able cache owner (plain ``object()`` is not)."""


class TestCounters:
    def test_count_accumulates(self):
        instrument.count("x")
        instrument.count("x", 4)
        assert instrument.counters() == {"x": 5}

    def test_reset_zeroes_everything(self):
        instrument.count("x")
        with Timer.timed("phase"):
            pass
        get_compute_cache().get_or_compute(Owner(), "k", lambda: 1)
        instrument.reset()
        assert instrument.counters() == {}
        assert named_timers() == {}
        assert get_compute_cache().misses == 0


class TestSnapshots:
    def test_snapshot_folds_cache_stats(self):
        cache = ComputeCache()
        previous = set_compute_cache(cache)
        try:
            owner = Owner()
            cache.get_or_compute(owner, "k", lambda: 1)
            cache.get_or_compute(owner, "k", lambda: 1)
            snap = instrument.snapshot()
        finally:
            set_compute_cache(previous)
        assert snap["counters"]["cache_hits"] == 1
        assert snap["counters"]["cache_misses"] == 1

    def test_delta_and_merge_round_trip(self):
        before = instrument.snapshot()
        instrument.count("solves", 3)
        with Timer.timed("phase"):
            pass
        delta = instrument.snapshot_delta(instrument.snapshot(), before)
        assert delta["counters"]["solves"] == 3
        assert delta["timers"]["phase"][1] == 1

        instrument.reset()
        instrument.merge_snapshot(delta)
        assert instrument.counters()["solves"] == 3
        assert named_timers()["phase"].total == pytest.approx(
            delta["timers"]["phase"][0]
        )

    def test_delta_omits_unchanged(self):
        instrument.count("stable")
        before = instrument.snapshot()
        delta = instrument.snapshot_delta(instrument.snapshot(), before)
        assert "stable" not in delta["counters"]
        assert delta["timers"] == {}


class TestReport:
    def test_report_structure(self):
        instrument.count("dp_solves", 2)
        with Timer.timed("tasks"):
            pass
        rep = instrument.report(workers=2, elapsed=0.5)
        assert rep["workers"] == 2
        assert rep["wall_seconds"] == 0.5
        assert rep["counters"]["dp_solves"] == 2
        assert "cache_hits" not in rep["counters"]  # folded into rep["cache"]
        assert set(rep["cache"]) >= {"hits", "misses", "hit_rate", "entries"}
        assert rep["timers"]["tasks"]["laps"] == 1
        if "speedup" in rep:
            assert rep["speedup"] == pytest.approx(rep["task_seconds"] / 0.5)

    def test_format_report_mentions_key_signals(self):
        instrument.count("dp_solves", 2)
        with Timer.timed("tasks"):
            pass
        text = instrument.format_report(instrument.report(workers=2, elapsed=0.5))
        assert "runtime profile:" in text
        assert "workers" in text
        assert "hit rate" in text
        assert "dp_solves=2" in text
        assert "tasks" in text
