import gc

import pytest

from repro.errors import ReproError
from repro.runtime.cache import ComputeCache, get_compute_cache, set_compute_cache


class Owner:
    """A plain weakref-able owner object."""


class TestGetOrCompute:
    def test_computes_on_miss_and_serves_hits(self):
        cache = ComputeCache()
        owner = Owner()
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert cache.get_or_compute(owner, "k", compute) == 42
        assert cache.get_or_compute(owner, "k", compute) == 42
        assert len(calls) == 1
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_distinct_keys_distinct_entries(self):
        cache = ComputeCache()
        owner = Owner()
        assert cache.get_or_compute(owner, "a", lambda: 1) == 1
        assert cache.get_or_compute(owner, "b", lambda: 2) == 2
        assert len(cache) == 2
        assert cache.owner_entries(owner) == 2

    def test_distinct_owners_do_not_collide(self):
        cache = ComputeCache()
        a, b = Owner(), Owner()
        cache.get_or_compute(a, "k", lambda: "a-value")
        assert cache.get_or_compute(b, "k", lambda: "b-value") == "b-value"
        assert cache.num_owners == 2


class TestBounds:
    def test_lru_eviction_at_capacity(self):
        cache = ComputeCache(max_entries=3)
        owner = Owner()
        for i in range(5):
            cache.get_or_compute(owner, i, lambda i=i: i)
        assert len(cache) == 3
        assert cache.evictions == 2
        # oldest two were evicted: re-asking recomputes (miss), newest hit
        misses = cache.misses
        cache.get_or_compute(owner, 0, lambda: 0)
        assert cache.misses == misses + 1
        hits = cache.hits
        cache.get_or_compute(owner, 4, lambda: 4)
        assert cache.hits == hits + 1

    def test_recent_use_protects_from_eviction(self):
        cache = ComputeCache(max_entries=2)
        owner = Owner()
        cache.get_or_compute(owner, "a", lambda: 1)
        cache.get_or_compute(owner, "b", lambda: 2)
        cache.get_or_compute(owner, "a", lambda: 1)  # refresh "a"
        cache.get_or_compute(owner, "c", lambda: 3)  # evicts "b", not "a"
        hits = cache.hits
        cache.get_or_compute(owner, "a", lambda: 1)
        assert cache.hits == hits + 1

    def test_invalid_bound_rejected(self):
        with pytest.raises(ReproError):
            ComputeCache(max_entries=0)


class TestWeakOwnership:
    def test_entries_die_with_owner(self):
        cache = ComputeCache()
        owner = Owner()
        cache.get_or_compute(owner, "k", lambda: 1)
        assert cache.num_owners == 1
        del owner
        gc.collect()
        assert cache.num_owners == 0
        assert len(cache) == 0

    def test_dead_owner_not_counted_as_eviction(self):
        cache = ComputeCache(max_entries=2)
        owner = Owner()
        cache.get_or_compute(owner, "k", lambda: 1)
        del owner
        gc.collect()
        survivor = Owner()
        for i in range(3):
            cache.get_or_compute(survivor, i, lambda i=i: i)
        # the dead owner's stale recency slot is skipped silently
        assert cache.evictions == 1


class TestMaintenance:
    def test_clear_drops_entries_keeps_counters(self):
        cache = ComputeCache()
        owner = Owner()
        cache.get_or_compute(owner, "k", lambda: 1)
        cache.get_or_compute(owner, "k", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1 and cache.misses == 1
        cache.reset_stats()
        assert cache.hits == 0 and cache.misses == 0 and cache.evictions == 0

    def test_stats_dict(self):
        cache = ComputeCache(max_entries=7)
        owner = Owner()
        cache.get_or_compute(owner, "k", lambda: 1)
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["owners"] == 1
        assert stats["max_entries"] == 7


class TestGlobalCache:
    def test_default_cache_is_process_global(self):
        assert get_compute_cache() is get_compute_cache()

    def test_set_compute_cache_swaps_and_returns_previous(self):
        fresh = ComputeCache()
        previous = set_compute_cache(fresh)
        try:
            assert get_compute_cache() is fresh
        finally:
            assert set_compute_cache(previous) is fresh

    def test_set_compute_cache_type_checked(self):
        with pytest.raises(ReproError):
            set_compute_cache(object())


class TestDependencyEpochs:
    def test_epoch_defaults_to_zero_and_bump_is_monotone(self):
        cache = ComputeCache()
        assert cache.epoch("strolls") == 0
        assert cache.bump("strolls") == 1
        assert cache.bump("strolls") == 2
        assert cache.epoch("strolls") == 2
        assert cache.epoch("other") == 0

    def test_bump_orphans_versioned_entries(self):
        cache = ComputeCache()
        owner = Owner()
        calls = []

        def compute():
            calls.append(1)
            return len(calls)

        key = "artifact"
        assert cache.get_or_compute_versioned(
            owner, key, compute, depends_on=("strolls",)
        ) == 1
        assert cache.get_or_compute_versioned(
            owner, key, compute, depends_on=("strolls",)
        ) == 1
        cache.bump("strolls")
        assert cache.get_or_compute_versioned(
            owner, key, compute, depends_on=("strolls",)
        ) == 2

    def test_unrelated_epoch_does_not_invalidate(self):
        cache = ComputeCache()
        owner = Owner()
        cache.get_or_compute_versioned(owner, "k", lambda: 1, depends_on=("apsp",))
        cache.bump("rates")
        hits_before = cache.hits
        cache.get_or_compute_versioned(owner, "k", lambda: 2, depends_on=("apsp",))
        assert cache.hits == hits_before + 1

    def test_no_depends_on_is_plain_key(self):
        cache = ComputeCache()
        owner = Owner()
        cache.get_or_compute_versioned(owner, "k", lambda: 1)
        assert cache.get_or_compute(owner, "k", lambda: 2) == 1

    def test_epochs_survive_clear(self):
        # a cleared cache must not resurrect entries stamped pre-clear
        cache = ComputeCache()
        cache.bump("strolls")
        cache.clear()
        assert cache.epoch("strolls") == 1
        assert cache.stats()["epochs"] == {
            "strolls": {"epoch": 1, "hits": 0, "misses": 0, "invalidations": 1}
        }


class TestSharedEntries:
    def test_shared_entry_adopted_across_callers(self):
        cache = ComputeCache()
        calls = []

        def compute():
            calls.append(1)
            return "table"

        assert cache.get_or_compute_shared("sha:abc", compute) == "table"
        assert cache.get_or_compute_shared("sha:abc", compute) == "table"
        assert len(calls) == 1
        assert cache.num_shared_entries == 1

    def test_has_shared_respects_epochs(self):
        cache = ComputeCache()
        assert not cache.has_shared("sha:abc", depends_on=("strolls",))
        cache.get_or_compute_shared("sha:abc", lambda: 1, depends_on=("strolls",))
        assert cache.has_shared("sha:abc", depends_on=("strolls",))
        cache.bump("strolls")
        assert not cache.has_shared("sha:abc", depends_on=("strolls",))

    def test_anchor_is_not_a_visible_owner(self):
        cache = ComputeCache()
        cache.get_or_compute_shared("sha:abc", lambda: 1)
        assert cache.num_owners == 0
        assert cache.stats()["shared_entries"] == 1
        owner = Owner()
        cache.get_or_compute(owner, "k", lambda: 2)
        assert cache.num_owners == 1

    def test_shared_entries_obey_lru_bound(self):
        cache = ComputeCache(max_entries=2)
        for i in range(4):
            cache.get_or_compute_shared(f"sha:{i}", lambda i=i: i)
        assert cache.num_shared_entries == 2
        assert cache.evictions == 2
