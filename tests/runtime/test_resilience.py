"""The fault-tolerant executor: retries, timeouts, salvage, resume, chaos.

The central claim under test is the determinism argument of
:mod:`repro.runtime.resilience`: retries, worker deaths, journal resumes
and injected chaos may change *when* work happens, but never *what* any
task computes — so every recovered run is bit-identical to a fault-free
serial one.
"""

import os
import time

import pytest

from repro.errors import ReproError, TaskError
from repro.runtime import instrument
from repro.runtime.executor import ChaosExecutor, ParallelExecutor, SerialExecutor
from repro.runtime.journal import Journal
from repro.runtime.resilience import (
    ChaosConfig,
    ResilienceConfig,
    TaskFailure,
    backoff_delay,
    drain_failures,
    get_resilience,
    use_resilience,
)

NO_BACKOFF = dict(backoff_base=0.0)


def square(x):
    return x * x


class FailFirstAttempts:
    """Picklable task fn that fails deterministically on early attempts."""

    accepts_attempt = True

    def __init__(self, failures: int, exc: type = ValueError) -> None:
        self.failures = failures
        self.exc = exc

    def __call__(self, task, attempt=0):
        if attempt < self.failures:
            raise self.exc(f"transient failure of task {task}, attempt {attempt}")
        return task * 10


def die_once(task):
    """Hard-kill the worker the first time each task runs (marker file)."""
    value, marker = task
    if not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(13)
    return value * 2


def maybe_hang(task):
    value, hang_seconds = task
    if hang_seconds:
        time.sleep(hang_seconds)
    return value + 100


class TestResilienceConfig:
    def test_defaults_are_passthrough(self):
        config = ResilienceConfig()
        assert config.max_retries == 0
        assert config.task_timeout is None
        assert config.on_failure == "fail"
        assert config.journal is None and config.chaos is None

    def test_validation(self):
        with pytest.raises(ReproError):
            ResilienceConfig(max_retries=-1)
        with pytest.raises(ReproError):
            ResilienceConfig(task_timeout=0)
        with pytest.raises(ReproError):
            ResilienceConfig(on_failure="explode")
        with pytest.raises(ReproError):
            ChaosConfig(crash_rate=0.8, kill_rate=0.5)

    def test_use_resilience_restores_previous(self):
        outer = get_resilience()
        config = ResilienceConfig(max_retries=3)
        with use_resilience(config):
            assert get_resilience() is config
        assert get_resilience() is outer

    def test_scoped_copy(self):
        scoped = ResilienceConfig(max_retries=2).scoped("fig@smoke")
        assert scoped.scope == "fig@smoke" and scoped.max_retries == 2


class TestBackoffDeterminism:
    def test_same_inputs_same_delay(self):
        config = ResilienceConfig(backoff_base=0.1, scope="s")
        assert backoff_delay(config, 3, 1) == backoff_delay(config, 3, 1)

    def test_jitter_desynchronizes_tasks(self):
        config = ResilienceConfig(backoff_base=0.1, scope="s")
        delays = {backoff_delay(config, index, 1) for index in range(8)}
        assert len(delays) == 8

    def test_exponential_growth_and_cap(self):
        config = ResilienceConfig(backoff_base=0.1, backoff_cap=0.4, scope="s")
        # jitter is in [0.5x, 1.0x), so ranges of consecutive attempts
        # stay ordered at these parameters
        assert backoff_delay(config, 0, 1) < backoff_delay(config, 0, 3)
        assert backoff_delay(config, 0, 10) <= 0.4

    def test_zero_base_disables_waiting(self):
        assert backoff_delay(ResilienceConfig(backoff_base=0.0), 0, 5) == 0.0


class TestSerialRetries:
    def test_retry_recovers(self):
        instrument.reset()
        config = ResilienceConfig(max_retries=2, **NO_BACKOFF)
        results = SerialExecutor(config).map(FailFirstAttempts(2), range(4))
        assert results == [0, 10, 20, 30]
        assert instrument.counters()["task_retries"] == 8

    def test_budget_exhausted_raises_task_error(self):
        config = ResilienceConfig(max_retries=1, **NO_BACKOFF)
        with pytest.raises(TaskError) as excinfo:
            SerialExecutor(config).map(FailFirstAttempts(5), range(3))
        error = excinfo.value
        assert error.index == 0 and error.attempts == 2
        assert "ValueError" in error.worker_traceback
        assert isinstance(error, ReproError)

    def test_skip_policy_leaves_structured_placeholder(self):
        instrument.reset()
        drain_failures()
        config = ResilienceConfig(max_retries=0, on_failure="skip", **NO_BACKOFF)
        fn = FailFirstAttempts(99)
        results = SerialExecutor(config).map(fn, range(3))
        assert all(isinstance(result, TaskFailure) for result in results)
        assert [failure.index for failure in results] == [0, 1, 2]
        assert "ValueError" in results[0].traceback
        assert instrument.counters()["tasks_skipped"] == 3
        recorded = drain_failures()
        assert [failure.index for failure in recorded] == [0, 1, 2]
        assert drain_failures() == []  # drained


class TestParallelRetries:
    def test_retry_recovers_bit_identical(self):
        config = ResilienceConfig(max_retries=3, **NO_BACKOFF)
        flaky = ParallelExecutor(2, config).map(FailFirstAttempts(2), range(6))
        clean = SerialExecutor().map(FailFirstAttempts(0), range(6))
        assert flaky == clean

    def test_worker_traceback_crosses_process_boundary(self):
        config = ResilienceConfig(max_retries=0, **NO_BACKOFF)
        with pytest.raises(TaskError) as excinfo:
            ParallelExecutor(2, config).map(FailFirstAttempts(9), range(4))
        assert "transient failure of task" in excinfo.value.worker_traceback
        assert "ValueError" in excinfo.value.worker_traceback

    def test_skip_policy_preserves_order(self):
        drain_failures()
        config = ResilienceConfig(max_retries=0, on_failure="skip", **NO_BACKOFF)

        results = ParallelExecutor(2, config).map(_fail_on_evens, range(6))
        for index, result in enumerate(results):
            if index % 2 == 0:
                assert isinstance(result, TaskFailure) and result.index == index
            else:
                assert result == index * 100
        drain_failures()


def _fail_on_evens(x):
    if x % 2 == 0:
        raise RuntimeError(f"even task {x}")
    return x * 100


class TestBrokenPoolSalvage:
    def test_completed_results_survive_worker_death(self, tmp_path):
        instrument.reset()
        config = ResilienceConfig(max_retries=2, **NO_BACKOFF)
        tasks = [(i, str(tmp_path / f"marker-{i}")) for i in range(6)]
        results = ParallelExecutor(2, config).map(die_once, tasks)
        assert results == [i * 2 for i in range(6)]
        counters = instrument.counters()
        assert counters["pool_restarts"] >= 1
        assert counters["task_retries"] >= 1

    def test_persistent_killer_exhausts_budget(self, tmp_path):
        # no marker is ever written readable -> every attempt dies; the
        # budget must bound the pool-restart loop and surface a TaskError
        config = ResilienceConfig(max_retries=1, **NO_BACKOFF)
        with pytest.raises(TaskError) as excinfo:
            ParallelExecutor(2, config).map(_always_die, [1])
        assert "BrokenProcessPool" in str(excinfo.value)

    def test_persistent_killer_skippable(self):
        drain_failures()
        config = ResilienceConfig(max_retries=1, on_failure="skip", **NO_BACKOFF)
        results = ParallelExecutor(2, config).map(_always_die, [1, 2])
        assert all(isinstance(result, TaskFailure) for result in results)
        drain_failures()


def _always_die(task):
    os._exit(29)


class TestTaskTimeout:
    def test_hung_task_killed_and_skipped(self):
        drain_failures()
        instrument.reset()
        config = ResilienceConfig(
            max_retries=0, task_timeout=1.0, on_failure="skip", **NO_BACKOFF
        )
        tasks = [(1, 0), (2, 30), (3, 0), (4, 0)]
        start = time.monotonic()
        results = ParallelExecutor(2, config).map(maybe_hang, tasks)
        elapsed = time.monotonic() - start
        assert elapsed < 20  # nowhere near the 30 s hang
        assert results[0] == 101 and results[2] == 103 and results[3] == 104
        assert isinstance(results[1], TaskFailure) and results[1].timeout
        assert instrument.counters()["task_timeouts"] >= 1
        drain_failures()

    def test_timeout_failure_raises_by_default(self):
        config = ResilienceConfig(max_retries=0, task_timeout=0.5, **NO_BACKOFF)
        with pytest.raises(TaskError):
            ParallelExecutor(2, config).map(maybe_hang, [(1, 30)])


class TestJournalResume:
    def test_resume_skips_finished_tasks_bit_identically(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        config = ResilienceConfig(journal=Journal(path), scope="demo")
        first = SerialExecutor(config).map(square, range(5))
        config.journal.close()

        instrument.reset()
        resumed_config = ResilienceConfig(journal=Journal(path), scope="demo")
        resumed = ParallelExecutor(2, resumed_config).map(square, range(5))
        resumed_config.journal.close()
        assert resumed == first == [0, 1, 4, 9, 16]
        assert instrument.counters()["journal_hits"] == 5

    def test_partial_journal_runs_only_the_rest(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        config = ResilienceConfig(journal=Journal(path), scope="demo")
        SerialExecutor(config).map(square, range(3))
        config.journal.close()

        # truncate to one record: simulates a run killed after one task
        lines = path.read_text().splitlines(keepends=True)
        path.write_text(lines[0])

        instrument.reset()
        resumed_config = ResilienceConfig(journal=Journal(path), scope="demo")
        resumed = SerialExecutor(resumed_config).map(square, range(5))
        resumed_config.journal.close()
        assert resumed == [0, 1, 4, 9, 16]
        assert instrument.counters()["journal_hits"] == 1
        assert len(Journal(path)) == 5  # the rest got journalled too

    def test_different_scope_never_resumes(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        config = ResilienceConfig(journal=Journal(path), scope="fig@smoke")
        SerialExecutor(config).map(square, range(3))
        config.journal.close()

        instrument.reset()
        other = ResilienceConfig(journal=Journal(path), scope="fig@paper")
        SerialExecutor(other).map(square, range(3))
        other.journal.close()
        assert instrument.counters().get("journal_hits", 0) == 0

    def test_skipped_failures_are_not_journalled(self, tmp_path):
        drain_failures()
        path = tmp_path / "journal.jsonl"
        config = ResilienceConfig(
            journal=Journal(path), scope="demo", on_failure="skip", **NO_BACKOFF
        )
        SerialExecutor(config).map(_fail_on_evens, range(4))
        config.journal.close()
        assert len(Journal(path)) == 2  # only the odd (successful) tasks
        drain_failures()


class TestChaosExecutor:
    CHAOS = ChaosConfig(
        seed=11,
        crash_rate=0.15,
        delay_rate=0.08,
        timeout_rate=0.07,
        delay_seconds=0.001,
    )

    def test_results_bit_identical_to_fault_free_serial(self):
        clean = SerialExecutor(ResilienceConfig()).map(square, range(30))
        config = ResilienceConfig(max_retries=3, **NO_BACKOFF)
        for inner in (SerialExecutor(config), ParallelExecutor(2, config)):
            chaotic = ChaosExecutor(inner, self.CHAOS).map(square, range(30))
            assert chaotic == clean

    def test_fault_schedule_is_seeded_and_deterministic(self):
        config = ResilienceConfig(max_retries=0, on_failure="skip", **NO_BACKOFF)
        first = ChaosExecutor(SerialExecutor(config), self.CHAOS).map(
            square, range(30)
        )
        drain_failures()
        second = ChaosExecutor(SerialExecutor(config), self.CHAOS).map(
            square, range(30)
        )
        drain_failures()
        failed_first = [r.index for r in first if isinstance(r, TaskFailure)]
        failed_second = [r.index for r in second if isinstance(r, TaskFailure)]
        assert failed_first == failed_second != []
        # injection is task-content-keyed and rate-bounded
        assert 0 < len(failed_first) <= 0.3 * 30 + 5

    def test_all_crash_rate_hits_every_task_once(self):
        instrument.reset()
        chaos = ChaosConfig(seed=1, crash_rate=1.0)
        config = ResilienceConfig(max_retries=1, **NO_BACKOFF)
        results = ChaosExecutor(SerialExecutor(config), chaos).map(square, range(5))
        assert results == [0, 1, 4, 9, 16]
        assert instrument.counters()["task_retries"] == 5

    def test_injected_timeouts_counted_as_timeouts(self):
        instrument.reset()
        chaos = ChaosConfig(seed=1, timeout_rate=1.0)
        config = ResilienceConfig(max_retries=1, **NO_BACKOFF)
        results = ChaosExecutor(SerialExecutor(config), chaos).map(square, range(4))
        assert results == [0, 1, 4, 9]
        assert instrument.counters()["task_timeouts"] == 4

    def test_injected_kills_exercise_pool_salvage(self):
        instrument.reset()
        chaos = ChaosConfig(seed=2, kill_rate=0.3)
        config = ResilienceConfig(max_retries=4, **NO_BACKOFF)
        results = ChaosExecutor(ParallelExecutor(2, config), chaos).map(
            square, range(15)
        )
        assert results == [x * x for x in range(15)]
        assert instrument.counters()["pool_restarts"] >= 1

    def test_kill_degrades_to_crash_in_parent_process(self):
        # a kill drawn under a serial executor must not os._exit the test
        chaos = ChaosConfig(seed=2, kill_rate=1.0)
        config = ResilienceConfig(max_retries=1, **NO_BACKOFF)
        results = ChaosExecutor(SerialExecutor(config), chaos).map(square, range(3))
        assert results == [0, 1, 4]

    def test_active_config_chaos_applies_without_explicit_wrapper(self):
        from repro.runtime.executor import get_executor

        config = ResilienceConfig(
            max_retries=3, chaos=self.CHAOS, **NO_BACKOFF
        )
        with use_resilience(config):
            results = get_executor(2).map(square, range(12))
        assert results == [x * x for x in range(12)]


class TestReportIntegration:
    def test_resilience_counters_grouped_in_report(self):
        instrument.reset()
        config = ResilienceConfig(max_retries=2, **NO_BACKOFF)
        SerialExecutor(config).map(FailFirstAttempts(1), range(3))
        report = instrument.report(workers=1, elapsed=0.5)
        assert report["resilience"]["retries"] == 3
        assert report["resilience"]["skipped"] == 0
        assert "task_retries" not in report["counters"]

    def test_format_report_renders_resilience_and_failures(self):
        report = {
            "resilience": {
                "retries": 2,
                "timeouts": 1,
                "pool_restarts": 1,
                "skipped": 1,
                "resumed": 4,
            },
            "failures": [
                {"index": 3, "attempts": 2, "error": "ValueError('x')",
                 "timeout": False, "traceback": ""},
            ],
        }
        text = instrument.format_report(report)
        assert "resilience:" in text
        assert "2 retries" in text and "4 resumed from journal" in text
        assert "task 3" in text and "ValueError" in text

    def test_quiet_runs_print_no_resilience_line(self):
        instrument.reset()
        SerialExecutor().map(square, range(3))
        text = instrument.format_report(instrument.report(workers=1, elapsed=0.1))
        assert "resilience:" not in text
