import pytest

from repro.errors import ReproError
from repro.runtime import instrument
from repro.runtime.executor import (
    ParallelExecutor,
    SerialExecutor,
    get_executor,
    map_tasks,
)


def square(x):
    return x * x


def count_and_square(x):
    instrument.count("squares")
    return x * x


class TestGetExecutor:
    def test_serial_for_one_or_none(self):
        assert isinstance(get_executor(1), SerialExecutor)
        assert isinstance(get_executor(None), SerialExecutor)

    def test_parallel_for_many(self):
        executor = get_executor(3)
        assert isinstance(executor, ParallelExecutor)
        assert executor.workers == 3

    def test_invalid_workers_rejected(self):
        with pytest.raises(ReproError):
            get_executor(0)
        with pytest.raises(ReproError):
            get_executor(-2)

    def test_parallel_executor_needs_two(self):
        with pytest.raises(ReproError):
            ParallelExecutor(1)


class TestOrdering:
    def test_serial_preserves_order(self):
        assert SerialExecutor().map(square, range(6)) == [0, 1, 4, 9, 16, 25]

    def test_parallel_preserves_order(self):
        assert ParallelExecutor(2).map(square, range(6)) == [0, 1, 4, 9, 16, 25]

    def test_serial_equals_parallel(self):
        tasks = list(range(10))
        assert SerialExecutor().map(square, tasks) == ParallelExecutor(3).map(
            square, tasks
        )

    def test_empty_tasks(self):
        assert SerialExecutor().map(square, []) == []
        assert ParallelExecutor(2).map(square, []) == []

    def test_map_tasks_convenience(self):
        assert map_tasks(square, [2, 3], workers=1) == [4, 9]
        assert map_tasks(square, [2, 3], workers=2) == [4, 9]


class TestInstrumentationMerge:
    def test_serial_counts_locally(self):
        instrument.reset()
        SerialExecutor().map(count_and_square, range(4))
        assert instrument.counters()["squares"] == 4

    def test_parallel_counts_merge_back(self):
        instrument.reset()
        ParallelExecutor(2).map(count_and_square, range(4))
        assert instrument.counters()["squares"] == 4

    def test_task_timer_recorded_both_paths(self):
        from repro.utils.timing import named_timers

        instrument.reset()
        SerialExecutor().map(square, range(3))
        assert len(named_timers()["tasks"].laps) == 3
        instrument.reset()
        ParallelExecutor(2).map(square, range(3))
        assert named_timers()["tasks"].total > 0.0
