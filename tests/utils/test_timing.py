import time

import pytest

from repro.errors import ReproError
from repro.utils.timing import Timer, named_timers, reset_named_timers


class TestTimer:
    def test_accumulates_laps(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        with timer:
            time.sleep(0.01)
        assert len(timer.laps) == 2
        assert timer.total >= 0.02
        assert timer.total == sum(timer.laps)

    def test_last_lap(self):
        timer = Timer()
        assert timer.last == 0.0
        with timer:
            pass
        assert timer.last == timer.laps[-1]

    def test_exit_without_enter_raises(self):
        timer = Timer()
        with pytest.raises(ReproError):
            timer.__exit__(None, None, None)

    def test_nested_entry_records_one_lap(self):
        timer = Timer()
        with timer:
            with timer:
                time.sleep(0.01)
        assert len(timer.laps) == 1
        assert timer.total >= 0.01

    def test_exception_still_records_lap(self):
        timer = Timer()
        with pytest.raises(RuntimeError):
            with timer:
                raise RuntimeError("boom")
        assert len(timer.laps) == 1


class TestNamedTimers:
    def test_timed_returns_shared_instance(self):
        reset_named_timers()
        try:
            assert Timer.timed("phase") is Timer.timed("phase")
            assert Timer.timed("phase") is not Timer.timed("other")
        finally:
            reset_named_timers()

    def test_timed_accumulates_in_registry(self):
        reset_named_timers()
        try:
            with Timer.timed("phase"):
                time.sleep(0.01)
            registry = named_timers()
            assert registry["phase"].total >= 0.01
            assert len(registry["phase"].laps) == 1
        finally:
            reset_named_timers()

    def test_reset_clears_registry(self):
        with Timer.timed("phase"):
            pass
        reset_named_timers()
        assert named_timers() == {}
