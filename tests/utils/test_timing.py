import time

from repro.utils.timing import Timer


class TestTimer:
    def test_accumulates_laps(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        with timer:
            time.sleep(0.01)
        assert len(timer.laps) == 2
        assert timer.total >= 0.02
        assert timer.total == sum(timer.laps)

    def test_last_lap(self):
        timer = Timer()
        assert timer.last == 0.0
        with timer:
            pass
        assert timer.last == timer.laps[-1]
