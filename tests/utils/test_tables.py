import pytest

from repro.utils.tables import ascii_table, format_float, rows_to_table


class TestFormatFloat:
    def test_none_is_dash(self):
        assert format_float(None) == "-"

    def test_nan(self):
        assert format_float(float("nan")) == "nan"

    def test_large_numbers_compact(self):
        assert "e" in format_float(1.23456e9) or "E" in format_float(1.23456e9)

    def test_regular_float(self):
        assert format_float(3.14159, precision=3) == "3.14"

    def test_str_passthrough(self):
        assert format_float("abc") == "abc"


class TestAsciiTable:
    def test_renders_all_cells(self):
        out = ascii_table(["x", "cost"], [[1, 2.5], [2, 7.25]], title="demo")
        assert "demo" in out
        assert "cost" in out
        assert "7.25" in out

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            ascii_table(["a", "b"], [[1]])

    def test_column_alignment(self):
        out = ascii_table(["name"], [["a"], ["longer"]])
        lines = [l for l in out.splitlines() if l.startswith("|")]
        assert len({len(l) for l in lines}) == 1  # all rows equal width


class TestRowsToTable:
    def test_uses_first_row_keys(self):
        out = rows_to_table([{"n": 3, "cost": 10.0}, {"n": 5, "cost": 20.0}])
        header = [l for l in out.splitlines() if "n" in l][0]
        assert "cost" in header

    def test_explicit_columns(self):
        out = rows_to_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a |" not in out

    def test_missing_cell_is_dash(self):
        out = rows_to_table([{"a": 1, "b": 2}, {"a": 3}], columns=["a", "b"])
        assert "-" in out

    def test_empty_rows(self):
        assert rows_to_table([], title="empty") == "empty"
