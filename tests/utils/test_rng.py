import numpy as np
import pytest

from repro.utils.rng import RngStream, as_generator, spawn_rngs


class TestSpawnRngs:
    def test_deterministic(self):
        a = spawn_rngs(7, 3)
        b = spawn_rngs(7, 3)
        for ga, gb in zip(a, b):
            assert np.array_equal(ga.random(5), gb.random(5))

    def test_streams_differ(self):
        a, b = spawn_rngs(7, 2)
        assert not np.array_equal(a.random(8), b.random(8))

    def test_seed_changes_streams(self):
        a = spawn_rngs(7, 1)[0]
        b = spawn_rngs(8, 1)[0]
        assert not np.array_equal(a.random(8), b.random(8))

    def test_count_zero(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        assert np.array_equal(as_generator(3).random(4), as_generator(3).random(4))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestRngStream:
    def test_restart_reproduces(self):
        stream = RngStream(seed=5, name="test")
        first = stream.rng.random(6)
        stream.restart()
        assert np.array_equal(stream.rng.random(6), first)

    def test_fork_is_independent(self):
        stream = RngStream(seed=5, name="test")
        fork = stream.fork("child")
        assert fork.name == "test/child"
        assert not np.array_equal(stream.rng.random(6), fork.rng.random(6))

    def test_same_name_same_sequence(self):
        a = RngStream(seed=5, name="x")
        b = RngStream(seed=5, name="x")
        assert np.array_equal(a.rng.random(6), b.rng.random(6))
