import numpy as np
import pytest

from repro.utils.rng import (
    RngStream,
    as_generator,
    spawn_rngs,
    spawn_seed_sequences,
    spawn_seeds,
)


class TestSpawnRngs:
    def test_deterministic(self):
        a = spawn_rngs(7, 3)
        b = spawn_rngs(7, 3)
        for ga, gb in zip(a, b):
            assert np.array_equal(ga.random(5), gb.random(5))

    def test_streams_differ(self):
        a, b = spawn_rngs(7, 2)
        assert not np.array_equal(a.random(8), b.random(8))

    def test_seed_changes_streams(self):
        a = spawn_rngs(7, 1)[0]
        b = spawn_rngs(8, 1)[0]
        assert not np.array_equal(a.random(8), b.random(8))

    def test_count_zero(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestSpawnSeedSequences:
    def test_deterministic(self):
        a = spawn_seed_sequences(7, 3)
        b = spawn_seed_sequences(7, 3)
        assert [s.generate_state(2).tolist() for s in a] == [
            s.generate_state(2).tolist() for s in b
        ]

    def test_accepts_seed_sequence_root(self):
        root = np.random.SeedSequence(7)
        children = spawn_seed_sequences(root, 2)
        assert len(children) == 2

    def test_grandchildren_differ_from_children(self):
        # spawning twice from the SAME root repeats children — independent
        # purposes must spawn from distinct children, which is what the
        # replication runner does
        child = spawn_seed_sequences(7, 1)[0]
        grandchildren = spawn_seed_sequences(child, 2)
        repeat = spawn_seed_sequences(7, 2)
        states = {tuple(s.generate_state(2).tolist()) for s in grandchildren + repeat}
        assert len(states) == 4

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seed_sequences(1, -1)


class TestSpawnSeeds:
    def test_deterministic_ints(self):
        a = spawn_seeds(11, 4)
        assert a == spawn_seeds(11, 4)
        assert all(isinstance(s, int) for s in a)

    def test_seeds_distinct(self):
        assert len(set(spawn_seeds(11, 16))) == 16

    def test_matches_spawn_rngs_streams(self):
        # an rng seeded from the child sequence and one seeded from the
        # collapsed int seed need not match, but both must be reproducible
        gens = spawn_rngs(11, 2)
        again = spawn_rngs(11, 2)
        for a, b in zip(gens, again):
            assert np.array_equal(a.random(4), b.random(4))


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        assert np.array_equal(as_generator(3).random(4), as_generator(3).random(4))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestRngStream:
    def test_restart_reproduces(self):
        stream = RngStream(seed=5, name="test")
        first = stream.rng.random(6)
        stream.restart()
        assert np.array_equal(stream.rng.random(6), first)

    def test_fork_is_independent(self):
        stream = RngStream(seed=5, name="test")
        fork = stream.fork("child")
        assert fork.name == "test/child"
        assert not np.array_equal(stream.rng.random(6), fork.rng.random(6))

    def test_same_name_same_sequence(self):
        a = RngStream(seed=5, name="x")
        b = RngStream(seed=5, name="x")
        assert np.array_equal(a.rng.random(6), b.rng.random(6))
