import numpy as np
import pytest

from repro.errors import ReproError
from repro.experiments.common import ExperimentResult
from repro.utils.plotting import series_chart, sparkline
from repro.utils.results_io import read_rows_csv, write_result_files, write_rows_csv


class TestSparkline:
    def test_monotone_series(self):
        spark = sparkline([1, 2, 3, 4])
        assert spark[0] == "▁"
        assert spark[-1] == "█"
        assert len(spark) == 4

    def test_constant_series_mid_height(self):
        spark = sparkline([5.0, 5.0, 5.0])
        assert len(set(spark)) == 1

    def test_nan_becomes_space(self):
        assert sparkline([1.0, float("nan"), 2.0])[1] == " "

    def test_all_nan(self):
        assert sparkline([float("nan")] * 3) == "   "

    def test_empty(self):
        assert sparkline([]) == ""


class TestSeriesChart:
    def test_labels_and_legends(self):
        chart = series_chart({"dp": [1, 2, 3], "steering": [2, 4, 6]}, x_labels=[3, 5, 7])
        assert "dp" in chart and "steering" in chart
        assert "3 .. 7" in chart
        assert "[1 .. 3]" in chart

    def test_empty(self):
        assert series_chart({}) == "(no series)"


class TestResultChart:
    def test_numeric_columns_only(self):
        result = ExperimentResult(
            experiment="demo",
            description="",
            rows=[
                {"n": 3, "cost": 10.0, "label": "a"},
                {"n": 5, "cost": 20.0, "label": "b"},
            ],
        )
        chart = result.to_chart()
        assert "cost" in chart
        assert "label" not in chart

    def test_none_cells_render_as_gaps(self):
        result = ExperimentResult(
            experiment="demo",
            description="",
            rows=[{"n": 1, "opt": 5.0}, {"n": 2, "opt": None}],
        )
        assert "opt" in result.to_chart()


class TestCsvRoundTrip:
    def test_round_trip_types(self, tmp_path):
        rows = [
            {"n": 3, "cost": 12.5, "ok": True, "note": "x"},
            {"n": 5, "cost": None, "ok": False, "note": ""},
        ]
        path = tmp_path / "rows.csv"
        write_rows_csv(path, rows)
        back = read_rows_csv(path)
        assert back[0]["n"] == 3
        assert back[0]["cost"] == 12.5
        assert back[0]["ok"] is True
        assert back[1]["cost"] is None
        assert back[1]["ok"] is False

    def test_union_of_keys(self, tmp_path):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        path = tmp_path / "rows.csv"
        write_rows_csv(path, rows)
        back = read_rows_csv(path)
        assert back[0]["b"] is None
        assert back[1]["b"] == 3

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            write_rows_csv(tmp_path / "x.csv", [])

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            read_rows_csv(tmp_path / "nope.csv")

    def test_write_result_files(self, tmp_path):
        result = ExperimentResult(
            experiment="demo", description="", rows=[{"x": 1}]
        )
        paths = write_result_files(result, tmp_path / "out")
        assert paths["csv"].exists()
        assert paths["json"].exists()
        assert read_rows_csv(paths["csv"]) == [{"x": 1}]
