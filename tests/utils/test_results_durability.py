"""``write_text_atomic``: atomic *and* durable, with a tolerant dir fsync."""

from __future__ import annotations

import os
import stat

import pytest

from repro.utils.results_io import write_text_atomic


class FsyncSpy:
    """Record every fsync, classified file-vs-directory, then do it."""

    def __init__(self, real):
        self.real = real
        self.files = 0
        self.directories = 0

    def __call__(self, descriptor):
        if stat.S_ISDIR(os.fstat(descriptor).st_mode):
            self.directories += 1
        else:
            self.files += 1
        self.real(descriptor)


class TestWriteTextAtomic:
    def test_round_trip(self, tmp_path):
        target = tmp_path / "deep" / "report.json"  # parents created
        returned = write_text_atomic(target, '{"ok": true}')
        assert returned == target
        assert target.read_text() == '{"ok": true}'

    def test_overwrites_without_tmp_leftovers(self, tmp_path):
        target = tmp_path / "report.json"
        write_text_atomic(target, "old")
        write_text_atomic(target, "new")
        assert target.read_text() == "new"
        assert [p.name for p in tmp_path.iterdir()] == ["report.json"]

    def test_fsyncs_temp_file_and_directory(self, tmp_path, monkeypatch):
        # durability discipline: the temp file's data is fsynced before
        # the rename, and the directory entry before *and* after it
        spy = FsyncSpy(os.fsync)
        monkeypatch.setattr(os, "fsync", spy)
        write_text_atomic(tmp_path / "report.json", "payload")
        assert spy.files >= 1
        assert spy.directories >= 2

    def test_directory_fsync_failure_degrades_not_fails(
        self, tmp_path, monkeypatch
    ):
        # FUSE/network mounts reject fsync on directory descriptors; the
        # write must still land (process-crash durability) instead of
        # erroring out of every checkpoint
        real = os.fsync

        def picky(descriptor):
            if stat.S_ISDIR(os.fstat(descriptor).st_mode):
                raise OSError("fsync: not supported on this mount")
            real(descriptor)

        monkeypatch.setattr(os, "fsync", picky)
        target = write_text_atomic(tmp_path / "report.json", "payload")
        assert target.read_text() == "payload"

    def test_failed_replace_preserves_old_content(self, tmp_path, monkeypatch):
        target = tmp_path / "report.json"
        write_text_atomic(target, "old")

        def explode(src, dst):
            raise OSError("simulated crash at the rename")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            write_text_atomic(target, "new")
        monkeypatch.undo()
        # old bytes intact, no temp debris for the next writer to trip on
        assert target.read_text() == "old"
        assert [p.name for p in tmp_path.iterdir()] == ["report.json"]
