import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.utils.stats import ConfidenceInterval, mean_ci, summarize_runs


class TestMeanCi:
    def test_constant_samples_zero_halfwidth(self):
        ci = mean_ci([4.0, 4.0, 4.0, 4.0])
        assert ci.mean == 4.0
        assert ci.halfwidth == 0.0

    def test_single_sample(self):
        ci = mean_ci([2.5])
        assert ci.mean == 2.5
        assert ci.halfwidth == 0.0
        assert ci.n == 1

    def test_matches_scipy_t_interval(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 2.0, size=20)
        ci = mean_ci(samples, confidence=0.95)
        low, high = scipy_stats.t.interval(
            0.95, df=19, loc=samples.mean(), scale=scipy_stats.sem(samples)
        )
        assert ci.low == pytest.approx(low)
        assert ci.high == pytest.approx(high)

    def test_wider_confidence_wider_interval(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert mean_ci(samples, 0.99).halfwidth > mean_ci(samples, 0.9).halfwidth

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            mean_ci(np.ones((2, 2)))

    def test_bounds(self):
        ci = ConfidenceInterval(mean=5.0, halfwidth=1.5, n=10)
        assert ci.low == 3.5
        assert ci.high == 6.5


class TestSummarizeRuns:
    def test_aggregates_per_key(self):
        runs = [{"cost": 10.0, "migs": 1.0}, {"cost": 14.0, "migs": 3.0}]
        out = summarize_runs(runs)
        assert set(out) == {"cost", "migs"}
        assert out["cost"].mean == 12.0
        assert out["migs"].mean == 2.0

    def test_mismatched_keys_rejected(self):
        with pytest.raises(ValueError, match="differ"):
            summarize_runs([{"a": 1.0}, {"b": 2.0}])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_runs([])
