import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InfeasibleError, SolverError
from repro.flow.mincostflow import Arc, min_cost_flow, solve_transportation


class TestArc:
    def test_negative_capacity_rejected(self):
        with pytest.raises(SolverError):
            Arc(0, 1, -1, 1.0)

    def test_nonfinite_cost_rejected(self):
        with pytest.raises(SolverError):
            Arc(0, 1, 1, float("inf"))


class TestMinCostFlow:
    def test_simple_two_path_network(self):
        # cheap path has capacity 1, the rest must take the dear path
        arcs = [Arc(0, 1, 1, 1.0), Arc(0, 1, 5, 10.0)]
        result = min_cost_flow(2, arcs, [3, -3])
        assert result.flows.tolist() == [1, 2]
        assert result.total_cost == pytest.approx(21.0)

    def test_multi_hop(self):
        arcs = [Arc(0, 1, 2, 1.0), Arc(1, 2, 2, 1.0), Arc(0, 2, 1, 5.0)]
        result = min_cost_flow(3, arcs, [3, 0, -3])
        assert result.total_cost == pytest.approx(2 * 2.0 + 5.0)

    def test_unbalanced_supplies_rejected(self):
        with pytest.raises(InfeasibleError, match="balance"):
            min_cost_flow(2, [Arc(0, 1, 1, 1.0)], [1, -2])

    def test_insufficient_capacity(self):
        with pytest.raises(InfeasibleError, match="route"):
            min_cost_flow(2, [Arc(0, 1, 1, 1.0)], [5, -5])

    def test_negative_costs_supported(self):
        arcs = [Arc(0, 1, 2, -3.0), Arc(0, 1, 2, 1.0)]
        result = min_cost_flow(2, arcs, [3, -3])
        assert result.flows.tolist() == [2, 1]
        assert result.total_cost == pytest.approx(-5.0)

    def test_zero_supply_no_flow(self):
        result = min_cost_flow(2, [Arc(0, 1, 5, 1.0)], [0, 0])
        assert result.total_cost == 0.0
        assert result.flows.tolist() == [0]

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_matches_networkx(self, seed):
        """Cross-check cost against networkx's min-cost-flow on random DAG-ish nets."""
        rng = np.random.default_rng(seed)
        num_nodes = int(rng.integers(4, 8))
        g = nx.DiGraph()
        g.add_nodes_from(range(num_nodes))
        arcs = []
        for u in range(num_nodes):
            for v in range(num_nodes):
                if u != v and rng.random() < 0.5:
                    cap = int(rng.integers(1, 5))
                    cost = float(rng.integers(0, 10))
                    arcs.append(Arc(u, v, cap, cost))
                    g.add_edge(u, v, capacity=cap, weight=int(cost))
        amount = int(rng.integers(1, 4))
        supplies = np.zeros(num_nodes, dtype=np.int64)
        supplies[0] = amount
        supplies[num_nodes - 1] = -amount
        g.nodes[0]["demand"] = -amount
        g.nodes[num_nodes - 1]["demand"] = amount
        try:
            expected = nx.min_cost_flow_cost(g)
        except nx.NetworkXUnfeasible:
            with pytest.raises(InfeasibleError):
                min_cost_flow(num_nodes, arcs, supplies)
            return
        result = min_cost_flow(num_nodes, arcs, supplies)
        assert result.total_cost == pytest.approx(expected)


class TestTransportation:
    def test_prefers_cheap_columns(self):
        cost = np.asarray([[1.0, 10.0], [10.0, 1.0]])
        assignment, total = solve_transportation(cost, [1, 1], [2, 2])
        assert assignment.tolist() == [[1, 0], [0, 1]]
        assert total == pytest.approx(2.0)

    def test_capacity_forces_spill(self):
        cost = np.asarray([[1.0, 5.0], [1.0, 5.0]])
        assignment, total = solve_transportation(cost, [1, 1], [1, 1])
        assert assignment.sum(axis=0).tolist() == [1, 1]
        assert total == pytest.approx(6.0)

    def test_infeasible_supply(self):
        with pytest.raises(InfeasibleError):
            solve_transportation(np.ones((2, 1)), [1, 1], [1])

    def test_row_supplies_respected(self):
        cost = np.asarray([[1.0, 2.0]])
        assignment, _ = solve_transportation(cost, [3], [2, 2])
        assert assignment.sum() == 3
        assert assignment[0, 0] == 2  # cheap column fills first

    def test_shape_validation(self):
        with pytest.raises(SolverError):
            solve_transportation(np.ones((2, 2)), [1], [1, 1])
        with pytest.raises(SolverError):
            solve_transportation(np.ones(3), [1], [1])
