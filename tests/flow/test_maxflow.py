import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.flow.maxflow import max_flow_min_cut


class TestMaxFlow:
    def test_simple_bottleneck(self):
        arcs = [(0, 1, 3.0), (1, 2, 2.0)]
        value, side = max_flow_min_cut(3, arcs, 0, 2)
        assert value == pytest.approx(2.0)
        assert side[0] and side[1] and not side[2]

    def test_parallel_paths(self):
        arcs = [(0, 1, 1.0), (1, 3, 1.0), (0, 2, 2.0), (2, 3, 2.0)]
        value, _ = max_flow_min_cut(4, arcs, 0, 3)
        assert value == pytest.approx(3.0)

    def test_disconnected(self):
        value, side = max_flow_min_cut(3, [(0, 1, 1.0)], 0, 2)
        assert value == 0.0
        assert not side[2]

    def test_cut_separates(self):
        arcs = [(0, 1, 5.0), (1, 2, 1.0), (2, 3, 5.0)]
        value, side = max_flow_min_cut(4, arcs, 0, 3)
        assert value == pytest.approx(1.0)
        assert side[0] and side[1]
        assert not side[2] and not side[3]

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_matches_networkx(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 9))
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        arcs = []
        for u in range(n):
            for v in range(n):
                if u != v and rng.random() < 0.45:
                    c = float(rng.integers(1, 8))
                    arcs.append((u, v, c))
                    g.add_edge(u, v, capacity=c)
        expected = nx.maximum_flow_value(g, 0, n - 1) if g.has_node(0) else 0.0
        value, side = max_flow_min_cut(n, arcs, 0, n - 1)
        assert value == pytest.approx(expected)
        # the returned cut's capacity equals the flow value (duality)
        cut_capacity = sum(c for u, v, c in arcs if side[u] and not side[v])
        assert cut_capacity == pytest.approx(value)

    def test_validation(self):
        with pytest.raises(SolverError):
            max_flow_min_cut(2, [], 0, 0)
        with pytest.raises(SolverError):
            max_flow_min_cut(2, [(0, 5, 1.0)], 0, 1)
        with pytest.raises(SolverError):
            max_flow_min_cut(2, [(0, 1, -1.0)], 0, 1)


class TestCuttingPlaneBound:
    def test_never_below_flow_relaxation(self, ft4):
        from repro.core.lp_bound import top1_lp_lower_bound

        src, dst = int(ft4.hosts[0]), int(ft4.hosts[9])
        countable = set(ft4.switches.tolist())
        for n in (2, 4):
            weak = top1_lp_lower_bound(ft4.graph, src, dst, n, countable=countable)
            strong = top1_lp_lower_bound(
                ft4.graph, src, dst, n, countable=countable, cutting_planes=True
            )
            assert strong >= weak - 1e-6

    def test_still_below_optimal(self, ft2):
        """At n = |V_s| the x variables are forced to 1 and the cuts bind."""
        from repro.core.lp_bound import top1_lp_lower_bound
        from repro.core.optimal import optimal_placement
        from repro.workload.flows import FlowSet

        src, dst = int(ft2.hosts[0]), int(ft2.hosts[1])
        countable = set(ft2.switches.tolist())
        n = ft2.num_switches
        strong = top1_lp_lower_bound(
            ft2.graph, src, dst, n, countable=countable, cutting_planes=True
        )
        flows = FlowSet(sources=[src], destinations=[dst], rates=[1.0])
        opt = optimal_placement(ft2, flows, n).cost
        assert strong <= opt + 1e-6
        # with every switch forced, the bound exceeds the bare s-t distance
        assert strong > ft2.graph.cost(src, dst) - 1e-9
