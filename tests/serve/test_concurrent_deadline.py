"""Concurrent deadline pressure: exact-or-flagged, no cache corruption.

The robustness claim under test: hammering one pooled solver session from
many concurrent tasks with tight deadlines never yields a *wrong* result
— every answer is either the exact solver output or explicitly flagged
``degraded`` — and the shared compute cache sees no cross-request
corruption: a serial replay of the same requests on a fresh session is
bit-identical, answer by answer.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.serve import PlacementService, ServeConfig
from repro.session import SolverSession

pytestmark = pytest.mark.serve


def _requests(small_scenario, topology, count):
    """Mixed-deadline request stream: exact, zero-budget, and hair-trigger."""
    deadlines = [None, 0.0, 1e-6]
    return [
        (small_scenario(topology, 4, seed=seed), deadlines[seed % 3])
        for seed in range(count)
    ]


class TestServiceUnderDeadlineStorm:
    def test_every_answer_exact_or_flagged_and_replayable(
        self, ft4, small_scenario
    ):
        requests = _requests(small_scenario, ft4, 24)

        async def hammer():
            config = ServeConfig(max_concurrency=4, batch_window=0.001)
            async with PlacementService(config) as service:
                results = await asyncio.gather(
                    *(
                        service.submit(ft4, flows, 2, deadline=deadline)
                        if deadline is not None
                        else service.submit(ft4, flows, 2)
                        for flows, deadline in requests
                    )
                )
                return results, service.metrics()

        results, metrics = run_loop(hammer())
        session = SolverSession(ft4)  # fresh: the serial-replay oracle
        exact = {
            seed: session.place(flows, 2)
            for seed, (flows, _) in enumerate(requests)
        }
        fallback = {
            seed: session.solve(flows, 2, deadline=0.0)
            for seed, (flows, _) in enumerate(requests)
        }
        for seed, ((flows, deadline), served) in enumerate(zip(requests, results)):
            if served.degraded:
                oracle = fallback[seed]
                assert served.result.extra["degraded"]
            else:
                oracle = exact[seed]
            assert np.array_equal(served.result.placement, oracle.placement), (
                f"request {seed} (deadline={deadline}) diverged from serial replay"
            )
            assert served.result.cost == oracle.cost
        # deterministic stages: None never degrades, 0.0 always does
        for seed, ((_, deadline), served) in enumerate(zip(requests, results)):
            if deadline is None:
                assert not served.degraded
            elif deadline == 0.0:
                assert served.degraded
        assert metrics["counters"]["completed"] == len(requests)
        assert metrics["counters"].get("failed", 0) == 0

    def test_storm_leaves_cache_healthy(self, ft4, small_scenario):
        requests = _requests(small_scenario, ft4, 12)

        async def hammer():
            async with PlacementService(ServeConfig(max_concurrency=4)) as service:
                await asyncio.gather(
                    *(
                        service.submit(ft4, flows, 2, deadline=deadline)
                        if deadline is not None
                        else service.submit(ft4, flows, 2)
                        for flows, deadline in requests
                    )
                )
                (entry,) = service.pool.entries()
                assert entry.poisoned_reason() is None
                return service.metrics()

        metrics = run_loop(hammer())
        assert metrics["pool"]["quarantined"] == 0


class TestSharedSessionFromThreads:
    """The raw-session variant: the cache itself is the shared state."""

    def test_threaded_deadline_solves_match_serial(self, ft4, small_scenario):
        flowsets = [small_scenario(ft4, 4, seed=s) for s in range(16)]
        shared = SolverSession(ft4)

        def solve(indexed):
            index, flows = indexed
            deadline = 0.0 if index % 2 else None
            return shared.solve(flows, 2, deadline=deadline)

        with ThreadPoolExecutor(max_workers=8) as pool:
            concurrent = list(pool.map(solve, enumerate(flowsets)))

        serial_session = SolverSession(ft4)
        for index, (flows, result) in enumerate(zip(flowsets, concurrent)):
            deadline = 0.0 if index % 2 else None
            oracle = serial_session.solve(flows, 2, deadline=deadline)
            assert np.array_equal(result.placement, oracle.placement)
            assert result.cost == oracle.cost
            assert bool(result.extra.get("degraded")) == bool(
                oracle.extra.get("degraded")
            )


def run_loop(coro):
    return asyncio.run(coro)
