"""Admission control: token bucket, outstanding bound, explicit sheds."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.serve.admission import AdmissionController, Overloaded, TokenBucket

pytestmark = pytest.mark.serve


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(1.0, 3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(2.0, 2.0, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2 tokens/s * 0.5s = 1 token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_retry_after_is_time_to_next_token(self):
        clock = FakeClock()
        bucket = TokenBucket(2.0, 1.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.retry_after == pytest.approx(0.5)
        clock.advance(0.5)
        assert bucket.retry_after == 0.0

    def test_validation(self):
        with pytest.raises(ReproError):
            TokenBucket(0.0, 1.0)
        with pytest.raises(ReproError):
            TokenBucket(1.0, 0.5)


class TestAdmissionController:
    def test_queue_full_is_explicit_shed(self):
        controller = AdmissionController(max_queue=2)
        controller.admit("a")
        controller.admit("a")
        with pytest.raises(Overloaded) as info:
            controller.admit("a")
        assert info.value.reason == "queue_full"
        assert controller.shed["queue_full"] == 1
        # releasing opens a slot again
        controller.release()
        controller.admit("a")

    def test_outstanding_covers_inflight_not_just_queued(self):
        controller = AdmissionController(max_queue=3)
        for _ in range(3):
            controller.admit("a")
        assert controller.outstanding == 3
        assert controller.peak_outstanding == 3

    def test_rate_limit_is_per_topology(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_queue=100, rate_limit=1.0, burst=1.0, clock=clock
        )
        controller.admit("topo-a")
        with pytest.raises(Overloaded) as info:
            controller.admit("topo-a")
        assert info.value.reason == "rate_limited"
        assert info.value.retry_after == pytest.approx(1.0)
        # a different topology has its own bucket
        controller.admit("topo-b")
        clock.advance(1.0)
        controller.admit("topo-a")

    def test_release_without_admit_raises(self):
        controller = AdmissionController(max_queue=1)
        with pytest.raises(ReproError):
            controller.release()

    def test_stats_shape(self):
        controller = AdmissionController(max_queue=4, rate_limit=10.0)
        controller.admit("a")
        stats = controller.stats()
        assert stats["outstanding"] == 1
        assert stats["admitted"] == 1
        assert stats["max_queue"] == 4
        assert stats["shed"] == {}
        assert stats["tracked_topologies"] == 1
