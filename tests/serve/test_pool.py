"""Session pool: fingerprint keying, LRU eviction, quarantine and rebuild."""

from __future__ import annotations

import pytest

from repro import fat_tree
from repro.faults.process import FaultState
from repro.serve.pool import SessionPool

pytestmark = pytest.mark.serve


def _safe_switch(topology):
    """A non-edge switch whose failure keeps the fabric connected."""
    import numpy as np

    edge = {int(s) for s in np.asarray(topology.host_edge_switch).ravel()}
    return sorted(int(s) for s in topology.switches if int(s) not in edge)[0]


class TestFingerprint:
    def test_equal_topologies_share_a_key(self, ft4):
        pool = SessionPool()
        assert pool.fingerprint(ft4) == pool.fingerprint(fat_tree(4))

    def test_distinct_topologies_differ(self, ft2, ft4):
        pool = SessionPool()
        assert pool.fingerprint(ft2) != pool.fingerprint(ft4)

    def test_memoized_per_object(self, ft4):
        pool = SessionPool()
        first = pool.fingerprint(ft4)
        assert pool.fingerprint(ft4) is first  # memo returns the same str


class TestLifecycle:
    def test_build_and_get(self, ft2):
        pool = SessionPool(max_sessions=2)
        key = pool.fingerprint(ft2)
        entry = pool.build(key, ft2)
        assert pool.get(key) is entry
        assert len(pool) == 1

    def test_lru_eviction(self, ft2, ft4, ft8):
        pool = SessionPool(max_sessions=2)
        keys = [pool.fingerprint(t) for t in (ft2, ft4, ft8)]
        entries = [
            pool.build(key, t) for key, t in zip(keys, (ft2, ft4, ft8))
        ]
        assert len(pool) == 2
        assert pool.get(keys[0]) is None  # oldest evicted
        assert pool.get(keys[1]) is entries[1]
        assert pool.get(keys[2]) is entries[2]
        assert pool.evicted == 1

    def test_get_refreshes_recency(self, ft2, ft4, ft8):
        pool = SessionPool(max_sessions=2)
        keys = [pool.fingerprint(t) for t in (ft2, ft4, ft8)]
        pool.build(keys[0], ft2)
        pool.build(keys[1], ft4)
        pool.get(keys[0])  # touch: ft2 becomes most recent
        pool.build(keys[2], ft8)
        assert pool.get(keys[1]) is None  # ft4 was the LRU
        assert pool.get(keys[0]) is not None


class TestQuarantine:
    def test_quarantine_removes_current_entry(self, ft2):
        pool = SessionPool()
        key = pool.fingerprint(ft2)
        entry = pool.build(key, ft2)
        pool.quarantine(entry, reason="test poison")
        assert pool.get(key) is None
        assert pool.quarantined == 1
        assert entry.last_quarantine_reason == "test poison"

    def test_quarantine_spares_a_newer_mapping(self, ft2):
        pool = SessionPool()
        key = pool.fingerprint(ft2)
        old = pool.build(key, ft2)
        new = pool.build(key, ft2)  # replaces the mapping
        pool.quarantine(old, reason="stale")
        assert pool.get(key) is new

    def test_rebuild_bumps_generation_and_replays_faults(self, ft4):
        pool = SessionPool()
        key = pool.fingerprint(ft4)
        entry = pool.build(key, ft4)
        state = FaultState(failed_switches=(_safe_switch(ft4),))
        entry.apply(state)
        assert not entry.state.is_healthy
        pool.quarantine(entry, reason="poison")
        fresh = pool.rebuild(entry)
        assert fresh.generation == entry.generation + 1
        assert fresh is pool.get(key)
        assert fresh.cache is not entry.cache  # genuinely cold
        assert fresh.state == state  # degraded view replayed
        assert fresh.view is not fresh.base

    def test_rebuild_of_healthy_entry_skips_replay(self, ft2):
        pool = SessionPool()
        key = pool.fingerprint(ft2)
        entry = pool.build(key, ft2)
        fresh = pool.rebuild(entry)
        assert fresh.state.is_healthy
        assert fresh.view is fresh.base


class TestPoisonDetection:
    def test_healthy_entry_reports_none(self, ft2, small_scenario):
        pool = SessionPool()
        key = pool.fingerprint(ft2)
        entry = pool.build(key, ft2)
        entry.base.place(small_scenario(ft2, 2, seed=1), 1)
        assert entry.poisoned_reason() is None

    def test_epoch_regression_is_poison(self, ft2):
        pool = SessionPool()
        entry = pool.build(pool.fingerprint(ft2), ft2)
        entry.cache.bump("rates")
        entry.cache.bump("rates")
        assert entry.poisoned_reason() is None  # watermark now 2
        # simulate corruption: a stray writer rewinding the epoch counter
        entry.cache._epochs["rates"] = 1
        reason = entry.poisoned_reason()
        assert reason is not None and "regressed" in reason

    def test_stats_expose_cache_epochs(self, ft2, small_scenario):
        pool = SessionPool()
        entry = pool.build(pool.fingerprint(ft2), ft2)
        entry.base.place(small_scenario(ft2, 2, seed=3), 1)
        stats = pool.stats()
        assert stats["sessions"] == 1
        (entry_stats,) = stats["entries"]
        assert "epochs" in entry_stats["cache"]
