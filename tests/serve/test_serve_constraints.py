"""Serve layer: constrained requests and the unified result wire format."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import Constraints, InfeasibleError
from repro.serve import PlacementService, ServeConfig
from repro.serve.server import ServeResult
from repro.session import SolverSession

pytestmark = [pytest.mark.serve, pytest.mark.constrained]


def run(coro):
    return asyncio.run(coro)


class TestConstrainedRequests:
    def test_constrained_submit_matches_offline_session(self, ft2, small_scenario):
        flows = small_scenario(ft2, 3, seed=5)
        constraints = Constraints(vnf_capacity=1)

        async def serve():
            async with PlacementService() as service:
                return await service.submit(
                    ft2, flows, 2, constraints=constraints
                )

        served = run(serve())
        offline = SolverSession(ft2).place(flows, 2, constraints=constraints)
        assert np.array_equal(served.result.placement, offline.placement)
        assert served.result.cost == offline.cost
        assert served.result.algorithm == "msg"

    def test_none_constraints_bit_identical_to_plain_submit(
        self, ft2, small_scenario
    ):
        flows = small_scenario(ft2, 3, seed=6)

        async def serve():
            async with PlacementService() as service:
                plain = await service.submit(ft2, flows, 2)
                explicit = await service.submit(
                    ft2, flows, 2, constraints=Constraints.none()
                )
                return plain, explicit

        plain, explicit = run(serve())
        assert np.array_equal(plain.result.placement, explicit.result.placement)
        assert plain.result.cost == explicit.result.cost
        assert plain.result.algorithm == explicit.result.algorithm

    def test_constrained_requests_never_batch(self, ft4, small_scenario):
        flowsets = [small_scenario(ft4, 4, seed=s) for s in range(6)]
        constraints = Constraints(vnf_capacity=2)

        async def serve():
            config = ServeConfig(max_concurrency=1, batch_window=0.05)
            async with PlacementService(config) as service:
                return await asyncio.gather(
                    *(
                        service.submit(ft4, flows, 2, constraints=constraints)
                        for flows in flowsets
                    )
                )

        served = run(serve())
        assert all(not r.batched for r in served)
        session = SolverSession(ft4)
        for flows, r in zip(flowsets, served):
            offline = session.place(flows, 2, constraints=constraints)
            assert np.array_equal(r.result.placement, offline.placement)
            assert r.result.cost == offline.cost

    def test_infeasible_request_raises_with_diagnosis(self, ft2, small_scenario):
        flows = small_scenario(ft2, 3, seed=7)
        switches = [int(s) for s in ft2.switches]
        constraints = Constraints(
            vnf_capacity=1, occupancy={s: 1 for s in switches[:-1]}
        )

        async def serve():
            async with PlacementService() as service:
                return await service.submit(
                    ft2, flows, 2, constraints=constraints
                )

        with pytest.raises(InfeasibleError) as err:
            run(serve())
        assert err.value.diagnosis["reason"] == "capacity"


class TestWireFormat:
    def _served(self, topology, flows, sfc, **kwargs):
        async def serve():
            async with PlacementService() as service:
                return await service.submit(topology, flows, sfc, **kwargs)

        return run(serve())

    def test_placement_roundtrip_is_bit_exact(self, ft2, small_scenario):
        served = self._served(ft2, small_scenario(ft2, 3, seed=8), 2)
        back = ServeResult.from_dict(served.to_dict())
        assert np.array_equal(back.result.placement, served.result.placement)
        assert back.result.cost == served.result.cost
        assert back.result.algorithm == served.result.algorithm
        assert back.seq == served.seq
        assert back.batched == served.batched
        assert back.fault_state == served.fault_state
        assert back.to_dict() == served.to_dict()

    def test_migration_roundtrip_keeps_cost_split(self, ft2, small_scenario):
        flows = small_scenario(ft2, 3, seed=9)
        prev = SolverSession(ft2).place(flows, 2).placement
        shifted = flows.with_rates(flows.rates[::-1].copy())
        served = self._served(ft2, shifted, 2, prev=prev, mu=10.0)
        back = ServeResult.from_dict(served.to_dict())
        assert np.array_equal(back.result.source, served.result.source)
        assert np.array_equal(back.result.migration, served.result.migration)
        assert back.result.communication_cost == served.result.communication_cost
        assert back.result.migration_cost == served.result.migration_cost
        assert back.to_dict() == served.to_dict()
