"""PlacementService: request path, backpressure, degradation, recovery."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import ReproError
from repro.runtime.resilience import ChaosConfig
from repro.serve import (
    Overloaded,
    PlacementService,
    ServeConfig,
    ServiceError,
)
from repro.session import SolverSession

pytestmark = pytest.mark.serve


def run(coro):
    return asyncio.run(coro)


def _events(switch, action="fail"):
    return [{"hour": 1, "kind": "switch", "action": action, "target": switch}]


def _safe_switch(topology):
    edge = {int(s) for s in np.asarray(topology.host_edge_switch).ravel()}
    return sorted(int(s) for s in topology.switches if int(s) not in edge)[0]


class TestRequestPath:
    def test_served_result_matches_offline_session(self, ft2, small_scenario):
        flows = small_scenario(ft2, 3, seed=5)

        async def serve():
            async with PlacementService() as service:
                return await service.submit(ft2, flows, 1)

        served = run(serve())
        offline = SolverSession(ft2).place(flows, 1)
        assert np.array_equal(served.result.placement, offline.placement)
        assert served.result.cost == offline.cost  # bit-identical, not approx
        assert served.result.algorithm == offline.algorithm
        assert not served.degraded
        assert served.attempts == 1
        assert served.generation == 0
        assert served.fault_state.is_healthy

    def test_concurrent_requests_all_bit_identical_to_serial(
        self, ft4, small_scenario
    ):
        flowsets = [small_scenario(ft4, 4, seed=s) for s in range(8)]

        async def serve():
            async with PlacementService(ServeConfig(max_concurrency=4)) as service:
                return await asyncio.gather(
                    *(service.submit(ft4, flows, 2) for flows in flowsets)
                )

        served = run(serve())
        session = SolverSession(ft4)
        for flows, result in zip(flowsets, served):
            offline = session.place(flows, 2)
            assert np.array_equal(result.result.placement, offline.placement)
            assert result.result.cost == offline.cost

    def test_batching_coalesces_compatible_requests(self, ft4, small_scenario):
        flowsets = [small_scenario(ft4, 4, seed=s) for s in range(6)]

        async def serve():
            # one solver thread and a generous window: the queue must
            # coalesce while the first solve holds the only slot
            config = ServeConfig(max_concurrency=1, batch_window=0.05)
            async with PlacementService(config) as service:
                results = await asyncio.gather(
                    *(service.submit(ft4, flows, 2) for flows in flowsets)
                )
                return results, service.metrics()

        results, metrics = run(serve())
        assert any(r.batched for r in results)
        assert metrics["counters"]["batched_solves"] >= 1

    def test_migration_requests_are_served(self, ft2, small_scenario):
        flows = small_scenario(ft2, 3, seed=9)

        async def serve():
            async with PlacementService() as service:
                placed = await service.submit(ft2, flows, 1)
                return placed, await service.submit(
                    ft2, flows, 1, prev=placed.result.placement, mu=10.0
                )

        placed, migrated = run(serve())
        offline = SolverSession(ft2).migrate(
            placed.result.placement, flows, mu=10.0
        )
        assert np.array_equal(migrated.result.migration, offline.migration)
        assert migrated.result.cost == offline.cost

    def test_submit_before_start_raises(self, ft2, small_scenario):
        service = PlacementService()

        async def submit():
            await service.submit(ft2, small_scenario(ft2, 2, seed=0), 1)

        with pytest.raises(ReproError):
            run(submit())


class TestBackpressure:
    def test_queue_bound_sheds_explicitly(self, ft4, small_scenario):
        flowsets = [small_scenario(ft4, 4, seed=s) for s in range(30)]

        async def serve():
            config = ServeConfig(max_queue=2, max_concurrency=1)
            async with PlacementService(config) as service:
                outcomes = await asyncio.gather(
                    *(service.submit(ft4, flows, 2) for flows in flowsets),
                    return_exceptions=True,
                )
                return outcomes, service.metrics()

        outcomes, metrics = run(serve())
        shed = [o for o in outcomes if isinstance(o, Overloaded)]
        served = [o for o in outcomes if not isinstance(o, BaseException)]
        assert shed, "30 concurrent submits against max_queue=2 must shed"
        assert all(o.reason == "queue_full" for o in shed)
        assert len(shed) + len(served) == 30
        # the bound held: outstanding never exceeded max_queue
        assert metrics["admission"]["peak_outstanding"] <= 2

    def test_rate_limit_sheds_with_retry_after(self, ft2, small_scenario):
        flows = small_scenario(ft2, 2, seed=1)

        async def serve():
            config = ServeConfig(rate_limit=1.0, burst=1.0)
            async with PlacementService(config) as service:
                first = await service.submit(ft2, flows, 1)
                with pytest.raises(Overloaded) as info:
                    await service.submit(ft2, flows, 1)
                return first, info.value

        first, overloaded = run(serve())
        assert first.result is not None
        assert overloaded.reason == "rate_limited"
        assert overloaded.retry_after > 0

    def test_draining_service_sheds(self, ft2, small_scenario):
        flows = small_scenario(ft2, 2, seed=2)

        async def serve():
            async with PlacementService() as service:
                service._draining = True
                with pytest.raises(Overloaded) as info:
                    await service.submit(ft2, flows, 1)
                service._draining = False
                return info.value

        assert run(serve()).reason == "draining"


class TestDegradation:
    def test_zero_deadline_serves_flagged_fallback(self, ft2, small_scenario):
        flows = small_scenario(ft2, 3, seed=7)

        async def serve():
            async with PlacementService() as service:
                return await service.submit(ft2, flows, 1, deadline=0.0)

        served = run(serve())
        assert served.degraded
        offline = SolverSession(ft2).solve(flows, 1, deadline=0.0)
        assert np.array_equal(served.result.placement, offline.placement)
        assert served.result.cost == offline.cost
        assert served.result.extra["deadline"]["requested"] == "dp"

    def test_default_deadline_applies_when_unspecified(self, ft2, small_scenario):
        flows = small_scenario(ft2, 3, seed=7)

        async def serve():
            config = ServeConfig(default_deadline=0.0)
            async with PlacementService(config) as service:
                return await service.submit(ft2, flows, 1)

        assert run(serve()).degraded

    def test_breaker_trips_to_degraded_mode(self, ft2, small_scenario):
        flowsets = [small_scenario(ft2, 3, seed=s) for s in range(8)]

        async def serve():
            config = ServeConfig(
                latency_budget=1e-9,  # every real solve violates it
                breaker_min_samples=2,
                breaker_window=4,
                breaker_cooldown=60.0,
                batch_window=0.0,  # solo solves: each feeds the breaker
            )
            async with PlacementService(config) as service:
                results = []
                for flows in flowsets:
                    results.append(await service.submit(ft2, flows, 1))
                return results, service.metrics()

        results, metrics = run(serve())
        assert metrics["breaker"]["trips"] >= 1
        tripped = [r for r in results if r.result.extra.get("breaker") == "open"]
        assert tripped, "breaker must force requests onto the degraded path"
        assert all(r.degraded for r in tripped)
        assert metrics["counters"]["breaker_degraded"] == len(tripped)


class TestCrashRecovery:
    def test_injected_crash_is_retried_transparently(self, ft2, small_scenario):
        flows = small_scenario(ft2, 3, seed=4)

        async def serve():
            config = ServeConfig(
                chaos=ChaosConfig(seed=3, crash_rate=1.0, faulty_attempts=1),
                retry_attempts=1,
                batch_window=0.0,
            )
            async with PlacementService(config) as service:
                served = await service.submit(ft2, flows, 1)
                return served, service.metrics()

        served, metrics = run(serve())
        assert served.attempts == 2
        assert served.generation >= 1  # answered by a rebuilt session
        offline = SolverSession(ft2).place(flows, 1)
        assert np.array_equal(served.result.placement, offline.placement)
        assert served.result.cost == offline.cost
        assert metrics["pool"]["quarantined"] >= 1
        assert metrics["counters"]["retries"] >= 1

    def test_exhausted_retries_surface_service_error(self, ft2, small_scenario):
        flows = small_scenario(ft2, 3, seed=4)

        async def serve():
            config = ServeConfig(
                # faults on every attempt: retry cannot converge
                chaos=ChaosConfig(seed=3, crash_rate=1.0, faulty_attempts=99),
                retry_attempts=1,
                batch_window=0.0,
            )
            async with PlacementService(config) as service:
                with pytest.raises(ServiceError):
                    await service.submit(ft2, flows, 1)

        run(serve())

    def test_injected_timeout_also_quarantines(self, ft2, small_scenario):
        flows = small_scenario(ft2, 3, seed=4)

        async def serve():
            config = ServeConfig(
                chaos=ChaosConfig(seed=5, timeout_rate=1.0, faulty_attempts=1),
                retry_attempts=1,
                batch_window=0.0,
            )
            async with PlacementService(config) as service:
                return await service.submit(ft2, flows, 1)

        assert run(serve()).attempts == 2


class TestFaultIngestion:
    def test_events_change_subsequent_answers(self, ft4, small_scenario):
        flows = small_scenario(ft4, 6, seed=8)
        switch = _safe_switch(ft4)

        async def serve():
            async with PlacementService() as service:
                healthy = await service.submit(ft4, flows, 2)
                await service.ingest(ft4, _events(switch))
                degraded = await service.submit(ft4, flows, 2)
                await service.ingest(ft4, _events(switch, "repair"))
                repaired = await service.submit(ft4, flows, 2)
                return healthy, degraded, repaired

        healthy, degraded, repaired = run(serve())
        assert healthy.fault_state.is_healthy
        assert degraded.fault_state.failed_switches == (switch,)
        assert repaired.fault_state.is_healthy
        assert switch not in set(int(s) for s in degraded.result.placement)
        # bit-identity against an offline session walked through the
        # same fault deltas
        session = SolverSession(ft4)
        _, _, view = session.apply(degraded.fault_state)
        offline = view.place(flows, 2)
        assert np.array_equal(degraded.result.placement, offline.placement)
        assert degraded.result.cost == offline.cost
        assert repaired.result.cost == healthy.result.cost

    def test_malformed_event_is_rejected(self, ft2):
        async def serve():
            async with PlacementService() as service:
                with pytest.raises(ReproError):
                    await service.ingest(
                        ft2, [{"hour": 1, "kind": "router", "action": "fail",
                               "target": 3}]
                    )

        run(serve())


class TestLifecycle:
    def test_stop_drains_inflight_requests(self, ft4, small_scenario):
        flowsets = [small_scenario(ft4, 4, seed=s) for s in range(6)]

        async def serve():
            service = await PlacementService(
                ServeConfig(max_concurrency=1)
            ).start()
            futures = [
                asyncio.ensure_future(service.submit(ft4, flows, 2))
                for flows in flowsets
            ]
            await asyncio.sleep(0)  # let submits enqueue
            summary = await service.stop(drain=True)
            results = await asyncio.gather(*futures, return_exceptions=True)
            return summary, results

        summary, results = run(serve())
        assert summary["drained"]
        assert all(not isinstance(r, BaseException) for r in results)

    def test_probes_reflect_lifecycle(self, ft2):
        async def serve():
            service = PlacementService()
            assert not service.live and not service.ready
            await service.start()
            assert service.live and service.ready
            await service.stop()
            assert not service.live and not service.ready

        run(serve())

    def test_metrics_shape(self, ft2, small_scenario):
        async def serve():
            async with PlacementService() as service:
                await service.submit(ft2, small_scenario(ft2, 2, seed=0), 1)
                return service.metrics()

        metrics = run(serve())
        for key in ("admission", "breaker", "latency", "pool", "counters"):
            assert key in metrics
        assert metrics["counters"]["completed"] == 1
        (entry,) = metrics["pool"]["entries"]
        assert "epochs" in entry["cache"]  # cache health without private state
