"""Chaos soak: crashes + deadline storms + fault bursts, then recovery.

The acceptance test for the serve layer.  The service runs a three-phase
soak under deterministic chaos injection (solver crashes and hangs via
:class:`ChaosConfig`), a mid-run deadline storm (every request carries a
zero budget), and fault-event bursts (switch fail/repair deltas ingested
mid-traffic).  Asserted throughout:

* **no deadlock** — the whole soak must finish inside a hard wall-clock
  bound (``asyncio.wait_for``), with the queue drained and zero
  outstanding admissions at the end;
* **no silent wrong answers** — every served result is replayed offline
  against a fresh session walked to the same
  :class:`~repro.faults.process.FaultState`; exact requests must be
  bit-identical to the exact solve and degraded ones to the
  zero-deadline fallback, so a result can only differ by being
  *explicitly flagged* degraded;
* **recovery** — after the chaotic middle phase the service returns to
  steady state: the closing phase completes every request and its
  throughput stays within an order of magnitude of the opening phase's.

Sized by ``REPRO_SOAK_REQUESTS`` (default 60; nightly CI raises it) and
bounded by ``REPRO_SOAK_TIMEOUT`` seconds.  Marked ``slow``: the serve CI
job opts in with ``-m serve``.
"""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from repro.runtime.resilience import ChaosConfig
from repro.serve import Overloaded, PlacementService, ServeConfig
from repro.session import SolverSession

pytestmark = [pytest.mark.serve, pytest.mark.slow]

SOAK_REQUESTS = int(os.environ.get("REPRO_SOAK_REQUESTS", "60"))
SOAK_TIMEOUT = float(os.environ.get("REPRO_SOAK_TIMEOUT", "180"))


def _safe_switches(topology):
    edge = {int(s) for s in np.asarray(topology.host_edge_switch).ravel()}
    return sorted(int(s) for s in topology.switches if int(s) not in edge)


def _event(switch, action):
    return {"hour": 1, "kind": "switch", "action": action, "target": switch}


class TestChaosSoak:
    def test_soak_survives_and_recovers(self, ft4, small_scenario):
        per_phase = max(SOAK_REQUESTS // 3, 6)
        flowsets = [
            small_scenario(ft4, 4, seed=seed) for seed in range(3 * per_phase)
        ]
        safe = _safe_switches(ft4)
        chaos = ChaosConfig(
            seed=13, crash_rate=0.08, timeout_rate=0.04, faulty_attempts=1
        )
        config = ServeConfig(
            max_queue=32,
            max_concurrency=4,
            retry_attempts=1,
            chaos=chaos,
        )
        async def fire(service, flows, deadline, log):
            try:
                if deadline is None:
                    result = await service.submit(ft4, flows, 2)
                else:
                    result = await service.submit(ft4, flows, 2, deadline=deadline)
            except Overloaded:
                log["shed"] += 1
                return
            log["served"].append((flows, deadline, result))

        async def phase(service, flowsets, *, deadline=None, faults=False):
            log = {"served": [], "shed": 0}
            started = asyncio.get_running_loop().time()
            tasks = []
            failed_now: list[int] = []
            for index, flows in enumerate(flowsets):
                tasks.append(
                    asyncio.ensure_future(fire(service, flows, deadline, log))
                )
                if faults and index % 5 == 2:
                    # burst: fail a fresh switch, repairing the previous one
                    if failed_now:
                        await service.ingest(
                            ft4, [_event(failed_now.pop(), "repair")]
                        )
                    switch = safe[(index // 5) % len(safe)]
                    failed_now.append(switch)
                    await service.ingest(ft4, [_event(switch, "fail")])
            await asyncio.gather(*tasks)
            for switch in failed_now:  # leave the phase healthy
                await service.ingest(ft4, [_event(switch, "repair")])
            log["seconds"] = asyncio.get_running_loop().time() - started
            return log

        async def soak():
            async with PlacementService(config) as service:
                opening = await phase(service, flowsets[:per_phase])
                storm = await phase(
                    service,
                    flowsets[per_phase : 2 * per_phase],
                    deadline=0.0,  # deadline storm
                    faults=True,  # fault-event bursts
                )
                closing = await phase(service, flowsets[2 * per_phase :])
                assert service.ready
                assert service.admission.outstanding == 0
                return opening, storm, closing, service.metrics()

        opening, storm, closing, metrics = asyncio.run(
            asyncio.wait_for(soak(), timeout=SOAK_TIMEOUT)  # deadlock guard
        )
        phases = (opening, storm, closing)

        # every request resolved one way or the other; none hung or died
        # with an unflagged failure (chaos faults stop after attempt 0, so
        # one retry always converges)
        resolved = sum(len(p["served"]) + p["shed"] for p in phases)
        assert resolved == 3 * per_phase
        assert metrics["counters"].get("failed", 0) == 0
        assert metrics["admission"]["peak_outstanding"] <= config.max_queue

        # the chaos actually bit: quarantines and retries happened
        assert metrics["pool"]["quarantined"] >= 1
        assert metrics["counters"].get("retries", 0) >= 1

        # no silent wrong answers: replay every served result against an
        # offline session walked to the same fault state
        oracle = SolverSession(ft4)
        views: dict = {}
        for p in phases:
            for flows, deadline, served in p["served"]:
                state = served.fault_state
                if state not in views:
                    views[state] = (
                        oracle if state.is_healthy else oracle.apply(state)[2]
                    )
                view = views[state]
                if served.degraded:
                    expected = view.solve(flows, 2, deadline=0.0)
                    assert served.result.extra["degraded"]
                else:
                    expected = view.place(flows, 2)
                assert np.array_equal(served.result.placement, expected.placement)
                assert served.result.cost == expected.cost

        # recovery: the closing phase served everything it admitted with
        # no lingering degradation, at a throughput within an order of
        # magnitude of the untroubled opening phase
        assert closing["served"], "closing phase served nothing"
        assert all(not served.degraded for _, _, served in closing["served"])
        opening_rps = len(opening["served"]) / opening["seconds"]
        closing_rps = len(closing["served"]) / closing["seconds"]
        assert closing_rps >= opening_rps / 10.0, (
            f"service did not recover: {closing_rps:.1f} rps after chaos vs "
            f"{opening_rps:.1f} rps before"
        )
