"""Latency windows, the circuit breaker's state machine, and HTTP probes."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.health import CircuitBreaker, LatencyWindow, start_probe_server

pytestmark = pytest.mark.serve


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestLatencyWindow:
    def test_quantiles_over_window(self):
        window = LatencyWindow(window=100)
        for value in range(1, 101):
            window.record(value / 100.0)
        assert window.quantile(0.5) == pytest.approx(0.505)
        assert window.quantile(0.95) == pytest.approx(0.9505)

    def test_bounded_eviction(self):
        window = LatencyWindow(window=4)
        for value in (10.0, 10.0, 10.0, 1.0, 1.0, 1.0, 1.0):
            window.record(value)
        assert window.quantile(0.99) == pytest.approx(1.0)
        assert window.count == 7
        assert len(window) == 4

    def test_empty_summary(self):
        assert LatencyWindow().summary() == {
            "count": 0, "window": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        defaults = dict(
            budget=1.0, window=16, min_samples=4, cooldown=5.0, clock=clock
        )
        defaults.update(kwargs)
        return CircuitBreaker(**defaults), clock

    def test_trips_on_p95_over_budget(self):
        breaker, _ = self.make()
        for _ in range(4):
            assert breaker.allow_full()
            breaker.record(2.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1
        assert not breaker.allow_full()

    def test_stays_closed_within_budget(self):
        breaker, _ = self.make()
        for _ in range(50):
            breaker.record(0.5)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow_full()

    def test_half_open_probe_closes_on_fast_solve(self):
        breaker, clock = self.make()
        for _ in range(4):
            breaker.record(2.0)
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(5.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        # exactly one probe allowed through at a time
        assert breaker.allow_full()
        assert not breaker.allow_full()
        breaker.record(0.1)
        assert breaker.state == CircuitBreaker.CLOSED
        # the window restarted: old slow samples cannot immediately re-trip
        breaker.record(0.1)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_retrips_on_slow_solve(self):
        breaker, clock = self.make()
        for _ in range(4):
            breaker.record(2.0)
        clock.advance(5.0)
        assert breaker.allow_full()
        breaker.record(3.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2

    def test_none_budget_is_inert(self):
        breaker = CircuitBreaker(budget=None)
        for _ in range(100):
            breaker.record(1e9)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow_full()


class FakeService:
    """Just enough surface for the probe endpoints."""

    def __init__(self) -> None:
        self.live = True
        self.ready = True

    def metrics(self) -> dict:
        return {"counters": {"completed": 7}}


async def _get(port: int, path: str) -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, body


class TestProbeServer:
    def test_probe_endpoints(self):
        async def run():
            service = FakeService()
            server = await start_probe_server(service, port=0)
            port = server.sockets[0].getsockname()[1]
            try:
                assert await _get(port, "/healthz") == (200, b"live\n")
                assert await _get(port, "/readyz") == (200, b"ready\n")
                status, body = await _get(port, "/metrics")
                assert status == 200
                assert json.loads(body) == {"counters": {"completed": 7}}
                status, _ = await _get(port, "/nope")
                assert status == 404
                service.ready = False
                assert (await _get(port, "/readyz"))[0] == 503
                service.live = False
                assert (await _get(port, "/healthz"))[0] == 503
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(run())
