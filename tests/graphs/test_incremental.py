"""Unit + hypothesis suite for delta-maintained APSP (repro.graphs.incremental).

The contract under test (module docstring of :mod:`repro.graphs.incremental`):
after *any* sequence of fail/repair deltas, distances are bit-identical to a
cold recompute on the surviving edge set, and the predecessor table is a valid
shortest-path tree for those exact distances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import CostGraph, DynamicAPSP, pairs_for_failures
from repro.graphs.apsp import edges_to_csr
from repro.topology.fattree import fat_tree
from repro.topology.jellyfish import jellyfish
from repro.topology.leafspine import leaf_spine
from repro.topology.linear import linear_ppdc


def _cold_tables(base: CostGraph, removed: frozenset) -> tuple[np.ndarray, np.ndarray]:
    """The oracle: a from-scratch solve on the surviving edge set."""
    kept = [e for e in base.edges if (e[0], e[1]) not in removed]
    view = CostGraph(base.labels, kept)
    return view._compute_apsp()


def _effective_weights(graph: CostGraph, removed: frozenset) -> np.ndarray:
    kept = [e for e in graph.edges if (e[0], e[1]) not in removed]
    dense = np.asarray(
        edges_to_csr(graph.num_nodes, kept, graph.weights).todense(), dtype=np.float64
    )
    dense[dense == 0.0] = np.inf
    np.fill_diagonal(dense, 0.0)
    return dense


def _assert_pred_tree(dist, pred, weights):
    """pred must reconstruct paths achieving exactly these distances."""
    n = dist.shape[0]
    off = ~np.eye(n, dtype=bool)
    finite = np.isfinite(dist) & off
    rows, cols = np.nonzero(finite)
    parents = pred[rows, cols]
    assert np.all(parents >= 0)
    assert np.array_equal(
        dist[rows, cols], dist[rows, parents] + weights[parents, cols]
    )
    # unreachable/self entries carry scipy's negative sentinel
    assert np.all(pred[~finite & off] < 0)


def _assert_matches_cold(dyn: DynamicAPSP, base: CostGraph):
    dist, pred = dyn.snapshot()
    cold_dist, _cold_pred = _cold_tables(base, dyn.removed_pairs)
    assert np.array_equal(dist, cold_dist), "distances diverged from cold recompute"
    _assert_pred_tree(dist, pred, _effective_weights(base, dyn.removed_pairs))


TOPOLOGY_BUILDERS = (
    lambda: fat_tree(4),
    lambda: leaf_spine(3, 2, 3),
    lambda: linear_ppdc(6),
    lambda: jellyfish(8, 3, 1),
)


class TestDynamicAPSPRandomSequences:
    @settings(max_examples=25, deadline=None)
    @given(
        topo_idx=st.integers(0, len(TOPOLOGY_BUILDERS) - 1),
        seed=st.integers(0, 10_000),
        steps=st.integers(1, 8),
    )
    def test_matches_cold_after_every_step(self, topo_idx, seed, steps):
        """Random walks over removed-pair sets stay bit-identical to cold."""
        graph = TOPOLOGY_BUILDERS[topo_idx]().graph
        pairs = sorted((u, v) for u, v, _w in graph.edges)
        rng = np.random.default_rng(seed)
        dyn = DynamicAPSP(graph)
        for _ in range(steps):
            size = int(rng.integers(0, max(1, len(pairs) // 3) + 1))
            idx = rng.choice(len(pairs), size=size, replace=False)
            dyn.update_to(frozenset(pairs[i] for i in idx))
            _assert_matches_cold(dyn, graph)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_fail_then_repair_restores_healthy_bits(self, seed):
        """A→B→A returns the healthy tables exactly (dist AND pred)."""
        graph = fat_tree(4).graph
        healthy_dist, healthy_pred = graph.apsp()
        pairs = sorted((u, v) for u, v, _w in graph.edges)
        rng = np.random.default_rng(seed)
        dyn = DynamicAPSP(graph)
        idx = rng.choice(len(pairs), size=3, replace=False)
        dyn.update_to(frozenset(pairs[i] for i in idx))
        dyn.update_to(frozenset())
        dist, pred = dyn.snapshot()
        assert np.array_equal(dist, healthy_dist)
        _assert_pred_tree(dist, pred, _effective_weights(graph, frozenset()))


class TestDynamicAPSPEdgeCases:
    def test_disconnection_goes_inf_and_repair_reconnects(self):
        # linear(6): a path graph, cutting any interior edge partitions it
        topo = linear_ppdc(6)
        graph = topo.graph
        edges = sorted((u, v) for u, v, _w in graph.edges)
        cut = edges[len(edges) // 2]
        dyn = DynamicAPSP(graph)
        dyn.update_to({cut})
        dist, _ = dyn.snapshot()
        assert np.isinf(dist[cut[0], cut[1]])
        _assert_matches_cold(dyn, graph)
        dyn.update_to(frozenset())
        dist, _ = dyn.snapshot()
        assert np.all(np.isfinite(dist))
        assert np.array_equal(dist, graph.apsp()[0])

    def test_node_failure_via_pairs_for_failures(self, ft4):
        graph = ft4.graph
        dead = int(ft4.switches[0])
        removed = pairs_for_failures(graph, failed_nodes=[dead])
        assert removed and all(dead in pair for pair in removed)
        dyn = DynamicAPSP(graph)
        dyn.update_for_failures(failed_nodes=[dead])
        assert dyn.removed_pairs == removed
        dist, _ = dyn.snapshot()
        others = [i for i in range(graph.num_nodes) if i != dead]
        assert np.all(np.isinf(dist[dead, others]))
        _assert_matches_cold(dyn, graph)

    def test_absent_failed_link_is_ignored(self, ft4):
        # degrade()'s kept-filter semantics: naming a non-edge is a no-op
        assert pairs_for_failures(ft4.graph, failed_links=[(0, 99_999)]) == frozenset()

    def test_unknown_removed_pair_rejected(self, ft4):
        dyn = DynamicAPSP(ft4.graph)
        with pytest.raises(GraphError):
            dyn.update_to({(0, 99_999)})

    def test_noop_update_costs_nothing(self, ft4):
        dyn = DynamicAPSP(ft4.graph)
        dyn.update_to(frozenset())
        assert dyn.stats["updates"] == 0
        assert dyn.stats["noop_updates"] == 1

    def test_snapshot_is_frozen_copy(self, ft4):
        dyn = DynamicAPSP(ft4.graph)
        dist, pred = dyn.snapshot()
        with pytest.raises(ValueError):
            dist[0, 0] = 1.0
        with pytest.raises(ValueError):
            pred[0, 0] = 1

    def test_invalid_rebuild_threshold_rejected(self, ft4):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(GraphError):
                DynamicAPSP(ft4.graph, rebuild_threshold=bad)


class TestRebuildThreshold:
    def test_low_threshold_forces_full_rebuilds(self, ft4):
        graph = ft4.graph
        core = int(ft4.switches[-1])
        dyn = DynamicAPSP(graph, rebuild_threshold=1e-9)
        dyn.update_for_failures(failed_nodes=[core])
        assert dyn.stats["full_rebuilds"] == 1
        assert dyn.stats["rows_recomputed"] == 0
        _assert_matches_cold(dyn, graph)

    def test_high_threshold_keeps_row_fixups(self, ft4):
        # an interior switch-switch edge: real row fix-ups, no leaf patch
        graph = ft4.graph
        switches = set(int(s) for s in ft4.switches)
        edge = next(
            (u, v)
            for u, v, _w in sorted(graph.edges)
            if u in switches and v in switches
        )
        dyn = DynamicAPSP(graph, rebuild_threshold=1.0)
        dyn.update_to({edge})
        assert dyn.stats["full_rebuilds"] == 0
        assert dyn.stats["rows_recomputed"] > 0
        _assert_matches_cold(dyn, graph)

    def test_leaf_detach_and_attach_are_column_patches(self, ft4):
        # a host access link: detaching and re-attaching the leaf must
        # never run a Dijkstra fix-up or a rebuild, just column writes
        graph = ft4.graph
        host = int(ft4.hosts[0])
        edge = next(
            (u, v) for u, v, _w in sorted(graph.edges) if host in (u, v)
        )
        dyn = DynamicAPSP(graph)
        dyn.update_to({edge})
        assert dyn.stats["leaf_patches"] == 1
        assert dyn.stats["full_rebuilds"] == 0
        dist, _ = dyn.snapshot()
        others = [i for i in range(graph.num_nodes) if i != host]
        assert np.all(np.isinf(dist[host, others]))
        assert np.all(np.isinf(dist[others, host]))
        _assert_matches_cold(dyn, graph)
        dyn.update_to(frozenset())
        # re-attach: one leaf patch plus the leaf's own single-row solve
        assert dyn.stats["leaf_patches"] == 2
        assert dyn.stats["full_rebuilds"] == 0
        assert dyn.stats["rows_recomputed"] == 1
        assert np.array_equal(dyn.snapshot()[0], graph.apsp()[0])
        _assert_matches_cold(dyn, graph)

    def test_switch_failure_orphans_hosts_without_rebuild(self, ft4):
        # killing an edge switch isolates its hosts; the hosts go through
        # the detach patch, so only the switch-switch removals screen rows
        graph = ft4.graph
        edge_switch = int(ft4.switches[0])
        dyn = DynamicAPSP(graph)
        dyn.update_for_failures(failed_nodes=[edge_switch])
        assert dyn.stats["leaf_patches"] >= 1
        _assert_matches_cold(dyn, graph)

    def test_both_threshold_regimes_agree(self, ft4):
        graph = ft4.graph
        target = pairs_for_failures(graph, failed_nodes=[int(ft4.switches[2])])
        eager = DynamicAPSP(graph, rebuild_threshold=1e-9)
        lazy = DynamicAPSP(graph, rebuild_threshold=1.0)
        for dyn in (eager, lazy):
            dyn.update_to(target)
        assert np.array_equal(eager.snapshot()[0], lazy.snapshot()[0])
