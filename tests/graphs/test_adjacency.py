import networkx as nx
import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.adjacency import CostGraph, GraphBuilder
from tests.conftest import random_cost_graph


def triangle() -> CostGraph:
    b = GraphBuilder()
    b.add_nodes(["a", "b", "c"])
    b.add_edge(0, 1, 1.0)
    b.add_edge(1, 2, 2.0)
    b.add_edge(0, 2, 10.0)
    return b.build()


class TestGraphBuilder:
    def test_duplicate_label_rejected(self):
        b = GraphBuilder()
        b.add_node("x")
        with pytest.raises(GraphError, match="duplicate"):
            b.add_node("x")

    def test_self_loop_rejected(self):
        b = GraphBuilder()
        b.add_node("x")
        with pytest.raises(GraphError, match="self-loop"):
            b.add_edge(0, 0)

    def test_unknown_node_rejected(self):
        b = GraphBuilder()
        b.add_node("x")
        with pytest.raises(GraphError, match="unknown"):
            b.add_edge(0, 5)

    @pytest.mark.parametrize("weight", [0.0, -1.0, float("inf"), float("nan")])
    def test_bad_weight_rejected(self, weight):
        b = GraphBuilder()
        b.add_nodes(["x", "y"])
        with pytest.raises(GraphError, match="weight"):
            b.add_edge(0, 1, weight)


class TestCostGraph:
    def test_basic_accessors(self):
        g = triangle()
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert g.label(0) == "a"
        assert g.node("c") == 2
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 0)
        assert g.edge_weight(1, 2) == 2.0

    def test_unknown_label(self):
        with pytest.raises(GraphError, match="unknown"):
            triangle().node("zzz")

    def test_parallel_edges_keep_minimum(self):
        g = CostGraph(["a", "b"], [(0, 1, 5.0), (0, 1, 2.0)])
        assert g.edge_weight(0, 1) == 2.0

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            CostGraph([], [])

    def test_neighbors_sorted(self):
        g = triangle()
        assert g.neighbors(1).tolist() == [0, 2]

    def test_shortest_path_prefers_cheap_route(self):
        g = triangle()
        # a->c direct costs 10, via b costs 3
        assert g.cost(0, 2) == 3.0
        assert g.shortest_path(0, 2) == [0, 1, 2]

    def test_shortest_path_trivial(self):
        assert triangle().shortest_path(1, 1) == [1]

    def test_unreachable(self):
        g = CostGraph(["a", "b", "c"], [(0, 1, 1.0)])
        assert not g.is_connected()
        with pytest.raises(GraphError, match="unreachable"):
            g.shortest_path(0, 2)
        with pytest.raises(GraphError):
            g.diameter()

    def test_diameter(self):
        assert triangle().diameter() == 3.0

    def test_distances_read_only(self):
        g = triangle()
        with pytest.raises(ValueError):
            g.distances[0, 0] = 5.0

    def test_matches_networkx_on_random_graphs(self):
        rng = np.random.default_rng(1)
        for _ in range(5):
            g = random_cost_graph(rng, 12)
            nxg = g.to_networkx()
            expected = dict(nx.all_pairs_dijkstra_path_length(nxg))
            for u in range(g.num_nodes):
                for v in range(g.num_nodes):
                    assert g.cost(u, v) == pytest.approx(expected[u][v])

    def test_shortest_path_is_valid_walk(self):
        rng = np.random.default_rng(2)
        g = random_cost_graph(rng, 10)
        for u, v in [(0, 9), (3, 7), (9, 1)]:
            path = g.shortest_path(u, v)
            assert path[0] == u and path[-1] == v
            cost = sum(g.edge_weight(a, b) for a, b in zip(path, path[1:]))
            assert cost == pytest.approx(g.cost(u, v))

    def test_reweighted(self):
        g = triangle()
        doubled = g.reweighted(lambda u, v, w: 2 * w)
        assert doubled.edge_weight(0, 1) == 2.0
        assert doubled.cost(0, 2) == 6.0
        assert g.edge_weight(0, 1) == 1.0  # original untouched
