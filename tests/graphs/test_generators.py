import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.generators import random_cost_graph


class TestRandomCostGraph:
    def test_connected_by_construction(self):
        for seed in range(5):
            g = random_cost_graph(seed, 12, edge_prob=0.05)
            assert g.is_connected()

    def test_deterministic_given_seed(self):
        a = random_cost_graph(3, 10)
        b = random_cost_graph(3, 10)
        assert a.edges == b.edges

    def test_weight_range(self):
        g = random_cost_graph(0, 15, weight_low=2.0, weight_high=3.0)
        assert all(2.0 <= w < 3.0 for _, _, w in g.edges)

    def test_edge_probability_scales_density(self):
        sparse = random_cost_graph(1, 20, edge_prob=0.05)
        dense = random_cost_graph(1, 20, edge_prob=0.8)
        assert dense.num_edges > sparse.num_edges

    def test_generator_input(self):
        rng = np.random.default_rng(5)
        g = random_cost_graph(rng, 8)
        assert g.num_nodes == 8


class TestParameterValidation:
    def test_rejects_zero_nodes(self):
        with pytest.raises(GraphError, match="num_nodes"):
            random_cost_graph(0, 0)

    def test_rejects_edge_prob_out_of_range(self):
        with pytest.raises(GraphError, match="edge_prob"):
            random_cost_graph(0, 5, edge_prob=1.5)
        with pytest.raises(GraphError, match="edge_prob"):
            random_cost_graph(0, 5, edge_prob=-0.1)

    def test_rejects_non_finite_weight_bounds(self):
        with pytest.raises(GraphError, match="finite"):
            random_cost_graph(0, 5, weight_high=np.inf)
        with pytest.raises(GraphError, match="finite"):
            random_cost_graph(0, 5, weight_low=np.nan)

    def test_rejects_inverted_or_negative_weight_bounds(self):
        with pytest.raises(GraphError, match="weight_low"):
            random_cost_graph(0, 5, weight_low=3.0, weight_high=1.0)
        with pytest.raises(GraphError, match="weight_low"):
            random_cost_graph(0, 5, weight_low=-1.0)
