import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.adjacency import CostGraph
from repro.graphs.metric_closure import (
    metric_closure,
    restrict_closure,
    satisfies_triangle_inequality,
)
from tests.conftest import random_cost_graph


class TestMetricClosure:
    def test_full_closure_is_distances(self, ft4):
        closure = metric_closure(ft4.graph)
        assert np.allclose(closure, ft4.graph.distances)

    def test_subset_closure(self, ft4):
        nodes = ft4.switches[:5]
        closure = metric_closure(ft4.graph, nodes)
        for i, u in enumerate(nodes):
            for j, v in enumerate(nodes):
                assert closure[i, j] == ft4.graph.cost(int(u), int(v))

    def test_duplicates_rejected(self, ft4):
        with pytest.raises(GraphError, match="duplicates"):
            metric_closure(ft4.graph, [0, 0, 1])

    def test_out_of_range_rejected(self, ft4):
        with pytest.raises(GraphError, match="out-of-range"):
            metric_closure(ft4.graph, [0, 10_000])

    def test_disconnected_rejected(self):
        g = CostGraph(["a", "b", "c"], [(0, 1, 1.0)])
        with pytest.raises(GraphError, match="disconnected"):
            metric_closure(g)

    def test_writable_output(self, ft4):
        closure = metric_closure(ft4.graph)
        closure[0, 0] = 1.0  # must not raise: closures are caller-owned copies


class TestRestrictClosure:
    def test_restrict(self):
        mat = np.arange(16, dtype=float).reshape(4, 4)
        sub = restrict_closure(mat, [1, 3])
        assert sub.tolist() == [[5.0, 7.0], [13.0, 15.0]]


class TestTriangleInequality:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(4, 12))
    def test_closures_always_satisfy(self, seed, n):
        rng = np.random.default_rng(seed)
        g = random_cost_graph(rng, n)
        assert satisfies_triangle_inequality(metric_closure(g))

    def test_detects_violation(self):
        mat = np.asarray([[0.0, 1.0, 5.0], [1.0, 0.0, 1.0], [5.0, 1.0, 0.0]])
        assert not satisfies_triangle_inequality(mat)

    def test_non_square_rejected(self):
        with pytest.raises(GraphError):
            satisfies_triangle_inequality(np.ones((2, 3)))
