"""Disconnected-graph behaviour: unreachable pairs are inf, paths fail loudly.

The fault-degradation layer (:mod:`repro.faults.degrade`) produces
disconnected graphs on purpose, so every all-pairs backend and path
reconstruction must have well-defined semantics for unreachable pairs
rather than garbage distances or silent empty paths.
"""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.adjacency import CostGraph
from repro.graphs.floyd_warshall import floyd_warshall, floyd_warshall_matrix
from repro.graphs.shortest_paths import (
    all_pairs_shortest_paths,
    bfs_distances,
    dijkstra,
    reconstruct_path,
)


def two_islands() -> CostGraph:
    """Nodes {0,1} and {2,3} with no edge between the islands."""
    return CostGraph(["a", "b", "c", "d"], [(0, 1, 1.0), (2, 3, 2.0)])


class TestUnreachableDistances:
    def test_dijkstra_reports_inf(self):
        dist, pred = dijkstra(two_islands(), 0)
        assert dist[1] == 1.0
        assert np.isinf(dist[2]) and np.isinf(dist[3])
        assert pred[2] == -1 and pred[3] == -1

    def test_bfs_reports_inf(self):
        dist, pred = bfs_distances(two_islands(), 2)
        assert dist[3] == 1.0
        assert np.isinf(dist[0]) and np.isinf(dist[1])
        assert pred[0] == -1

    def test_all_pairs_reference_reports_inf(self):
        dist = all_pairs_shortest_paths(two_islands())
        assert np.isinf(dist[0, 2]) and np.isinf(dist[3, 1])
        assert dist[0, 1] == 1.0 and dist[2, 3] == 2.0

    def test_cached_distances_report_inf(self):
        g = two_islands()
        assert np.isinf(g.distances[0, 3])
        assert not g.is_connected()

    def test_floyd_warshall_reports_inf(self):
        g = two_islands()
        dist = floyd_warshall(g)
        assert np.isinf(dist[0, 2])
        np.testing.assert_allclose(dist, g.distances)

    def test_floyd_warshall_matrix_isolated_node(self):
        w = np.full((3, 3), np.inf)
        np.fill_diagonal(w, 0.0)
        w[0, 1] = w[1, 0] = 4.0
        dist = floyd_warshall_matrix(w)
        assert dist[0, 1] == 4.0
        assert np.isinf(dist[0, 2]) and np.isinf(dist[2, 1])

    def test_backends_agree_on_disconnected(self):
        g = two_islands()
        np.testing.assert_allclose(all_pairs_shortest_paths(g), floyd_warshall(g))


class TestPathReconstructionFailsLoudly:
    def test_shortest_path_raises_on_unreachable(self):
        with pytest.raises(GraphError, match="unreachable"):
            two_islands().shortest_path(0, 3)

    def test_reconstruct_path_raises_on_unreachable(self):
        _, pred = dijkstra(two_islands(), 0)
        with pytest.raises(GraphError, match="unreachable"):
            reconstruct_path(pred, 0, 2)

    def test_reachable_half_still_works(self):
        g = two_islands()
        assert g.shortest_path(2, 3) == [2, 3]
        _, pred = dijkstra(g, 0)
        assert reconstruct_path(pred, 0, 1) == [0, 1]

    def test_diameter_raises_on_disconnected(self):
        with pytest.raises(GraphError, match="disconnected"):
            two_islands().diameter()
