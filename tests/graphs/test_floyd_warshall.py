import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.floyd_warshall import floyd_warshall, floyd_warshall_matrix
from repro.graphs.generators import random_cost_graph


class TestFloydWarshall:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2000), n=st.integers(3, 15))
    def test_matches_dijkstra_backend(self, seed, n):
        g = random_cost_graph(seed, n)
        assert np.allclose(floyd_warshall(g), g.distances)

    def test_matches_on_fat_tree(self, ft4):
        assert np.allclose(floyd_warshall(ft4.graph), ft4.graph.distances)

    def test_disconnected_stays_inf(self):
        weights = np.full((3, 3), np.inf)
        np.fill_diagonal(weights, 0.0)
        weights[0, 1] = weights[1, 0] = 1.0
        dist = floyd_warshall_matrix(weights)
        assert np.isinf(dist[0, 2])
        assert dist[0, 1] == 1.0

    def test_input_not_modified(self):
        weights = np.asarray([[0.0, 5.0], [5.0, 0.0]])
        before = weights.copy()
        floyd_warshall_matrix(weights)
        assert np.array_equal(weights, before)

    def test_non_square_rejected(self):
        with pytest.raises(GraphError):
            floyd_warshall_matrix(np.ones((2, 3)))

    def test_negative_cycle_rejected(self):
        weights = np.asarray([[0.0, -2.0], [-2.0, 0.0]])
        with pytest.raises(GraphError, match="negative cycle"):
            floyd_warshall_matrix(weights)
