import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.adjacency import GraphBuilder
from repro.graphs.paths import (
    closure_walk_cost,
    count_distinct_intermediates,
    has_immediate_backtrack,
    is_walk,
    walk_cost,
)


@pytest.fixture()
def path_graph():
    b = GraphBuilder()
    b.add_nodes(["a", "b", "c", "d"])
    b.add_edge(0, 1, 1.0)
    b.add_edge(1, 2, 2.0)
    b.add_edge(2, 3, 3.0)
    return b.build()


class TestIsWalk:
    def test_valid_walk_with_revisit(self, path_graph):
        assert is_walk(path_graph, [0, 1, 2, 1, 2, 3])

    def test_missing_edge(self, path_graph):
        assert not is_walk(path_graph, [0, 2])

    def test_single_node(self, path_graph):
        assert is_walk(path_graph, [2])
        assert not is_walk(path_graph, [9])

    def test_empty(self, path_graph):
        assert not is_walk(path_graph, [])


class TestWalkCost:
    def test_cost_sums_edges(self, path_graph):
        assert walk_cost(path_graph, [0, 1, 2, 3]) == 6.0

    def test_revisits_counted(self, path_graph):
        assert walk_cost(path_graph, [0, 1, 0, 1]) == 3.0

    def test_invalid_walk_rejected(self, path_graph):
        with pytest.raises(GraphError):
            walk_cost(path_graph, [0, 3])

    def test_single_node_zero(self, path_graph):
        assert walk_cost(path_graph, [1]) == 0.0


class TestClosureWalkCost:
    def test_matches_matrix(self):
        closure = np.asarray([[0.0, 2.0], [2.0, 0.0]])
        assert closure_walk_cost(closure, [0, 1, 0]) == 4.0

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            closure_walk_cost(np.zeros((2, 2)), [])


class TestCountDistinct:
    def test_excludes_endpoints_everywhere(self):
        # source 0 reappears mid-walk and must not count
        assert count_distinct_intermediates([0, 1, 0, 2, 3], endpoints=[0, 3]) == 2

    def test_repeats_counted_once(self):
        assert count_distinct_intermediates([0, 1, 1, 1, 2], endpoints=[0, 2]) == 1

    def test_tour_endpoints(self):
        assert count_distinct_intermediates([0, 1, 2, 0], endpoints=[0, 0]) == 2

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            count_distinct_intermediates([], endpoints=[0])


class TestBacktrack:
    def test_detects_aba(self):
        assert has_immediate_backtrack([3, 5, 3])

    def test_clean_walk(self):
        assert not has_immediate_backtrack([0, 1, 2, 0, 1])

    def test_short_walks(self):
        assert not has_immediate_backtrack([0, 1])
        assert not has_immediate_backtrack([0])
