import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.adjacency import CostGraph
from repro.graphs.shortest_paths import (
    all_pairs_shortest_paths,
    bfs_distances,
    dijkstra,
    reconstruct_path,
)
from tests.conftest import random_cost_graph


class TestDijkstra:
    def test_matches_cached_apsp(self):
        rng = np.random.default_rng(3)
        for _ in range(4):
            g = random_cost_graph(rng, 14)
            for source in (0, 5, 13):
                dist, _ = dijkstra(g, source)
                assert np.allclose(dist, g.distances[source])

    def test_source_out_of_range(self):
        g = CostGraph(["a"], [])
        with pytest.raises(GraphError):
            dijkstra(g, 4)

    def test_predecessors_reconstruct(self):
        rng = np.random.default_rng(4)
        g = random_cost_graph(rng, 10)
        dist, pred = dijkstra(g, 0)
        for target in range(1, 10):
            path = reconstruct_path(pred, 0, target)
            cost = sum(g.edge_weight(a, b) for a, b in zip(path, path[1:]))
            assert cost == pytest.approx(dist[target])

    def test_unreachable_has_inf(self):
        g = CostGraph(["a", "b", "c"], [(0, 1, 1.0)])
        dist, pred = dijkstra(g, 0)
        assert np.isinf(dist[2])
        with pytest.raises(GraphError, match="unreachable"):
            reconstruct_path(pred, 0, 2)


class TestBfs:
    def test_counts_hops_ignoring_weights(self):
        g = CostGraph(["a", "b", "c"], [(0, 1, 100.0), (1, 2, 100.0), (0, 2, 1.0)])
        dist, _ = bfs_distances(g, 0)
        assert dist.tolist() == [0.0, 1.0, 1.0]

    def test_matches_dijkstra_on_unit_weights(self, ft4):
        bfs, _ = bfs_distances(ft4.graph, int(ft4.hosts[0]))
        dij, _ = dijkstra(ft4.graph, int(ft4.hosts[0]))
        assert np.allclose(bfs, dij)


class TestAllPairs:
    def test_matches_cached(self):
        rng = np.random.default_rng(5)
        g = random_cost_graph(rng, 9)
        assert np.allclose(all_pairs_shortest_paths(g), g.distances)


class TestReconstructPath:
    def test_trivial(self):
        assert reconstruct_path(np.asarray([-1]), 0, 0) == [0]
