"""Cross-module integration tests: the full pipeline on every fabric type.

For each topology family the paper's workflow runs end to end — workload
generation, TOP placement, a traffic change, TOM migration — and the
framework-level invariants are asserted:

* every algorithm returns valid distinct-switch placements;
* Optimal <= DP <= baselines (placement) and
  Optimal <= mPareto <= NoMigration (migration) under shared costs;
* Eq. 8's scalarization identity C_t = C_a + C_b holds everywhere.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    FacebookTrafficModel,
    bcube,
    fat_tree,
    jellyfish,
    leaf_spine,
    linear_ppdc,
    place_vm_pairs,
    vl2,
)
from repro.baselines import greedy_liu_placement, steering_placement
from repro.core import (
    CostContext,
    dp_placement,
    mpareto_migration,
    no_migration,
    optimal_migration,
    optimal_placement,
)

TOPOLOGIES = [
    pytest.param(lambda: fat_tree(4), id="fat-tree"),
    pytest.param(lambda: leaf_spine(4, 2, 4), id="leaf-spine"),
    pytest.param(lambda: vl2(2, 4, 2, 2), id="vl2"),
    pytest.param(lambda: bcube(4, 1), id="bcube"),
    pytest.param(lambda: jellyfish(12, 4, 2, seed=0), id="jellyfish"),
    pytest.param(lambda: linear_ppdc(6, hosts_per_end=3), id="linear"),
]


@pytest.mark.parametrize("make_topo", TOPOLOGIES)
class TestFullPipeline:
    def test_place_perturb_migrate(self, make_topo):
        topo = make_topo()
        model = FacebookTrafficModel()
        n = 3
        flows = place_vm_pairs(topo, 10, seed=7)
        flows = flows.with_rates(model.sample(10, rng=7))

        placed = dp_placement(topo, flows, n)
        opt = optimal_placement(topo, flows, n, budget=500_000)
        steering = steering_placement(topo, flows, n)
        greedy = greedy_liu_placement(topo, flows, n)
        assert opt.cost <= placed.cost + 1e-6
        assert placed.cost <= steering.cost + 1e-6
        assert placed.cost <= greedy.cost + 1e-6

        new_flows = flows.with_rates(model.sample(10, rng=8))
        ctx = CostContext(topo, new_flows)
        stay = no_migration(topo, new_flows, placed.placement)
        moved = mpareto_migration(topo, new_flows, placed.placement, mu=10.0)
        exact = optimal_migration(
            topo, new_flows, placed.placement, mu=10.0, budget=500_000
        )
        assert exact.cost <= moved.cost + 1e-6
        assert moved.cost <= stay.cost + 1e-6
        # Eq. 8 identity on every result
        for result in (moved, exact, stay):
            assert result.cost == pytest.approx(
                result.communication_cost + result.migration_cost
            )
            assert result.communication_cost == pytest.approx(
                ctx.communication_cost(result.migration)
            )


class TestScalarizationProperty:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 300), mu=st.floats(0.0, 1e4))
    def test_eq8_identity(self, ft4, seed, mu):
        """C_t(p, m) == C_b(p, m) + C_a(m) for arbitrary placements."""
        model = FacebookTrafficModel()
        flows = place_vm_pairs(ft4, 6, seed=seed)
        flows = flows.with_rates(model.sample(6, rng=seed))
        ctx = CostContext(ft4, flows)
        rng = np.random.default_rng(seed)
        p = rng.choice(ft4.switches, size=3, replace=False)
        m = rng.choice(ft4.switches, size=3, replace=False)
        assert ctx.total_cost(p, m, mu) == pytest.approx(
            ctx.migration_cost(p, m, mu) + ctx.communication_cost(m)
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 300))
    def test_migration_sandwich(self, ft4, seed):
        """Optimal <= mPareto <= NoMigration for random perturbations."""
        model = FacebookTrafficModel()
        flows = place_vm_pairs(ft4, 6, seed=seed)
        flows = flows.with_rates(model.sample(6, rng=seed))
        source = dp_placement(ft4, flows, 3).placement
        new_flows = flows.with_rates(model.sample(6, rng=seed + 1))
        mu = 50.0
        opt = optimal_migration(ft4, new_flows, source, mu)
        mp = mpareto_migration(ft4, new_flows, source, mu)
        stay = no_migration(ft4, new_flows, source)
        assert opt.cost <= mp.cost + 1e-6
        assert mp.cost <= stay.cost + 1e-6
