import numpy as np
import pytest

from repro.baselines.random_placement import (
    random_placement,
    random_placement_quantiles,
)
from repro.core.optimal import optimal_placement
from repro.core.placement import dp_placement
from repro.errors import InfeasibleError
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


@pytest.fixture()
def workload(ft4):
    flows = place_vm_pairs(ft4, 10, seed=161)
    return flows.with_rates(FacebookTrafficModel().sample(10, rng=161))


class TestRandomPlacement:
    def test_valid_and_deterministic(self, ft4, workload):
        a = random_placement(ft4, workload, 4, seed=5)
        b = random_placement(ft4, workload, 4, seed=5)
        assert np.array_equal(a.placement, b.placement)
        assert len(set(a.placement.tolist())) == 4

    def test_never_beats_optimal(self, ft4, workload):
        opt = optimal_placement(ft4, workload, 3)
        for seed in range(10):
            rand = random_placement(ft4, workload, 3, seed=seed)
            assert rand.cost >= opt.cost - 1e-9

    def test_dp_beats_median_random(self, ft4, workload):
        quantiles = random_placement_quantiles(ft4, workload, 4, samples=100, seed=0)
        dp = dp_placement(ft4, workload, 4)
        assert dp.cost <= quantiles["median"] + 1e-9
        assert quantiles["min"] <= quantiles["median"] <= quantiles["max"]

    def test_infeasible(self, ft4, workload):
        with pytest.raises(InfeasibleError):
            random_placement(ft4, workload, ft4.num_switches + 1)
        with pytest.raises(InfeasibleError):
            random_placement_quantiles(ft4, workload, 2, samples=0)
