import itertools

import numpy as np
import pytest

from repro.baselines.greedy_liu import greedy_liu_placement
from repro.baselines.steering import steering_placement
from repro.core.costs import CostContext
from repro.core.optimal import optimal_placement
from repro.core.placement import dp_placement
from repro.errors import InfeasibleError
from repro.workload.flows import place_vm_pairs
from repro.workload.sfc import sfc_of_size
from repro.workload.traffic import FacebookTrafficModel


@pytest.fixture()
def workload(ft4):
    flows = place_vm_pairs(ft4, 12, seed=33)
    return flows.with_rates(FacebookTrafficModel().sample(12, rng=33))


@pytest.mark.parametrize("algorithm", [steering_placement, greedy_liu_placement])
class TestBaselineContracts:
    """Shared contracts every placement baseline must honour."""

    def test_valid_distinct_placement(self, ft4, workload, algorithm):
        result = algorithm(ft4, workload, 4)
        assert result.num_vnfs == 4
        assert len(set(result.placement.tolist())) == 4
        switch_set = set(ft4.switches.tolist())
        assert all(int(s) in switch_set for s in result.placement)

    def test_reported_cost_matches_model(self, ft4, workload, algorithm):
        result = algorithm(ft4, workload, 3)
        ctx = CostContext(ft4, workload)
        assert result.cost == pytest.approx(ctx.communication_cost(result.placement))

    def test_never_beats_optimal(self, ft4, workload, algorithm):
        for n in (2, 3):
            base = algorithm(ft4, workload, n)
            opt = optimal_placement(ft4, workload, n)
            assert base.cost >= opt.cost - 1e-9

    def test_deterministic(self, ft4, workload, algorithm):
        a = algorithm(ft4, workload, 4)
        b = algorithm(ft4, workload, 4)
        assert np.array_equal(a.placement, b.placement)

    def test_accepts_sfc(self, ft4, workload, algorithm):
        assert algorithm(ft4, workload, sfc_of_size(3)).num_vnfs == 3

    def test_infeasible_rejected(self, ft4, workload, algorithm):
        with pytest.raises(InfeasibleError):
            algorithm(ft4, workload, ft4.num_switches + 1)


class TestPaperShape:
    def test_dp_beats_baselines_on_average(self, ft4):
        """Fig. 9/10's qualitative claim: DP < Steering and DP < Greedy.

        Checked as an average over several workloads (individual instances
        can tie on small fabrics).
        """
        dp_total = steering_total = greedy_total = 0.0
        for seed in range(6):
            flows = place_vm_pairs(ft4, 10, seed=seed)
            flows = flows.with_rates(FacebookTrafficModel().sample(10, rng=seed))
            dp_total += dp_placement(ft4, flows, 5).cost
            steering_total += steering_placement(ft4, flows, 5).cost
            greedy_total += greedy_liu_placement(ft4, flows, 5).cost
        assert dp_total < steering_total
        assert dp_total < greedy_total

    def test_steering_is_chain_blind_by_default(self, ft4, workload):
        """Default Steering scores every location by subscriber attraction
        only (the single-SFC degeneration): the chosen switches are the n
        individually best by a_in + a_out, visited in chain order."""
        n = 3
        result = steering_placement(ft4, workload, n)
        ctx = CostContext(ft4, workload)
        score = (
            ctx.ingress_attraction[ft4.switches] + ctx.egress_attraction[ft4.switches]
        )
        expected = ft4.switches[np.argsort(score, kind="stable")[:n]]
        assert result.placement.tolist() == expected.tolist()

    def test_steering_chain_aware_variant(self, ft4, workload):
        """The charitable variant starts at the ingress-attraction argmin."""
        result = steering_placement(ft4, workload, 3, chain_aware=True)
        ctx = CostContext(ft4, workload)
        a_in = ctx.ingress_attraction[ft4.switches]
        assert result.ingress == int(ft4.switches[int(np.argmin(a_in))])

    def test_chain_aware_usually_cheaper(self, ft4):
        """The chain-aware readings cannot be worse on average — the whole
        point of the degeneration is that chain-blindness costs traffic."""
        from repro.baselines.greedy_liu import greedy_liu_placement as greedy

        blind = aware = 0.0
        for seed in range(5):
            flows = place_vm_pairs(ft4, 10, seed=seed)
            flows = flows.with_rates(FacebookTrafficModel().sample(10, rng=seed))
            for algo in (steering_placement, greedy):
                blind += algo(ft4, flows, 5).cost
                aware += algo(ft4, flows, 5, chain_aware=True).cost
        assert aware <= blind
