import numpy as np
import pytest

from repro.baselines.common import (
    apply_vm_moves,
    default_host_capacity,
    host_occupancy,
    resolve_host_capacity,
    vm_table,
)
from repro.baselines.mcf_migration import mcf_vm_migration
from repro.baselines.plan import plan_vm_migration
from repro.core.costs import CostContext
from repro.core.placement import dp_placement
from repro.errors import MigrationError
from repro.workload.flows import FlowSet, place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


@pytest.fixture()
def workload(ft4):
    flows = place_vm_pairs(ft4, 10, seed=44)
    return flows.with_rates(FacebookTrafficModel().sample(10, rng=44))


@pytest.fixture()
def placement(ft4, workload):
    return dp_placement(ft4, workload, 3).placement


class TestCommon:
    def test_vm_table_layout(self, workload):
        hosts, anchors, rates, flow_ids = vm_table(workload, ingress=100, egress=200)
        l = workload.num_flows
        assert hosts.size == 2 * l
        assert np.array_equal(hosts[:l], workload.sources)
        assert np.array_equal(hosts[l:], workload.destinations)
        assert set(anchors[:l]) == {100}
        assert set(anchors[l:]) == {200}
        assert np.array_equal(rates[:l], workload.rates)
        assert flow_ids[0] == flow_ids[l]

    def test_host_occupancy(self, ft4, workload):
        occ = host_occupancy(ft4, workload)
        assert occ.sum() == 2 * workload.num_flows
        assert occ.shape == (ft4.num_hosts,)

    def test_default_capacity_adds_free_slots(self, ft4, workload):
        occ = host_occupancy(ft4, workload)
        cap = default_host_capacity(ft4, workload, free_slots=2)
        assert np.array_equal(cap, occ + 2)

    def test_resolve_scalar(self, ft4, workload):
        occ = host_occupancy(ft4, workload)
        cap = resolve_host_capacity(ft4, workload, int(occ.max()) + 1)
        assert np.all(cap == occ.max() + 1)

    def test_resolve_rejects_undersized(self, ft4, workload):
        with pytest.raises(MigrationError):
            resolve_host_capacity(ft4, workload, 0)

    def test_apply_vm_moves(self, ft4, workload):
        hosts = np.concatenate([workload.sources, workload.destinations]).copy()
        hosts[0] = int(ft4.hosts[-1])
        new_flows, moved = apply_vm_moves(workload, hosts)
        assert moved.sum() >= 1
        assert new_flows.sources[0] == int(ft4.hosts[-1])
        assert np.array_equal(new_flows.rates, workload.rates)

    def test_apply_vm_moves_shape_guard(self, workload):
        with pytest.raises(MigrationError):
            apply_vm_moves(workload, np.zeros(3, dtype=np.int64))


@pytest.mark.parametrize("migrate", [plan_vm_migration, mcf_vm_migration])
class TestVmBaselineContracts:
    def test_improves_or_stays(self, ft4, workload, placement, migrate):
        """Total cost after (comm + migration) never exceeds staying put."""
        ctx = CostContext(ft4, workload)
        stay = ctx.communication_cost(placement)
        result = migrate(ft4, workload, placement, mu_vm=10.0)
        assert result.cost <= stay + 1e-6

    def test_huge_mu_freezes(self, ft4, workload, placement, migrate):
        result = migrate(ft4, workload, placement, mu_vm=1e12)
        assert result.num_migrated == 0
        assert result.migration_cost == 0.0

    def test_capacity_respected(self, ft4, workload, placement, migrate):
        cap = resolve_host_capacity(ft4, workload, None)
        result = migrate(ft4, workload, placement, mu_vm=1.0, host_capacity=cap)
        occ = host_occupancy(ft4, result.flows)
        assert np.all(occ <= cap)

    def test_rates_preserved(self, ft4, workload, placement, migrate):
        result = migrate(ft4, workload, placement, mu_vm=1.0)
        assert np.array_equal(result.flows.rates, workload.rates)

    def test_cost_decomposition(self, ft4, workload, placement, migrate):
        result = migrate(ft4, workload, placement, mu_vm=5.0)
        ctx = CostContext(ft4, result.flows)
        assert result.communication_cost == pytest.approx(
            ctx.communication_cost(placement)
        )
        assert result.cost == pytest.approx(
            result.communication_cost + result.migration_cost
        )

    def test_migration_cost_matches_moves(self, ft4, workload, placement, migrate):
        result = migrate(ft4, workload, placement, mu_vm=3.0)
        old = np.concatenate([workload.sources, workload.destinations])
        new = np.concatenate([result.flows.sources, result.flows.destinations])
        dist = ft4.graph.distances
        expected = 3.0 * dist[old, new].sum()
        assert result.migration_cost == pytest.approx(expected)
        assert result.num_migrated == int((old != new).sum())


class TestMcfSpecifics:
    def test_mcf_no_worse_than_plan_at_cheap_mu(self, ft4, workload, placement):
        """MCF solves the assignment exactly; PLAN is greedy, so on the
        same instance with identical capacities MCF should not lose."""
        cap = resolve_host_capacity(ft4, workload, None)
        mcf = mcf_vm_migration(ft4, workload, placement, mu_vm=1.0, host_capacity=cap)
        plan = plan_vm_migration(ft4, workload, placement, mu_vm=1.0, host_capacity=cap)
        assert mcf.cost <= plan.cost + 1e-6

    def test_unconstrained_is_per_vm_argmin(self, ft4, workload, placement):
        """With ample capacity MCF must reach every VM's individual optimum."""
        huge_cap = np.full(ft4.num_hosts, 1000)
        result = mcf_vm_migration(
            ft4, workload, placement, mu_vm=1.0, host_capacity=huge_cap
        )
        hosts, anchors, rates, _ = vm_table(
            workload, int(placement[0]), int(placement[-1])
        )
        dist = ft4.graph.distances
        total = rates[:, None] * dist[anchors][:, ft4.hosts] + 1.0 * dist[hosts][
            :, ft4.hosts
        ]
        expected = total.min(axis=1).sum()
        new_hosts = np.concatenate([result.flows.sources, result.flows.destinations])
        achieved = sum(
            total[v, int(np.searchsorted(ft4.hosts, h))]
            for v, h in enumerate(new_hosts)
        )
        assert achieved == pytest.approx(expected)


class TestAssignmentSolver:
    def test_lap_matches_ssp_transportation(self):
        """The slot-expanded LAP and the SSP solver agree on random instances."""
        from repro.baselines.mcf_migration import _assign_with_slots
        from repro.flow.mincostflow import solve_transportation

        rng = np.random.default_rng(0)
        for _ in range(10):
            rows = int(rng.integers(3, 10))
            cols = int(rng.integers(2, 6))
            cap = rng.integers(1, 4, size=cols)
            while cap.sum() < rows:
                cap[int(rng.integers(cols))] += 1
            cost = rng.uniform(1, 20, size=(rows, cols))
            chosen = _assign_with_slots(cost, cap)
            lap_cost = float(cost[np.arange(rows), chosen].sum())
            _, ssp_cost = solve_transportation(
                cost, np.ones(rows, dtype=np.int64), cap
            )
            assert lap_cost == pytest.approx(ssp_cost)
            # capacities respected
            counts = np.bincount(chosen, minlength=cols)
            assert np.all(counts <= cap)

    def test_infeasible_slots(self):
        from repro.baselines.mcf_migration import _assign_with_slots
        from repro.errors import InfeasibleError

        with pytest.raises(InfeasibleError):
            _assign_with_slots(np.ones((3, 2)), np.asarray([1, 1]))
