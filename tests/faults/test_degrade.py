"""Unit tests for degraded views and connectivity audits (repro.faults.degrade)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultState, degrade
from repro.workload.flows import FlowSet

pytestmark = pytest.mark.faults


# fat_tree(2) layout: hosts 0, 1; edge switches 2, 3; aggregation 4, 5;
# core 6; edges h0-s2, h1-s3, s2-s4, s3-s5, s4-s6, s5-s6.


class TestDegradedView:
    def test_healthy_state_is_identity(self, ft2):
        view, audit = degrade(ft2, FaultState())
        assert view.graph.num_nodes == ft2.graph.num_nodes
        assert set(view.graph.edges) == set(ft2.graph.edges)
        assert not audit.is_partitioned
        assert audit.failed_switches.size == 0
        assert list(audit.surviving_switches) == [int(s) for s in ft2.switches]
        assert list(audit.surviving_hosts) == [int(h) for h in ft2.hosts]

    def test_node_set_preserved_failed_nodes_isolated(self, ft2):
        view, _ = degrade(ft2, FaultState(failed_switches=(4,)))
        # index compatibility: same node count, same labels
        assert view.graph.num_nodes == ft2.graph.num_nodes
        assert view.graph.labels == ft2.graph.labels
        assert all(4 not in (u, v) for u, v, _ in view.graph.edges)

    def test_degraded_view_allows_disconnection_and_tags_meta(self, ft2):
        view, _ = degrade(ft2, FaultState(failed_switches=(4,)))
        assert view.meta["allow_disconnected"] is True
        assert view.meta["faults"] == FaultState(failed_switches=(4,)).to_dict()
        assert view.name.endswith("/degraded")

    def test_degraded_distances_report_inf_for_cut_pairs(self, ft2):
        # killing aggregation switch 4 cuts {0, 2} off from the rest
        view, _ = degrade(ft2, FaultState(failed_switches=(4,)))
        distances = view.graph.distances
        assert np.isinf(distances[0, 1])
        assert np.isinf(distances[2, 6])
        assert np.isfinite(distances[0, 2])
        assert np.isfinite(distances[1, 6])

    def test_failed_link_removed_without_killing_nodes(self, ft2):
        view, audit = degrade(ft2, FaultState(failed_links=((4, 6),)))
        assert (4, 6, 1.0) not in view.graph.edges
        assert audit.failed_switches.size == 0
        # switch 4 (and edge switch 2, host 0) now only reach the rest
        # via... nothing: 4's sole uplink is gone, so they are partitioned
        assert audit.is_partitioned
        assert 4 in audit.partitioned_switches.tolist()


class TestConnectivityAudit:
    def test_surviving_component_has_most_switches(self, ft2):
        _, audit = degrade(ft2, FaultState(failed_switches=(4,)))
        # live components: {0, 2} (one switch) vs {1, 3, 5, 6} (three)
        assert audit.components[0] == (1, 3, 5, 6)
        assert list(audit.surviving_switches) == [3, 5, 6]
        assert list(audit.surviving_hosts) == [1]
        assert list(audit.partitioned_switches) == [2]
        assert list(audit.partitioned_hosts) == [0]
        assert audit.is_partitioned
        assert audit.num_live_switches == 3

    def test_failed_hosts_recorded(self, ft2):
        _, audit = degrade(ft2, FaultState(failed_hosts=(0,)))
        assert list(audit.failed_hosts) == [0]
        assert 0 not in audit.surviving_hosts.tolist()
        assert not audit.is_partitioned

    def test_audit_arrays_read_only(self, ft2):
        _, audit = degrade(ft2, FaultState(failed_switches=(4,)))
        with pytest.raises(ValueError):
            audit.surviving_switches[0] = 99

    def test_dropped_flow_mask(self, ft2):
        _, audit = degrade(ft2, FaultState(failed_switches=(4,)))
        # host 0 is partitioned: any flow touching it is dropped
        flows = FlowSet(
            sources=[0, 1, 0], destinations=[1, 1, 0], rates=[1.0, 2.0, 3.0]
        )
        mask = audit.dropped_flow_mask(flows)
        assert mask.dtype == bool
        assert mask.tolist() == [True, False, True]

    def test_dropped_flow_mask_on_failed_host(self, ft2):
        _, audit = degrade(ft2, FaultState(failed_hosts=(1,)))
        flows = FlowSet(sources=[0, 1], destinations=[1, 0], rates=[1.0, 1.0])
        assert audit.dropped_flow_mask(flows).tolist() == [True, True]

    def test_to_dict_is_json_friendly(self, ft2):
        import json

        _, audit = degrade(ft2, FaultState(failed_switches=(4,), failed_hosts=(0,)))
        payload = json.dumps(audit.to_dict(), sort_keys=True)
        assert "surviving_switches" in payload
