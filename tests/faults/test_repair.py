"""Unit tests for forced evacuation plans (repro.faults.repair)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InfeasibleError
from repro.faults import evacuate

pytestmark = pytest.mark.faults


def _distances(ft2):
    return ft2.graph.distances


class TestEvacuate:
    def test_stay_put_when_all_allowed(self, ft2):
        plan = evacuate([2, 3], np.array([2, 3, 4]), _distances(ft2))
        assert plan.placement.tolist() == [2, 3]
        assert plan.moves == ()
        assert plan.num_moves == 0
        assert plan.distance == 0.0

    def test_moves_to_nearest_allowed_switch(self, ft2):
        # VNF on dead switch 4; allowed {3, 5, 6}.  Healthy distances from
        # 4: d(4,6)=1, d(4,5)=2, d(4,3)=3 — nearest free is 6.
        plan = evacuate([4], np.array([3, 5, 6]), _distances(ft2))
        assert plan.placement.tolist() == [6]
        assert plan.moves == ((0, 4, 6),)
        assert plan.distance == pytest.approx(
            float(_distances(ft2)[4, 6])
        )

    def test_occupied_targets_are_skipped(self, ft2):
        # both VNFs stranded on 2 and 4; allowed {5, 6}.  Chain order:
        # VNF 0 (on 2) takes the nearer of {5, 6}; VNF 1 takes the rest.
        distances = _distances(ft2)
        plan = evacuate([2, 4], np.array([5, 6]), distances)
        assert sorted(plan.placement.tolist()) == [5, 6]
        assert len(plan.moves) == 2
        assert len(set(p for _, _, p in plan.moves)) == 2
        want = sum(distances[a, b] for _, a, b in plan.moves)
        assert plan.distance == pytest.approx(float(want))

    def test_surviving_occupants_block_their_switch(self, ft2):
        # VNF 0 already sits on allowed switch 6 — the evacuee may not
        # land there even if it is nearest
        plan = evacuate([6, 4], np.array([5, 6]), _distances(ft2))
        assert plan.placement.tolist() == [6, 5]
        assert plan.moves == ((1, 4, 5),)

    def test_tie_breaks_toward_smaller_switch_index(self, ft2):
        # from switch 2 the healthy distances to 5 and 3 are both... use a
        # uniform table instead to force an exact tie
        uniform = np.ones_like(_distances(ft2))
        plan = evacuate([2], np.array([6, 5, 3]), uniform)
        assert plan.placement.tolist() == [3]

    def test_distance_priced_on_given_table(self, ft2):
        distances = _distances(ft2) * 10.0
        plan = evacuate([4], np.array([6]), distances)
        assert plan.distance == pytest.approx(float(distances[4, 6]))

    def test_infeasible_when_too_few_switches(self, ft2):
        with pytest.raises(InfeasibleError) as excinfo:
            evacuate([2, 4, 5], np.array([6]), _distances(ft2))
        diagnosis = excinfo.value.diagnosis
        assert diagnosis["reason"] == "too_few_surviving_switches"
        assert diagnosis["num_vnfs"] == 3
        assert diagnosis["surviving_switches"] == [6]

    def test_infeasible_diagnosis_merges_caller_context(self, ft2):
        with pytest.raises(InfeasibleError) as excinfo:
            evacuate(
                [2, 4],
                np.array([6]),
                _distances(ft2),
                diagnosis={"hour": 7},
            )
        assert excinfo.value.diagnosis["hour"] == 7
        assert excinfo.value.diagnosis["reason"] == "too_few_surviving_switches"

    def test_deterministic(self, ft2):
        runs = [
            evacuate([2, 4], np.array([3, 5, 6]), _distances(ft2)).to_dict()
            for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_plan_placement_read_only(self, ft2):
        plan = evacuate([4], np.array([6]), _distances(ft2))
        with pytest.raises(ValueError):
            plan.placement[0] = 0
