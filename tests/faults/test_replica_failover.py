"""Replica-aware evacuation: free failovers in the fault loop.

A stranded VNF with a live replica instance on a surviving switch
promotes it (the copy is retired) instead of paying a bulk move — so
``repair_cost`` is priced from the *paid* moves only and the fig12-style
fault loop agrees with the pricing audit in ``verify.faults`` /
``verify.replication``.  Unit tests pin :func:`repro.faults.repair.
evacuate`; integration tests pin the engine on identical fault streams.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.placement import dp_placement
from repro.errors import InfeasibleError
from repro.faults import FaultConfig, FaultProcess
from repro.faults.repair import evacuate
from repro.sim.engine import simulate_day
from repro.sim.policies import MParetoPolicy, TomReplicationPolicy
from repro.workload.diurnal import DiurnalModel
from repro.workload.dynamics import ScaledRates

pytestmark = pytest.mark.faults

HOURS = 8


def _ring_distances(n: int) -> np.ndarray:
    hops = np.abs(np.arange(n)[:, None] - np.arange(n)[None, :])
    return np.minimum(hops, n - hops).astype(np.float64)


class TestEvacuateFailover:
    def test_stranded_vnf_promotes_live_replica_for_free(self):
        dist = _ring_distances(8)
        plan = evacuate(
            np.array([0, 1]),
            np.array([1, 4, 5, 6]),
            dist,
            replica_rows=np.array([[4, 5]]),
        )
        # VNF 0 (on dead switch 0) fails over to its replica instance on 4
        assert plan.failovers == ((0, 0, 4),)
        assert plan.moves == ()
        assert plan.distance == 0.0
        assert plan.placement.tolist() == [4, 1]
        # the consumed copy is retired: its row is gone
        assert plan.replica_rows.shape == (0, 2)

    def test_healthy_placement_keeps_replicas_intact(self):
        dist = _ring_distances(8)
        plan = evacuate(
            np.array([0, 1]),
            np.array([0, 1, 4, 5]),
            dist,
            replica_rows=np.array([[4, 5]]),
        )
        assert plan.moves == () and plan.failovers == ()
        assert plan.replica_rows.tolist() == [[4, 5]]

    def test_paid_move_never_lands_on_replica_held_switch(self):
        # VNF 0 stranded with its replica instance's switch occupied by
        # VNF 1, so it must pay a move — and the *nearest* allowed switch
        # (3, one hop) is held by a live replica instance, so the move
        # lands on 5 (three hops) instead
        dist = _ring_distances(8)
        plan = evacuate(
            np.array([2, 4]),
            np.array([3, 4, 5]),
            dist,
            replica_rows=np.array([[4, 3]]),
        )
        assert plan.failovers == ()
        assert plan.moves == ((0, 2, 5),)
        assert plan.distance == dist[2, 5]
        # the replica survives untouched on its switches
        assert plan.replica_rows.tolist() == [[4, 3]]

    def test_replicas_retired_when_fabric_needs_the_room(self):
        # VNF 0 stranded, its replica instance's switch already occupied
        # by VNF 1, and the only other allowed switch held by a replica:
        # the spare copies are expendable and must make way
        dist = _ring_distances(8)
        plan = evacuate(
            np.array([0, 4]),
            np.array([4, 5]),
            dist,
            replica_rows=np.array([[4, 5]]),
        )
        assert plan.failovers == ()
        assert plan.moves == ((0, 0, 5),)
        assert plan.placement.tolist() == [5, 4]
        assert plan.distance == dist[0, 5]
        assert plan.replica_rows.shape == (0, 2)

    def test_no_replica_rows_matches_legacy_behavior(self):
        # regression pin: the replica-aware path with no rows is
        # byte-identical to the pre-replication evacuation
        dist = _ring_distances(8)
        legacy = evacuate(np.array([0, 1]), np.array([3, 4, 5]), dist)
        routed = evacuate(
            np.array([0, 1]), np.array([3, 4, 5]), dist, replica_rows=None
        )
        assert legacy.to_dict() == routed.to_dict()
        assert legacy.replica_rows is None

    def test_infeasible_when_allowed_set_too_small(self):
        dist = _ring_distances(8)
        with pytest.raises(InfeasibleError):
            evacuate(
                np.array([0, 1]),
                np.array([5]),
                dist,
                diagnosis={"reason": "test"},
                replica_rows=np.array([[5, 6]]),
            )


def _fault_day(topology, flows, policy, *, n=3, fault_seed, switch_rate):
    placement = dp_placement(topology, flows, n).placement
    rate_process = ScaledRates(
        flows, DiurnalModel(num_hours=HOURS), np.zeros(flows.num_flows)
    )
    faults = FaultProcess(
        topology,
        FaultConfig(switch_rate=switch_rate, mean_repair_hours=4.0),
        seed=fault_seed,
        horizon=HOURS,
    )
    return simulate_day(
        topology, flows, policy, rate_process, placement,
        range(1, HOURS + 1), faults=faults,
    )


class TestFaultLoopIntegration:
    def test_replicas_cut_repair_cost_on_identical_fault_stream(
        self, ft4, small_scenario
    ):
        # scanned-and-pinned seed: free failovers fire and the
        # dropped+repair sum strictly improves over the no-replica
        # baseline on the byte-identical fault stream
        flows = small_scenario(ft4, 8, seed=3)
        repl = _fault_day(
            ft4, flows,
            TomReplicationPolicy(ft4, mu=100.0, rho=0.2, sync_fraction=0.001),
            fault_seed=2, switch_rate=0.1,
        )
        base = _fault_day(
            ft4, flows, MParetoPolicy(ft4, mu=100.0),
            fault_seed=2, switch_rate=0.1,
        )
        assert repl.total_failovers > 0
        # dropped traffic is endpoint-determined, so the series is equal
        assert [r.dropped_traffic for r in repl.records] == [
            r.dropped_traffic for r in base.records
        ]
        assert repl.total_repair_cost < base.total_repair_cost
        assert (
            repl.total_dropped_traffic + repl.total_repair_cost
            < base.total_dropped_traffic + base.total_repair_cost
        )

    def test_failover_entries_logged_separately_from_repairs(
        self, ft4, small_scenario
    ):
        flows = small_scenario(ft4, 8, seed=3)
        day = _fault_day(
            ft4, flows,
            TomReplicationPolicy(ft4, mu=100.0, rho=0.2, sync_fraction=0.001),
            fault_seed=2, switch_rate=0.1,
        )
        log = day.extra["fault_log"]
        assert sum(len(e["failovers"]) for e in log) == day.total_failovers
        for record, entry in zip(day.records, log):
            assert record.num_repairs == len(entry["repairs"])
            assert record.num_failovers == len(entry["failovers"])

    def test_rho_inf_regression_pins_legacy_fault_loop(
        self, ft4, small_scenario
    ):
        # with the dominance gate permanently closed the replica machinery
        # must be inert: records byte-identical to plain mPareto's
        flows = small_scenario(ft4, 8, seed=3)
        never = _fault_day(
            ft4, flows,
            TomReplicationPolicy(ft4, mu=100.0, rho=1e9, sync_fraction=0.001),
            fault_seed=2, switch_rate=0.1,
        )
        base = _fault_day(
            ft4, flows, MParetoPolicy(ft4, mu=100.0),
            fault_seed=2, switch_rate=0.1,
        )
        assert never.total_replications == 0
        assert json.dumps(
            [r.to_dict() for r in never.records], sort_keys=True
        ) == json.dumps([r.to_dict() for r in base.records], sort_keys=True)


@pytest.mark.replication
class TestFailoverProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        wseed=st.integers(0, 2**10),
        fseed=st.integers(0, 2**10),
        rate=st.sampled_from([0.05, 0.1, 0.2]),
    )
    def test_dropped_traffic_is_placement_independent(
        self, ft4, small_scenario, wseed, fseed, rate
    ):
        """Replicas never change what is dropped, only what repair costs."""
        flows = small_scenario(ft4, 8, seed=wseed)
        try:
            repl = _fault_day(
                ft4, flows,
                TomReplicationPolicy(
                    ft4, mu=100.0, rho=0.2, sync_fraction=0.001
                ),
                fault_seed=fseed, switch_rate=rate,
            )
            base = _fault_day(
                ft4, flows, MParetoPolicy(ft4, mu=100.0),
                fault_seed=fseed, switch_rate=rate,
            )
        except InfeasibleError:
            assume(False)
        assert [r.dropped_traffic for r in repl.records] == [
            r.dropped_traffic for r in base.records
        ]

    @settings(max_examples=10, deadline=None)
    @given(wseed=st.integers(0, 2**10), fseed=st.integers(0, 2**10))
    def test_fault_day_is_deterministic(
        self, ft4, small_scenario, wseed, fseed
    ):
        flows = small_scenario(ft4, 8, seed=wseed)
        make = lambda: TomReplicationPolicy(  # noqa: E731
            ft4, mu=100.0, rho=0.3, sync_fraction=0.001
        )
        try:
            first = _fault_day(
                ft4, flows, make(), fault_seed=fseed, switch_rate=0.1
            )
            second = _fault_day(
                ft4, flows, make(), fault_seed=fseed, switch_rate=0.1
            )
        except InfeasibleError:
            assume(False)
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )
