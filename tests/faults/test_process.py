"""Unit tests for the seeded fault process (repro.faults.process)."""

from __future__ import annotations

import json

import pytest

from repro.errors import FaultError
from repro.faults import FaultConfig, FaultProcess, FaultState

pytestmark = pytest.mark.faults


class TestFaultConfigValidation:
    def test_defaults_are_valid(self):
        config = FaultConfig()
        assert config.switch_rate == 0.02
        assert config.repair_probability == 0.25

    @pytest.mark.parametrize("name", ["switch_rate", "host_rate", "link_rate"])
    @pytest.mark.parametrize("bad", [-0.1, 1.5, float("nan"), float("inf")])
    def test_rates_must_be_probabilities(self, name, bad):
        with pytest.raises(FaultError, match="probability"):
            FaultConfig(**{name: bad})

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_mean_repair_hours_positive_finite(self, bad):
        with pytest.raises(FaultError, match="mean_repair_hours"):
            FaultConfig(mean_repair_hours=bad)

    def test_max_failed_switches_non_negative(self):
        with pytest.raises(FaultError, match="max_failed_switches"):
            FaultConfig(max_failed_switches=-1)
        assert FaultConfig(max_failed_switches=0).max_failed_switches == 0

    def test_repair_probability_capped_at_one(self):
        assert FaultConfig(mean_repair_hours=0.5).repair_probability == 1.0

    def test_to_dict_round_trips(self):
        config = FaultConfig(switch_rate=0.1, max_failed_switches=2)
        assert FaultConfig(**config.to_dict()) == config


class TestFaultProcess:
    def test_horizon_must_be_positive(self, ft2):
        with pytest.raises(FaultError, match="horizon"):
            FaultProcess(ft2, FaultConfig(), seed=0, horizon=0)

    def test_hour_zero_is_always_healthy(self, ft2):
        process = FaultProcess(
            ft2, FaultConfig(switch_rate=1.0), seed=0, horizon=4
        )
        assert process.state_at(0).is_healthy
        assert process.events_at(0) == ()

    def test_negative_hour_rejected(self, ft2):
        process = FaultProcess(ft2, FaultConfig(), seed=0, horizon=2)
        with pytest.raises(FaultError, match="non-negative"):
            process.state_at(-1)
        with pytest.raises(FaultError, match="non-negative"):
            process.events_at(-1)

    def test_queries_clamp_beyond_horizon(self, ft2):
        process = FaultProcess(
            ft2, FaultConfig(switch_rate=0.5), seed=7, horizon=3
        )
        assert process.state_at(99) == process.state_at(3)
        assert process.events_at(99) == process.events_at(3)

    def test_zero_rates_stay_healthy(self, ft2):
        process = FaultProcess(
            ft2,
            FaultConfig(switch_rate=0.0, host_rate=0.0, link_rate=0.0),
            seed=3,
            horizon=12,
        )
        for hour in range(13):
            assert process.state_at(hour).is_healthy
        assert process.trace() == ()

    def test_same_seed_is_byte_identical(self, ft2):
        make = lambda: FaultProcess(  # noqa: E731
            ft2,
            FaultConfig(switch_rate=0.3, host_rate=0.1, link_rate=0.05),
            seed=11,
            horizon=8,
        )
        a = json.dumps(make().to_dict(), sort_keys=True)
        b = json.dumps(make().to_dict(), sort_keys=True)
        assert a == b

    def test_different_seeds_diverge(self, ft2):
        config = FaultConfig(switch_rate=0.5)
        a = FaultProcess(ft2, config, seed=1, horizon=12)
        b = FaultProcess(ft2, config, seed=2, horizon=12)
        assert a.to_dict() != b.to_dict()

    def test_max_failed_switches_cap_holds_every_hour(self, ft2):
        process = FaultProcess(
            ft2,
            FaultConfig(
                switch_rate=1.0, mean_repair_hours=100.0, max_failed_switches=2
            ),
            seed=5,
            horizon=10,
        )
        for hour in range(11):
            assert len(process.state_at(hour).failed_switches) <= 2

    def test_certain_failure_fails_every_switch(self, ft2):
        process = FaultProcess(
            ft2,
            FaultConfig(switch_rate=1.0, mean_repair_hours=1e9),
            seed=0,
            horizon=2,
        )
        assert process.state_at(1).failed_switches == tuple(
            int(s) for s in ft2.switches
        )

    def test_repair_happens_before_failure_within_an_hour(self, ft2):
        # certain failure + certain repair: every hour each switch is
        # first repaired, then fails again — the state never goes healthy
        # after hour 1, and every hour >= 2 carries repair AND fail events
        process = FaultProcess(
            ft2,
            FaultConfig(switch_rate=1.0, mean_repair_hours=0.5),
            seed=0,
            horizon=4,
        )
        for hour in (2, 3, 4):
            actions = [e.action for e in process.events_at(hour)]
            assert "repair" in actions and "fail" in actions
            # repairs for a switch precede its re-failure in the event list
            first_fail = actions.index("fail")
            assert "repair" not in actions[first_fail:]
            assert not process.state_at(hour).is_healthy

    def test_states_consistent_with_events(self, ft2):
        process = FaultProcess(
            ft2,
            FaultConfig(switch_rate=0.4, host_rate=0.2, link_rate=0.1,
                        mean_repair_hours=2.0),
            seed=19,
            horizon=12,
        )
        down = {"switch": set(), "host": set(), "link": set()}
        for hour in range(1, 13):
            for event in process.events_at(hour):
                if event.action == "fail":
                    assert event.target not in down[event.kind]
                    down[event.kind].add(event.target)
                else:
                    assert event.target in down[event.kind]
                    down[event.kind].discard(event.target)
            state = process.state_at(hour)
            assert set(state.failed_switches) == down["switch"]
            assert set(state.failed_hosts) == down["host"]
            assert set(state.failed_links) == down["link"]

    def test_state_tuples_are_sorted(self, ft2):
        process = FaultProcess(
            ft2, FaultConfig(switch_rate=0.8), seed=2, horizon=6
        )
        for hour in range(7):
            state = process.state_at(hour)
            assert list(state.failed_switches) == sorted(state.failed_switches)

    def test_fault_state_is_hashable(self):
        a = FaultState(failed_switches=(2, 3))
        b = FaultState(failed_switches=(2, 3))
        assert a == b and hash(a) == hash(b)
        assert not a.is_healthy
