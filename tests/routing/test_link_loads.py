import numpy as np
import pytest

from repro.core.costs import CostContext
from repro.core.placement import dp_placement
from repro.errors import ReproError
from repro.routing.link_loads import (
    link_loads,
    policy_preserving_link_loads,
    utilization_report,
)
from repro.workload.flows import FlowSet, place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


@pytest.fixture()
def workload(ft4):
    flows = place_vm_pairs(ft4, 10, seed=111)
    return flows.with_rates(FacebookTrafficModel().sample(10, rng=111))


class TestLinkLoads:
    def test_single_segment_loads_its_path(self, ft4):
        h1 = int(ft4.hosts[0])
        sw = ft4.rack_of_host(h1)
        loads = link_loads(ft4, [(h1, sw, 5.0)])
        assert loads == {(min(h1, sw), max(h1, sw)): 5.0}

    def test_zero_rate_and_self_segments_ignored(self, ft4):
        h1 = int(ft4.hosts[0])
        assert link_loads(ft4, [(h1, h1, 5.0), (h1, int(ft4.hosts[1]), 0.0)]) == {}

    def test_loads_accumulate(self, ft4):
        h1 = int(ft4.hosts[0])
        sw = ft4.rack_of_host(h1)
        loads = link_loads(ft4, [(h1, sw, 2.0), (h1, sw, 3.0)])
        assert loads[(min(h1, sw), max(h1, sw))] == 5.0


class TestPolicyPreservingLoads:
    def test_volume_conservation(self, ft4, workload):
        """Total link volume equals Σ λ_i × route length (the cost model)."""
        placement = dp_placement(ft4, workload, 3).placement
        loads = policy_preserving_link_loads(ft4, workload, placement)
        ctx = CostContext(ft4, workload)
        assert sum(loads.values()) == pytest.approx(
            ctx.communication_cost(placement)
        )

    def test_host_links_carry_their_flows(self, ft4):
        h1, h2 = int(ft4.hosts[0]), int(ft4.hosts[8])
        flows = FlowSet(sources=[h1], destinations=[h2], rates=[7.0])
        placement = ft4.switches[[0, 5]]
        loads = policy_preserving_link_loads(ft4, flows, placement)
        first_hop = (min(h1, ft4.rack_of_host(h1)), max(h1, ft4.rack_of_host(h1)))
        assert loads[first_hop] == pytest.approx(7.0)

    def test_empty_placement_rejected(self, ft4, workload):
        with pytest.raises(ReproError):
            policy_preserving_link_loads(ft4, workload, np.asarray([], dtype=np.int64))


class TestUtilizationReport:
    def test_derived_capacity_hits_target(self, ft4, workload):
        placement = dp_placement(ft4, workload, 3).placement
        report = utilization_report(ft4, workload, placement)
        assert report.max_utilization == pytest.approx(0.4)
        assert report.within_provisioning
        assert 0.0 < report.mean_utilization <= report.max_utilization
        assert report.num_loaded_links <= report.num_links

    def test_explicit_capacity_flags_overload(self, ft4, workload):
        placement = dp_placement(ft4, workload, 3).placement
        report = utilization_report(ft4, workload, placement, capacity=1.0)
        assert not report.within_provisioning
        assert report.max_utilization > 1.0
        assert len(report.overloaded) >= 1

    def test_hottest_link_is_max(self, ft4, workload):
        placement = dp_placement(ft4, workload, 3).placement
        loads = policy_preserving_link_loads(ft4, workload, placement)
        report = utilization_report(ft4, workload, placement)
        assert report.hottest[1] == pytest.approx(max(loads.values()))

    def test_silent_workload(self, ft4, workload):
        silent = workload.with_rates(np.zeros(workload.num_flows))
        report = utilization_report(ft4, silent, ft4.switches[:2], capacity=10.0)
        assert report.max_utilization == 0.0
        assert report.within_provisioning

    def test_bad_target(self, ft4, workload):
        with pytest.raises(ReproError):
            utilization_report(ft4, workload, ft4.switches[:2], target_utilization=0.0)
