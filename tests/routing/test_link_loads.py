import numpy as np
import pytest

from repro.core.costs import CostContext
from repro.core.placement import dp_placement
from repro.errors import ReproError
from repro.routing.link_loads import (
    link_loads,
    policy_preserving_link_loads,
    utilization_report,
)
from repro.workload.flows import FlowSet, place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


@pytest.fixture()
def workload(ft4):
    flows = place_vm_pairs(ft4, 10, seed=111)
    return flows.with_rates(FacebookTrafficModel().sample(10, rng=111))


class TestLinkLoads:
    def test_single_segment_loads_its_path(self, ft4):
        h1 = int(ft4.hosts[0])
        sw = ft4.rack_of_host(h1)
        loads = link_loads(ft4, [(h1, sw, 5.0)])
        assert loads == {(min(h1, sw), max(h1, sw)): 5.0}

    def test_zero_rate_and_self_segments_ignored(self, ft4):
        h1 = int(ft4.hosts[0])
        assert link_loads(ft4, [(h1, h1, 5.0), (h1, int(ft4.hosts[1]), 0.0)]) == {}

    def test_loads_accumulate(self, ft4):
        h1 = int(ft4.hosts[0])
        sw = ft4.rack_of_host(h1)
        loads = link_loads(ft4, [(h1, sw, 2.0), (h1, sw, 3.0)])
        assert loads[(min(h1, sw), max(h1, sw))] == 5.0


class TestPolicyPreservingLoads:
    def test_volume_conservation(self, ft4, workload):
        """Total link volume equals Σ λ_i × route length (the cost model)."""
        placement = dp_placement(ft4, workload, 3).placement
        loads = policy_preserving_link_loads(ft4, workload, placement)
        ctx = CostContext(ft4, workload)
        assert sum(loads.values()) == pytest.approx(
            ctx.communication_cost(placement)
        )

    def test_host_links_carry_their_flows(self, ft4):
        h1, h2 = int(ft4.hosts[0]), int(ft4.hosts[8])
        flows = FlowSet(sources=[h1], destinations=[h2], rates=[7.0])
        placement = ft4.switches[[0, 5]]
        loads = policy_preserving_link_loads(ft4, flows, placement)
        first_hop = (min(h1, ft4.rack_of_host(h1)), max(h1, ft4.rack_of_host(h1)))
        assert loads[first_hop] == pytest.approx(7.0)

    def test_empty_placement_rejected(self, ft4, workload):
        with pytest.raises(ReproError):
            policy_preserving_link_loads(ft4, workload, np.asarray([], dtype=np.int64))


class TestUtilizationReport:
    def test_derived_capacity_hits_target(self, ft4, workload):
        placement = dp_placement(ft4, workload, 3).placement
        report = utilization_report(ft4, workload, placement)
        assert report.max_utilization == pytest.approx(0.4)
        assert report.within_provisioning
        assert 0.0 < report.mean_utilization <= report.max_utilization
        assert report.num_loaded_links <= report.num_links

    def test_explicit_capacity_flags_overload(self, ft4, workload):
        placement = dp_placement(ft4, workload, 3).placement
        report = utilization_report(ft4, workload, placement, capacity=1.0)
        assert not report.within_provisioning
        assert report.max_utilization > 1.0
        assert len(report.overloaded) >= 1

    def test_hottest_link_is_max(self, ft4, workload):
        placement = dp_placement(ft4, workload, 3).placement
        loads = policy_preserving_link_loads(ft4, workload, placement)
        report = utilization_report(ft4, workload, placement)
        assert report.hottest[1] == pytest.approx(max(loads.values()))

    def test_silent_workload(self, ft4, workload):
        silent = workload.with_rates(np.zeros(workload.num_flows))
        report = utilization_report(ft4, silent, ft4.switches[:2], capacity=10.0)
        assert report.max_utilization == 0.0
        assert report.within_provisioning

    def test_bad_target(self, ft4, workload):
        with pytest.raises(ReproError):
            utilization_report(ft4, workload, ft4.switches[:2], target_utilization=0.0)


class TestPredecessorWalk:
    """link_loads now walks the cached APSP predecessor table directly."""

    def test_matches_shortest_path_reconstruction(self, ft4):
        rng = np.random.default_rng(17)
        nodes = ft4.graph.num_nodes
        segments = []
        for _ in range(20):
            u, v = rng.choice(nodes, size=2, replace=False)
            segments.append((int(u), int(v), float(rng.uniform(0.5, 3.0))))
        got = link_loads(ft4, segments)
        want: dict[tuple[int, int], float] = {}
        for src, dst, rate in segments:
            path = ft4.graph.shortest_path(src, dst)
            for a, b in zip(path, path[1:]):
                key = (a, b) if a < b else (b, a)
                want[key] = want.get(key, 0.0) + rate
        assert set(got) == set(want)
        for key in want:
            assert got[key] == pytest.approx(want[key])

    def test_unreachable_segment_raises_graph_error(self, ft4):
        from repro.errors import GraphError
        from repro.faults import FaultState, degrade

        # killing aggregation uplinks partitions pod 0 from the core
        view, audit = degrade(
            ft4, FaultState(failed_switches=tuple(int(s) for s in ft4.switches[:4]))
        )
        assert audit.is_partitioned
        dist = view.graph.distances
        src, dst = -1, -1
        n = view.graph.num_nodes
        for a in range(n):
            for b in range(n):
                if a != b and not np.isfinite(dist[a, b]):
                    src, dst = a, b
                    break
            if src >= 0:
                break
        assert src >= 0
        with pytest.raises(GraphError, match="unreachable"):
            link_loads(view, [(src, dst, 1.0)])
