import numpy as np
import pytest

from repro.baselines.steering import steering_placement
from repro.core.placement import dp_placement
from repro.errors import ReproError
from repro.experiments.sweeps import placement_sweep
from repro.topology.leafspine import leaf_spine
from repro.workload.traffic import FacebookTrafficModel


class TestPlacementSweep:
    def test_grid_shape_and_ordering(self, ft4):
        rows = placement_sweep(
            topologies={"ft4": ft4},
            algorithms={"dp": dp_placement, "steering": steering_placement},
            ls=(4, 8),
            ns=(2, 3),
            traffic_model=FacebookTrafficModel(),
            replications=2,
            seed=0,
        )
        assert len(rows) == 4
        for row in rows:
            assert row["dp"] is not None
            assert row["dp"] <= row["steering"] + 1e-6
            assert "dp_ci" in row

    def test_multiple_topologies(self, ft4):
        rows = placement_sweep(
            topologies={"ft4": ft4, "leafspine": leaf_spine(4, 2, 4)},
            algorithms={"dp": dp_placement},
            ls=(4,),
            ns=(2,),
            traffic_model=FacebookTrafficModel(),
            replications=2,
        )
        assert {row["topology"] for row in rows} == {"ft4", "leafspine"}

    def test_failing_algorithm_reports_none(self, ft4):
        def exploding(topology, flows, n):
            raise RuntimeError("boom")

        rows = placement_sweep(
            topologies={"ft4": ft4},
            algorithms={"dp": dp_placement, "boom": exploding},
            ls=(4,),
            ns=(2,),
            traffic_model=FacebookTrafficModel(),
            replications=2,
        )
        assert rows[0]["boom"] is None
        assert rows[0]["dp"] is not None

    def test_custom_workload(self, ft4):
        from repro.workload.gravity import place_vm_pairs_gravity

        def workload(topology, l, rng):
            flows = place_vm_pairs_gravity(topology, l, skew=1.5, seed=rng)
            return flows.with_rates(FacebookTrafficModel().sample(l, rng=rng))

        rows = placement_sweep(
            topologies={"ft4": ft4},
            algorithms={"dp": dp_placement},
            ls=(6,),
            ns=(3,),
            workload=workload,
            replications=2,
        )
        assert rows[0]["dp"] > 0

    def test_deterministic(self, ft4):
        kwargs = dict(
            topologies={"ft4": ft4},
            algorithms={"dp": dp_placement},
            ls=(4,),
            ns=(2,),
            traffic_model=FacebookTrafficModel(),
            replications=3,
            seed=7,
        )
        assert placement_sweep(**kwargs) == placement_sweep(**kwargs)

    def test_validation(self, ft4):
        with pytest.raises(ReproError):
            placement_sweep({}, {"dp": dp_placement}, (1,), (1,), FacebookTrafficModel())
        with pytest.raises(ReproError):
            placement_sweep(
                {"ft4": ft4}, {"dp": dp_placement}, (1,), (1,), replications=0,
                traffic_model=FacebookTrafficModel(),
            )
        with pytest.raises(ReproError, match="traffic_model or workload"):
            placement_sweep({"ft4": ft4}, {"dp": dp_placement}, (1,), (1,))
