import io
import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.experiments import get_experiment, list_experiments
from repro.experiments.common import ExperimentResult, check_scale


EXPECTED_EXPERIMENTS = {
    "fig03_example",
    "fig06_pareto",
    "fig07_top1",
    "fig08_diurnal",
    "fig09_top",
    "fig10_top_weighted",
    "fig11a_hourly",
    "fig11c_vary_l",
    "fig11d_vary_n",
    "table02_algorithms",
    "scorecard",
    "ext_replication",
    "ext_multi_sfc",
    "ext_schedules",
    "ext_arrivals",
    "val_link_utilization",
    "val_gravity_dynamics",
    "ablation_complete_graph",
    "ablation_dp_backends",
    "ablation_frontiers",
    "ablation_mu",
    "ablation_dynamics",
}


class TestRegistry:
    def test_every_figure_is_registered(self):
        assert EXPECTED_EXPERIMENTS <= set(list_experiments())

    def test_unknown_experiment(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            get_experiment("fig99_bogus")

    def test_bad_scale_rejected(self):
        with pytest.raises(ReproError, match="scale"):
            check_scale("enormous")


class TestExperimentResult:
    def test_table_and_json_round_trip(self):
        result = ExperimentResult(
            experiment="demo",
            description="a demo",
            rows=[{"x": 1, "y": 2.5}],
            notes=["hello"],
            params={"k": 4},
        )
        table = result.to_table()
        assert "demo" in table and "hello" in table
        payload = json.loads(result.to_json())
        assert payload["rows"][0]["y"] == 2.5
        assert result.column("x") == [1]


class TestSmokeRuns:
    """Every experiment must complete at smoke scale and keep its contract."""

    @pytest.mark.parametrize("name", sorted(EXPECTED_EXPERIMENTS))
    def test_runs_at_smoke_scale(self, name):
        result = get_experiment(name)("smoke")
        assert isinstance(result, ExperimentResult)
        assert result.rows, f"{name} produced no rows"
        assert result.experiment == name


class TestCli:
    def test_list(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        assert "fig07_top1" in out.getvalue()

    def test_run_writes_table_and_json(self, tmp_path):
        out = io.StringIO()
        json_path = tmp_path / "fig08.json"
        code = main(
            ["run", "fig08_diurnal", "--scale", "smoke", "--json", str(json_path)],
            out=out,
        )
        assert code == 0
        assert "tau_west" in out.getvalue()
        payload = json.loads(json_path.read_text())
        assert payload["experiment"] == "fig08_diurnal"

    def test_run_unknown_fails(self):
        out = io.StringIO()
        with pytest.raises(ReproError):
            main(["run", "nonexistent"], out=out)
