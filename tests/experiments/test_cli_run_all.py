import io
import json

import pytest

from repro import cli
from repro.experiments import common as experiments_common
from repro.experiments.common import ExperimentResult


@pytest.fixture()
def tiny_registry(monkeypatch):
    """Swap the global registry for a single instant experiment."""

    def instant(scale: str) -> ExperimentResult:
        return ExperimentResult(
            experiment="instant",
            description="an instant experiment",
            rows=[{"x": 1, "scale": scale}],
        )

    monkeypatch.setattr(
        experiments_common, "_REGISTRY", {"instant": ("instant demo", instant)}
    )
    yield


class TestRunAll:
    def test_runs_every_registered_experiment(self, tiny_registry, tmp_path):
        out = io.StringIO()
        code = cli.main(
            ["run-all", "--scale", "smoke", "--json-dir", str(tmp_path)], out=out
        )
        assert code == 0
        assert "instant" in out.getvalue()
        payload = json.loads((tmp_path / "instant.json").read_text())
        assert payload["rows"][0]["scale"] == "smoke"

    def test_run_all_without_json_dir(self, tiny_registry):
        out = io.StringIO()
        assert cli.main(["run-all", "--scale", "smoke"], out=out) == 0
