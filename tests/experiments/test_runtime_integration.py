"""The experiment harness's runtime integration: map_points, run_experiment,
the CLI's --workers/--profile flags, and the to_chart numeric filter."""

import io

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.experiments.common import (
    ExperimentResult,
    accepts_workers,
    map_points,
    run_experiment,
)


def double(x):
    return 2 * x


class TestMapPoints:
    def test_preserves_point_order(self):
        points = [5, 1, 4, 2, 3]
        assert map_points(double, points) == [10, 2, 8, 4, 6]
        assert map_points(double, points, workers=2) == [10, 2, 8, 4, 6]

    def test_accepts_any_iterable(self):
        assert map_points(double, range(3)) == [0, 2, 4]

    def test_invalid_workers(self):
        with pytest.raises(ReproError):
            map_points(double, [1], workers=0)


class TestAcceptsWorkers:
    def test_detects_keyword(self):
        def with_workers(scale, workers=1):
            return None

        def without(scale):
            return None

        assert accepts_workers(with_workers)
        assert not accepts_workers(without)
        assert not accepts_workers(len)  # C builtin without a signature


class TestRunExperiment:
    def test_attaches_runtime_report(self):
        result = run_experiment("fig07_top1", "smoke")
        runtime = result.params["runtime"]
        assert runtime["workers"] == 1
        assert runtime["counters"]["dp_stroll_solves"] > 0
        assert "hit_rate" in runtime["cache"]
        assert runtime["wall_seconds"] > 0

    def test_parallel_matches_serial_rows(self):
        serial = run_experiment("fig07_top1", "smoke", workers=1)
        parallel = run_experiment("fig07_top1", "smoke", workers=2)
        assert serial.rows == parallel.rows
        assert parallel.params["runtime"]["workers"] == 2

    def test_workers_ignored_by_serial_only_experiments(self):
        # fig03_example has no workers parameter; the harness quietly runs
        # it serially instead of failing
        result = run_experiment("fig03_example", "smoke", workers=4)
        assert result.params["runtime"]["workers"] == 1


class TestCliRuntimeFlags:
    def test_profile_prints_report(self):
        out = io.StringIO()
        code = main(
            ["run", "fig07_top1", "--scale", "smoke", "--workers", "2", "--profile"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "runtime profile:" in text
        assert "workers:      2" in text
        assert "hit rate" in text

    def test_runtime_report_in_json(self, tmp_path):
        import json

        out = io.StringIO()
        json_path = tmp_path / "fig07.json"
        main(
            ["run", "fig07_top1", "--scale", "smoke", "--json", str(json_path)],
            out=out,
        )
        payload = json.loads(json_path.read_text())
        assert "runtime" in payload["params"]
        assert payload["params"]["runtime"]["workers"] == 1
        # the runtime dict must not leak into the table header
        assert "runtime" not in out.getvalue().split("\n")[1]


class TestToChartNumericFilter:
    def _result(self, rows):
        return ExperimentResult(experiment="demo", description="d", rows=rows)

    def test_bool_columns_excluded(self):
        result = self._result(
            [
                {"x": 1, "y": 2.0, "flag": True},
                {"x": 2, "y": 3.0, "flag": False},
            ]
        )
        chart = result.to_chart()
        assert "y" in chart
        assert "flag" not in chart

    def test_numeric_columns_survive(self):
        result = self._result([{"x": 1, "y": 2}, {"x": 2, "y": 4}])
        assert "y" in result.to_chart()
