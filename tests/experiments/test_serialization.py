"""ExperimentResult wire format: one schema shared with the serve layer."""

from __future__ import annotations

import json

from repro import SolverSession
from repro.experiments.common import ExperimentResult


def test_to_dict_from_dict_roundtrip():
    result = ExperimentResult(
        experiment="fig99_example",
        description="round-trip fixture",
        rows=[{"x": 1, "cost": 2.5}, {"x": 2, "cost": 3.5}],
        notes=["a note"],
        params={"scale": "smoke", "seed": 7},
    )
    back = ExperimentResult.from_dict(result.to_dict())
    assert back.experiment == result.experiment
    assert back.description == result.description
    assert back.rows == result.rows
    assert back.notes == result.notes
    assert back.params == result.params
    assert back.to_dict() == result.to_dict()


def test_to_json_is_the_to_dict_schema():
    result = ExperimentResult(
        experiment="fig99_example",
        description="json fixture",
        rows=[{"x": 1}],
    )
    assert json.loads(result.to_json()) == result.to_dict()


def test_nested_solver_results_share_the_serve_schema(ft2, small_scenario):
    # rows may embed solver results in their own to_dict shape — the
    # same {placement, cost, meta} dict the serve layer's wire format
    # nests, so one reader handles experiment artifacts and serve traces
    flows = small_scenario(ft2, 3, seed=1)
    solved = SolverSession(ft2).place(flows, 2)
    result = ExperimentResult(
        experiment="fig99_example",
        description="nested fixture",
        rows=[{"x": 1, "solution": solved.to_dict()}],
    )
    back = ExperimentResult.from_dict(json.loads(result.to_json()))
    nested = back.rows[0]["solution"]
    assert nested["placement"] == solved.placement.tolist()
    assert nested["cost"] == solved.cost
    assert nested["meta"]["algorithm"] == solved.algorithm
