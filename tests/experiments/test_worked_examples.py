"""The paper's worked examples, asserted exactly end-to-end.

These are the strongest correctness anchors in the suite: every number
printed in the paper's Sections I/III/IV for Figs. 1-5 is recomputed by
the library and compared exactly.
"""

import numpy as np
import pytest

from repro.experiments import get_experiment


class TestExample1Numbers:
    """Fig. 3 / Example 1: 410 -> 1004 -> 416 (58.6% reduction)."""

    @pytest.fixture(scope="class")
    def result(self):
        return get_experiment("fig03_example")("default")

    def test_stage_costs(self, result):
        totals = [row["total_cost"] for row in result.rows]
        assert totals == [410.0, 1004.0, 416.0]

    def test_migration_cost_is_6(self, result):
        assert result.rows[2]["migration_cost"] == 6.0

    def test_reduction_is_58_6_percent(self, result):
        reduction = 1.0 - result.rows[2]["total_cost"] / result.rows[1]["total_cost"]
        assert reduction == pytest.approx(0.586, abs=0.001)

    def test_post_migration_comm_equals_initial(self, result):
        """Both optimal placements cost 410: the migrated chain mirrors the
        initial one at the other end of the PPDC."""
        assert result.rows[2]["comm_cost"] == result.rows[0]["comm_cost"] == 410.0


class TestFig2Stroll:
    """Fig. 2's Example 3: a 7-stroll between h4 and h5 on the k=4 fat tree
    uses an 8-edge path through 7 distinct switches (no 2-cycle loops)."""

    def test_seven_stroll_is_eight_edges(self, ft4):
        from repro.core.placement import dp_placement_top1
        from repro.workload.flows import FlowSet

        h4, h5 = int(ft4.hosts[3]), int(ft4.hosts[4])
        flows = FlowSet(sources=[h4], destinations=[h5], rates=[1.0])
        result = dp_placement_top1(ft4, flows, 7)
        assert result.num_vnfs == 7
        assert len(set(result.placement.tolist())) == 7
        # 8 closure edges: h4 -> 7 switches -> h5
        assert result.extra["stroll_edges"] == 8
        # the walk has no immediate backtrack (Example 3's point)
        walk = result.extra["walk"]
        assert all(a != c for a, c in zip(walk, walk[2:]))

    def test_policy_preserving_route_of_v1(self, ft4):
        """Fig. 2's dashed route: (v1, v1') on h1/h2 traversing 3 VNFs costs
        10 hops when the VNFs sit where the figure drew them."""
        from repro.core.costs import CostContext
        from repro.workload.flows import FlowSet

        h1, h2 = int(ft4.hosts[0]), int(ft4.hosts[1])
        flows = FlowSet(sources=[h1], destinations=[h2], rates=[1.0])
        ctx = CostContext(ft4, flows)
        # f1 on h1's edge switch, f2 on a same-pod agg, f3 on a core
        edge = ft4.rack_of_host(h1)
        agg = int(ft4.switches[ft4.meta["edge_switches"]])  # first agg, pod 0
        core = int(ft4.switches[ft4.meta["edge_switches"] + ft4.meta["agg_switches"]])
        cost = ctx.communication_cost(np.asarray([edge, agg, core]))
        # Fig. 2's exact drawing is k=4-specific; assert the computed value
        # against the cost model's own decomposition
        chain = ctx.chain_cost(np.asarray([edge, agg, core]))
        manual = (
            ctx.distances[h1, edge] + chain + ctx.distances[core, h2]
        )
        assert cost == pytest.approx(manual)


class TestTheorem4:
    """TOP is the special case of TOM with mu = 0."""

    def test_mu_zero_equivalence(self, ft4, small_workload):
        from repro.core.optimal import optimal_migration, optimal_placement

        source = ft4.switches[[0, 1, 2]]
        migration = optimal_migration(ft4, small_workload, source, mu=0.0)
        placement = optimal_placement(ft4, small_workload, 3)
        assert migration.communication_cost == pytest.approx(placement.cost)
        assert migration.cost == pytest.approx(placement.cost)
