"""The retired legacy-signature shims (see :mod:`repro._compat`).

The one-release :class:`DeprecationWarning` grace period for the
pre-redesign call styles — extra positional arguments, ``node_budget=``
/ ``rng=`` keywords — is over.  Legacy calls must raise
:class:`TypeError` with a message naming the keyword to use, new-style
calls must pass through warning-free, and no ``DeprecationWarning`` may
be emitted anywhere on these paths (CI runs this module under
``-W error::DeprecationWarning`` to prove it).
"""

from __future__ import annotations

import warnings

import pytest

from repro import FacebookTrafficModel, fat_tree, place_vm_pairs
from repro._compat import legacy_signature
from repro.baselines.random_placement import random_placement
from repro.baselines.steering import steering_placement
from repro.core.migration import mpareto_migration
from repro.core.optimal import optimal_migration, optimal_placement
from repro.core.placement import dp_placement, dp_placement_top1


@pytest.fixture(scope="module")
def topo():
    return fat_tree(4)


@pytest.fixture(scope="module")
def flows(topo):
    fl = place_vm_pairs(topo, 6, seed=2)
    return fl.with_rates(FacebookTrafficModel().sample(6, rng=2))


class TestLegacyCallsRaise:
    def test_dp_placement_positional_slack_and_mode(self, topo, flows):
        with pytest.raises(TypeError, match="extra_edge_slack=16"):
            dp_placement(topo, flows, 4, 16, "paper")

    def test_dp_placement_top1_positional_flow_index(self, topo, flows):
        with pytest.raises(TypeError, match="flow_index=1"):
            dp_placement_top1(topo, flows, 3, 1)

    def test_optimal_placement_node_budget_keyword(self, topo, flows):
        with pytest.raises(TypeError, match="renamed to 'budget'"):
            optimal_placement(topo, flows, 3, node_budget=200_000)

    def test_optimal_migration_node_budget_keyword(self, topo, flows):
        src = dp_placement(topo, flows, 3).placement
        with pytest.raises(TypeError, match="renamed to 'budget'"):
            optimal_migration(topo, flows, src, 10.0, node_budget=200_000)

    def test_mpareto_positional_placement_algorithm(self, topo, flows):
        src = dp_placement(topo, flows, 3).placement
        with pytest.raises(TypeError, match="placement_algorithm"):
            mpareto_migration(topo, flows, src, 10.0, dp_placement)

    def test_random_placement_rng_keyword(self, topo, flows):
        with pytest.raises(TypeError, match="renamed to 'seed'"):
            random_placement(topo, flows, 3, rng=7)

    def test_steering_positional_chain_aware(self, topo, flows):
        with pytest.raises(TypeError, match="chain_aware=True"):
            steering_placement(topo, flows, 3, True)

    def test_legacy_calls_do_not_run_the_solver(self, topo, flows):
        # the tombstone must reject before any work happens: an otherwise
        # invalid instance (n larger than the fabric) still raises the
        # signature TypeError, not a solver error
        with pytest.raises(TypeError):
            dp_placement(topo, flows, 10_000, 16, "paper")


class TestNewStyleCalls:
    def test_new_style_emits_no_warning(self, topo, flows):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            dp_placement(topo, flows, 3, mode="paper")
            optimal_placement(topo, flows, 3, budget=200_000)
            random_placement(topo, flows, 3, seed=1)

    def test_legacy_rejection_is_not_a_warning(self, topo, flows):
        # the shims are gone: rejection must never come with a
        # DeprecationWarning attached
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            with pytest.raises(TypeError):
                random_placement(topo, flows, 3, rng=7)
        assert not [
            w for w in record if issubclass(w.category, DeprecationWarning)
        ]


class TestDecorator:
    def test_decorator_preserves_metadata(self):
        @legacy_signature("alpha")
        def solver(a, b, *, alpha=1):
            """Doc."""
            return a + b + alpha

        assert solver.__name__ == "solver"
        assert solver.__doc__ == "Doc."
        assert solver(1, 2, alpha=3) == 6

    def test_extra_positional_names_the_keyword(self):
        @legacy_signature("alpha", "beta")
        def solver(a, *, alpha=1, beta=2):
            return a + alpha + beta

        with pytest.raises(TypeError, match=r"alpha=10, beta=20"):
            solver(0, 10, 20)

    def test_unnamed_extra_positional_still_rejected(self):
        @legacy_signature()
        def solver(a, *, alpha=1):
            return a + alpha

        with pytest.raises(TypeError, match="positional call"):
            solver(0, 10)

    def test_renamed_keyword_names_the_replacement(self):
        @legacy_signature(renames={"old": "new"})
        def solver(a, *, new=1):
            return a + new

        with pytest.raises(TypeError, match="renamed to 'new'"):
            solver(0, old=5)
