"""The one-release legacy-signature shims (see :mod:`repro._compat`).

Each solver accepts its pre-redesign call style — extra positional
arguments, ``node_budget=`` / ``rng=`` keywords — for one release,
emitting exactly one :class:`DeprecationWarning` and returning results
identical to the new keyword-only convention.  CI runs this module (and
the rest of the suite) under ``-W error::DeprecationWarning`` to prove
the library's own code never goes through a shim.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import FacebookTrafficModel, fat_tree, place_vm_pairs
from repro._compat import legacy_signature
from repro.baselines.random_placement import random_placement
from repro.baselines.steering import steering_placement
from repro.core.migration import mpareto_migration
from repro.core.optimal import optimal_migration, optimal_placement
from repro.core.placement import dp_placement, dp_placement_top1


@pytest.fixture(scope="module")
def topo():
    return fat_tree(4)


@pytest.fixture(scope="module")
def flows(topo):
    fl = place_vm_pairs(topo, 6, seed=2)
    return fl.with_rates(FacebookTrafficModel().sample(6, rng=2))


def _one_deprecation(record):
    deps = [w for w in record if issubclass(w.category, DeprecationWarning)]
    assert len(deps) == 1, [str(w.message) for w in record]
    return deps[0]


def _legacy(call, *args, **kwargs):
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        result = call(*args, **kwargs)
    _one_deprecation(record)
    return result


class TestLegacyCallsMatchNewStyle:
    def test_dp_placement_positional_slack_and_mode(self, topo, flows):
        legacy = _legacy(dp_placement, topo, flows, 4, 16, "paper")
        new = dp_placement(topo, flows, 4, extra_edge_slack=16, mode="paper")
        assert np.array_equal(legacy.placement, new.placement)
        assert legacy.cost == new.cost

    def test_dp_placement_top1_positional_flow_index(self, topo, flows):
        legacy = _legacy(dp_placement_top1, topo, flows, 3, 1)
        new = dp_placement_top1(topo, flows, 3, flow_index=1)
        assert np.array_equal(legacy.placement, new.placement)
        assert legacy.cost == new.cost

    def test_optimal_placement_node_budget_keyword(self, topo, flows):
        legacy = _legacy(optimal_placement, topo, flows, 3, node_budget=200_000)
        new = optimal_placement(topo, flows, 3, budget=200_000)
        assert np.array_equal(legacy.placement, new.placement)
        assert legacy.cost == new.cost

    def test_optimal_migration_node_budget_keyword(self, topo, flows):
        src = dp_placement(topo, flows, 3).placement
        legacy = _legacy(
            optimal_migration, topo, flows, src, 10.0, node_budget=200_000
        )
        new = optimal_migration(topo, flows, src, 10.0, budget=200_000)
        assert np.array_equal(legacy.migration, new.migration)
        assert legacy.cost == new.cost

    def test_mpareto_positional_placement_algorithm(self, topo, flows):
        src = dp_placement(topo, flows, 3).placement
        legacy = _legacy(mpareto_migration, topo, flows, src, 10.0, dp_placement)
        new = mpareto_migration(
            topo, flows, src, 10.0, placement_algorithm=dp_placement
        )
        assert np.array_equal(legacy.migration, new.migration)
        assert legacy.cost == new.cost

    def test_random_placement_rng_keyword(self, topo, flows):
        legacy = _legacy(random_placement, topo, flows, 3, rng=7)
        new = random_placement(topo, flows, 3, seed=7)
        assert np.array_equal(legacy.placement, new.placement)
        assert legacy.cost == new.cost

    def test_steering_positional_chain_aware(self, topo, flows):
        legacy = _legacy(steering_placement, topo, flows, 3, True)
        new = steering_placement(topo, flows, 3, chain_aware=True)
        assert np.array_equal(legacy.placement, new.placement)
        assert legacy.cost == new.cost


class TestShimEdgeCases:
    def test_new_style_emits_no_warning(self, topo, flows):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            dp_placement(topo, flows, 3, mode="paper")
            optimal_placement(topo, flows, 3, budget=200_000)
            random_placement(topo, flows, 3, seed=1)

    def test_duplicate_binding_raises(self, topo, flows):
        with pytest.raises(TypeError), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            dp_placement(topo, flows, 3, 16, extra_edge_slack=16)

    def test_too_many_positionals_raises(self, topo, flows):
        with pytest.raises(TypeError), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            dp_placement(topo, flows, 3, 16, "paper", None, None, "extra")

    def test_old_and_new_keyword_together_raises(self, topo, flows):
        with pytest.raises(TypeError), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            optimal_placement(topo, flows, 3, node_budget=1_000, budget=2_000)

    def test_decorator_preserves_metadata(self):
        @legacy_signature("alpha")
        def solver(a, b, *, alpha=1):
            """Doc."""
            return a + b + alpha

        assert solver.__name__ == "solver"
        assert solver.__doc__ == "Doc."
        assert solver(1, 2, alpha=3) == 6
