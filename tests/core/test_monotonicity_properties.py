"""Structural monotonicity properties of the TOP/TOM optimization landscape."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import CostContext
from repro.core.migration import frontier_trace, mpareto_migration
from repro.core.optimal import optimal_migration, optimal_placement
from repro.core.placement import dp_placement
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


def make_workload(ft4, seed, l=6):
    flows = place_vm_pairs(ft4, l, seed=seed)
    return flows.with_rates(FacebookTrafficModel().sample(l, rng=seed))


class TestOptimalMonotoneInN:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_longer_chains_cost_more(self, ft4, seed):
        """Any placement of n+1 VNFs visits n distinct switches too, so the
        exact optimum is non-decreasing in n."""
        flows = make_workload(ft4, seed)
        costs = [optimal_placement(ft4, flows, n).cost for n in (1, 2, 3)]
        assert costs[0] <= costs[1] + 1e-9
        assert costs[1] <= costs[2] + 1e-9


class TestMigrationMonotoneInMu:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_total_cost_nondecreasing_in_mu(self, ft4, seed):
        flows = make_workload(ft4, seed)
        source = ft4.switches[[0, 7, 13]]
        costs = [
            optimal_migration(ft4, flows, source, mu).cost for mu in (0.0, 10.0, 1e4)
        ]
        assert costs[0] <= costs[1] + 1e-9
        assert costs[1] <= costs[2] + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_mpareto_moves_nonincreasing_in_mu(self, ft4, seed):
        flows = make_workload(ft4, seed)
        rng = np.random.default_rng(seed)
        source = rng.choice(ft4.switches, size=3, replace=False)
        moves = [
            mpareto_migration(ft4, flows, source, mu).num_migrated
            for mu in (0.0, 1e3, 1e9)
        ]
        assert moves[-1] == 0  # astronomically expensive migration freezes
        assert moves[0] >= moves[-1]


class TestFrontierStructure:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_first_frontier_is_free(self, ft4, seed):
        flows = make_workload(ft4, seed)
        source = ft4.switches[[0, 5, 10]]
        target = dp_placement(ft4, flows, 3).placement
        trace = frontier_trace(CostContext(ft4, flows), source, target, mu=7.0)
        assert trace.migration_costs[0] == 0.0
        assert np.array_equal(trace.frontiers[0], source)
        assert np.array_equal(trace.frontiers[-1], target)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 200), mu=st.floats(0.0, 1e4))
    def test_mpareto_never_above_either_endpoint(self, ft4, seed, mu):
        """The chosen frontier beats both 'stay' and 'jump to fresh'."""
        flows = make_workload(ft4, seed)
        rng = np.random.default_rng(seed)
        source = rng.choice(ft4.switches, size=3, replace=False)
        ctx = CostContext(ft4, flows)
        result = mpareto_migration(ft4, flows, source, mu)
        fresh = np.asarray(result.extra["target_placement"])
        stay_cost = ctx.total_cost(source, source, mu)
        jump_cost = ctx.total_cost(source, fresh, mu)
        assert result.cost <= stay_cost + 1e-6
        assert result.cost <= jump_cost + 1e-6
