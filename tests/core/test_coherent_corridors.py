import numpy as np
import pytest

from repro.core.costs import CostContext
from repro.core.migration import (
    coherent_migration_corridors,
    frontier_trace,
    migration_corridors,
    migration_frontiers,
    mpareto_migration,
)
from repro.core.placement import dp_placement
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


@pytest.fixture()
def setup(ft8):
    flows = place_vm_pairs(ft8, 16, seed=151)
    flows = flows.with_rates(FacebookTrafficModel().sample(16, rng=151))
    source = ft8.switches[[0, 10, 40]]
    target = dp_placement(ft8, flows, 3).placement
    return flows, source, target


class TestCoherentCorridors:
    def test_corridors_are_shortest_paths(self, ft8, setup):
        """Coherent corridors never pay extra hops: same lengths as the base."""
        flows, source, target = setup
        base = migration_corridors(ft8, source, target)
        coherent = coherent_migration_corridors(ft8, source, target)
        for b, c in zip(base, coherent):
            assert len(b) == len(c)
            assert b[0] == c[0] and b[-1] == c[-1]

    def test_corridor_steps_are_edges(self, ft8, setup):
        flows, source, target = setup
        induced, position_of = ft8.switch_only_graph()
        for corridor in coherent_migration_corridors(ft8, source, target):
            for a, b in zip(corridor, corridor[1:]):
                assert induced.has_edge(position_of[a], position_of[b])

    def test_frontier_endpoints_unchanged(self, ft8, setup):
        flows, source, target = setup
        frontiers = migration_frontiers(ft8, source, target, coherent=True)
        assert np.array_equal(frontiers[0], source)
        assert np.array_equal(frontiers[-1], target)

    def test_mpareto_coherent_still_sandwiched(self, ft8, setup):
        """Coherent mPareto keeps Algorithm 5's guarantee (never worse than
        both endpoints) regardless of which corridors it scans."""
        flows, source, _ = setup
        ctx = CostContext(ft8, flows)
        mu = 100.0
        result = mpareto_migration(ft8, flows, source, mu, coherent=True)
        fresh = np.asarray(result.extra["target_placement"])
        assert result.cost <= ctx.total_cost(source, source, mu) + 1e-6
        assert result.cost <= ctx.total_cost(source, fresh, mu) + 1e-6

    def test_trace_lengths_match(self, ft8, setup):
        flows, source, target = setup
        ctx = CostContext(ft8, flows)
        base = frontier_trace(ctx, source, target, 10.0)
        coherent = frontier_trace(ctx, source, target, 10.0, coherent=True)
        assert base.num_frontiers == coherent.num_frontiers
