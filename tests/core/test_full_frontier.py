import numpy as np
import pytest

from repro.core.costs import CostContext
from repro.core.migration import (
    best_full_frontier,
    full_frontier_set,
    migration_corridors,
    mpareto_migration,
)
from repro.core.optimal import optimal_migration
from repro.core.placement import dp_placement
from repro.errors import MigrationError
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


@pytest.fixture()
def setup(ft4):
    flows = place_vm_pairs(ft4, 8, seed=141)
    flows = flows.with_rates(FacebookTrafficModel().sample(8, rng=141))
    source = ft4.switches[[0, 7]]
    target = dp_placement(ft4, flows, 2).placement
    return flows, source, target


class TestFullFrontierSet:
    def test_size_is_product_of_corridor_lengths(self, ft4, setup):
        flows, source, target = setup
        corridors = migration_corridors(ft4, source, target)
        expected = 1
        for corridor in corridors:
            expected *= len(corridor)
        frontiers = full_frontier_set(ft4, source, target)
        assert len(frontiers) == expected

    def test_contains_endpoints(self, ft4, setup):
        flows, source, target = setup
        frontiers = [f.tolist() for f in full_frontier_set(ft4, source, target)]
        assert source.tolist() in frontiers
        assert target.tolist() in frontiers

    def test_every_member_on_corridors(self, ft4, setup):
        flows, source, target = setup
        corridors = migration_corridors(ft4, source, target)
        for frontier in full_frontier_set(ft4, source, target):
            for j, switch in enumerate(frontier):
                assert int(switch) in corridors[j]

    def test_limit_guard(self, ft4, setup):
        flows, source, target = setup
        with pytest.raises(MigrationError, match="more than"):
            full_frontier_set(ft4, source, target, limit=1)


class TestBestFullFrontier:
    def test_sandwiched_between_mpareto_and_optimal(self, ft4, setup):
        """optimal TOM <= best full frontier <= mPareto (parallel subset)."""
        flows, source, target = setup
        ctx = CostContext(ft4, flows)
        mu = 10.0
        _, full_cost = best_full_frontier(ctx, source, target, mu)
        mp = mpareto_migration(ft4, flows, source, mu)
        opt = optimal_migration(ft4, flows, source, mu)
        assert opt.cost <= full_cost + 1e-9
        assert full_cost <= mp.cost + 1e-9

    def test_distinctness_respected(self, ft4, setup):
        flows, source, target = setup
        ctx = CostContext(ft4, flows)
        best, _ = best_full_frontier(ctx, source, target, mu=5.0)
        assert len(set(best.tolist())) == best.size
