import numpy as np
import pytest

from repro.core.optimal import optimal_placement
from repro.core.primal_dual import (
    grow_prized_tree,
    primal_dual_placement_top1,
    primal_dual_stroll,
)
from repro.errors import InfeasibleError
from repro.graphs.paths import count_distinct_intermediates
from repro.workload.flows import FlowSet, place_vm_pairs


class TestGrowPrizedTree:
    def test_tree_connects_endpoints(self, ft4):
        s, t = int(ft4.hosts[0]), int(ft4.hosts[10])
        countable = set(ft4.switches.tolist())
        tree = grow_prized_tree(ft4.graph, s, t, prize=1.0, countable=countable, required=3)
        assert s in tree.nodes and t in tree.nodes
        # tree edges form a connected acyclic graph over tree.nodes
        assert len(tree.edges) == len(tree.nodes) - 1

    def test_larger_prize_spans_more(self, ft4):
        s, t = int(ft4.hosts[0]), int(ft4.hosts[10])
        countable = set(ft4.switches.tolist())
        small = grow_prized_tree(ft4.graph, s, t, 0.01, countable, required=3)
        large = grow_prized_tree(ft4.graph, s, t, 100.0, countable, required=15)
        assert len(large.nodes) >= len(small.nodes)


class TestPrimalDualStroll:
    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_walk_validity(self, ft4, n):
        s, t = int(ft4.hosts[0]), int(ft4.hosts[12])
        countable = set(ft4.switches.tolist())
        result = primal_dual_stroll(ft4.graph, s, t, n, countable=countable)
        assert result.walk[0] == s and result.walk[-1] == t
        visited = [int(v) for v in result.walk if int(v) in countable]
        assert len(set(visited)) >= n
        assert result.distinct.size == n

    def test_cost_never_below_optimal(self, ft4):
        """The 2+ε scheme can only be above the true optimum."""
        flows = FlowSet(
            sources=[int(ft4.hosts[0])], destinations=[int(ft4.hosts[9])], rates=[1.0]
        )
        pd = primal_dual_placement_top1(ft4, flows, 3)
        opt = optimal_placement(ft4, flows, 3)
        assert pd.cost >= opt.cost - 1e-9

    def test_within_approximation_band(self, ft4):
        """Empirically the stroll stays within the 2+ε guarantee of optimal
        (the guarantee bounds the stroll, which upper-bounds the chain)."""
        for seed in range(3):
            flows = place_vm_pairs(ft4, 1, intra_rack_fraction=0.0, seed=seed)
            flows = flows.with_rates(np.asarray([10.0]))
            pd = primal_dual_placement_top1(ft4, flows, 4)
            opt = optimal_placement(ft4, flows, 4)
            assert pd.cost <= 2.5 * opt.cost + 1e-9

    def test_tour_case(self, ft4):
        h = int(ft4.hosts[3])
        countable = set(ft4.switches.tolist())
        result = primal_dual_stroll(ft4.graph, h, h, 3, countable=countable)
        assert result.walk[0] == h and result.walk[-1] == h
        assert result.distinct.size == 3

    def test_infeasible_n(self, ft4):
        with pytest.raises(InfeasibleError):
            primal_dual_stroll(
                ft4.graph,
                int(ft4.hosts[0]),
                int(ft4.hosts[1]),
                5,
                countable=set(ft4.switches[:2].tolist()),
            )


class TestPrimalDualPlacement:
    def test_valid_placement(self, ft4):
        flows = FlowSet(
            sources=[int(ft4.hosts[0])], destinations=[int(ft4.hosts[15])], rates=[3.0]
        )
        result = primal_dual_placement_top1(ft4, flows, 5)
        assert result.num_vnfs == 5
        assert len(set(result.placement.tolist())) == 5
        switch_set = set(ft4.switches.tolist())
        assert all(int(s) in switch_set for s in result.placement)

    def test_algorithm_tag(self, ft4):
        flows = FlowSet(
            sources=[int(ft4.hosts[0])], destinations=[int(ft4.hosts[1])], rates=[1.0]
        )
        assert primal_dual_placement_top1(ft4, flows, 2).algorithm == "primal-dual"
