"""Hypothesis battery: cost-model invariants across fabric families.

These are the algebraic facts the whole framework rests on; each is
checked over random workloads on structurally different fabrics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import CostContext
from repro.topology.bcube import bcube
from repro.topology.fattree import fat_tree
from repro.topology.leafspine import leaf_spine
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel

_FABRICS = {
    "fat-tree": lambda: fat_tree(4),
    "leaf-spine": lambda: leaf_spine(4, 2, 4),
    "bcube": lambda: bcube(4, 1),
}
_CACHE: dict = {}


def fabric(name: str):
    if name not in _CACHE:
        _CACHE[name] = _FABRICS[name]()
    return _CACHE[name]


def context(name: str, seed: int, l: int = 6) -> CostContext:
    topo = fabric(name)
    flows = place_vm_pairs(topo, l, seed=seed)
    flows = flows.with_rates(FacebookTrafficModel().sample(l, rng=seed))
    return CostContext(topo, flows)


def random_chain(ctx: CostContext, seed: int, n: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.choice(ctx.switches, size=n, replace=False)


@settings(max_examples=12, deadline=None)
@given(name=st.sampled_from(sorted(_FABRICS)), seed=st.integers(0, 400))
def test_rate_scaling_is_linear(name, seed):
    """C_a(k·λ) = k · C_a(λ) — the cost model is linear in traffic."""
    ctx = context(name, seed)
    placement = random_chain(ctx, seed)
    scaled = ctx.with_rates(ctx.flows.rates * 3.5)
    assert scaled.communication_cost(placement) == pytest.approx(
        3.5 * ctx.communication_cost(placement)
    )


@settings(max_examples=12, deadline=None)
@given(name=st.sampled_from(sorted(_FABRICS)), seed=st.integers(0, 400))
def test_flow_additivity(name, seed):
    """C_a over a flow set equals the sum of C_a over its parts."""
    ctx = context(name, seed)
    placement = random_chain(ctx, seed)
    l = ctx.flows.num_flows
    first = ctx.with_flows(ctx.flows.subset(np.arange(l // 2)))
    second = ctx.with_flows(ctx.flows.subset(np.arange(l // 2, l)))
    assert ctx.communication_cost(placement) == pytest.approx(
        first.communication_cost(placement) + second.communication_cost(placement)
    )


@settings(max_examples=12, deadline=None)
@given(name=st.sampled_from(sorted(_FABRICS)), seed=st.integers(0, 400))
def test_reversed_chain_swaps_attractions(name, seed):
    """Reversing the chain swaps ingress/egress roles exactly."""
    ctx = context(name, seed)
    placement = random_chain(ctx, seed)
    reversed_flows = ctx.flows.with_endpoints(
        ctx.flows.destinations.copy(), ctx.flows.sources.copy()
    )
    reversed_ctx = ctx.with_flows(reversed_flows)
    assert ctx.communication_cost(placement) == pytest.approx(
        reversed_ctx.communication_cost(placement[::-1].copy())
    )


@settings(max_examples=12, deadline=None)
@given(
    name=st.sampled_from(sorted(_FABRICS)),
    seed=st.integers(0, 400),
    mu=st.floats(0.0, 1e5),
)
def test_migration_cost_symmetry(name, seed, mu):
    """C_b(p, m) = C_b(m, p) on undirected fabrics."""
    ctx = context(name, seed)
    p = random_chain(ctx, seed)
    m = random_chain(ctx, seed + 1)
    assert ctx.migration_cost(p, m, mu) == pytest.approx(ctx.migration_cost(m, p, mu))


@settings(max_examples=12, deadline=None)
@given(name=st.sampled_from(sorted(_FABRICS)), seed=st.integers(0, 400))
def test_migration_cost_triangle(name, seed):
    """Per-position triangle inequality: C_b(p, m) <= C_b(p, q) + C_b(q, m)."""
    ctx = context(name, seed)
    p = random_chain(ctx, seed)
    q = random_chain(ctx, seed + 1)
    m = random_chain(ctx, seed + 2)
    assert ctx.migration_cost(p, m, 1.0) <= (
        ctx.migration_cost(p, q, 1.0) + ctx.migration_cost(q, m, 1.0) + 1e-9
    )


@settings(max_examples=12, deadline=None)
@given(name=st.sampled_from(sorted(_FABRICS)), seed=st.integers(0, 400))
def test_chain_subpath_monotone(name, seed):
    """Dropping the last VNF never increases the chain cost."""
    ctx = context(name, seed)
    placement = random_chain(ctx, seed, n=4)
    assert ctx.chain_cost(placement[:-1]) <= ctx.chain_cost(placement) + 1e-9
