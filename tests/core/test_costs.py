import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import CostContext, validate_placement
from repro.errors import PlacementError, WorkloadError
from repro.workload.flows import FlowSet, place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


class TestValidatePlacement:
    def test_valid(self, ft4):
        placement = ft4.switches[:3]
        out = validate_placement(ft4, placement, 3)
        assert out.tolist() == placement.tolist()

    def test_host_rejected(self, ft4):
        with pytest.raises(PlacementError, match="not switches"):
            validate_placement(ft4, [int(ft4.hosts[0])])

    def test_duplicates_rejected(self, ft4):
        sw = int(ft4.switches[0])
        with pytest.raises(PlacementError, match="repeats"):
            validate_placement(ft4, [sw, sw])

    def test_wrong_size(self, ft4):
        with pytest.raises(PlacementError, match="expected"):
            validate_placement(ft4, ft4.switches[:2], 3)

    def test_empty_rejected(self, ft4):
        with pytest.raises(PlacementError):
            validate_placement(ft4, [])


class TestEq1WorkedExample:
    """Example 1 / Fig. 3: the k=2 fat tree with λ = <100, 1>."""

    def test_initial_placement_costs_410(self, ft2, example1_flows):
        ctx = CostContext(ft2, example1_flows)
        # f1 at h1's edge switch, f2 at the adjacent aggregation switch
        s1 = ft2.rack_of_host(int(ft2.hosts[0]))
        s2 = int(ft2.graph.neighbors(s1)[1])  # its aggregation neighbor
        placement = np.asarray([s1, s2])
        assert ctx.communication_cost(placement) == pytest.approx(410.0)

    def test_rate_flip_costs_1004(self, ft2, example1_flows):
        flipped = example1_flows.with_rates([1.0, 100.0])
        ctx = CostContext(ft2, flipped)
        s1 = ft2.rack_of_host(int(ft2.hosts[0]))
        s2 = int(ft2.graph.neighbors(s1)[1])
        assert ctx.communication_cost(np.asarray([s1, s2])) == pytest.approx(1004.0)

    def test_migrated_placement_costs_410_plus_6(self, ft2, example1_flows):
        flipped = example1_flows.with_rates([1.0, 100.0])
        ctx = CostContext(ft2, flipped)
        s1 = ft2.rack_of_host(int(ft2.hosts[0]))
        s2 = int(ft2.graph.neighbors(s1)[1])
        t1 = ft2.rack_of_host(int(ft2.hosts[1]))  # h2's edge switch
        t2 = int(ft2.graph.neighbors(t1)[1])  # its aggregation neighbor
        old = np.asarray([s1, s2])
        new = np.asarray([t1, t2])
        assert ctx.communication_cost(new) == pytest.approx(410.0)
        assert ctx.migration_cost(old, new, mu=1.0) == pytest.approx(6.0)
        assert ctx.total_cost(old, new, mu=1.0) == pytest.approx(416.0)


class TestCostContext:
    def test_per_flow_sums_to_total(self, ft4, small_workload):
        ctx = CostContext(ft4, small_workload)
        placement = ft4.switches[[0, 5, 10]]
        assert ctx.per_flow_costs(placement).sum() == pytest.approx(
            ctx.communication_cost(placement)
        )

    def test_single_vnf_has_no_chain(self, ft4, small_workload):
        ctx = CostContext(ft4, small_workload)
        placement = ft4.switches[[3]]
        expected = (
            ctx.ingress_attraction[placement[0]] + ctx.egress_attraction[placement[0]]
        )
        assert ctx.communication_cost(placement) == pytest.approx(expected)

    def test_migration_cost_zero_when_static(self, ft4, small_workload):
        ctx = CostContext(ft4, small_workload)
        p = ft4.switches[:4]
        assert ctx.migration_cost(p, p, mu=100.0) == 0.0

    def test_negative_mu_rejected(self, ft4, small_workload):
        ctx = CostContext(ft4, small_workload)
        p = ft4.switches[:2]
        with pytest.raises(WorkloadError):
            ctx.migration_cost(p, p, mu=-1.0)

    def test_mismatched_migration_shapes(self, ft4, small_workload):
        ctx = CostContext(ft4, small_workload)
        with pytest.raises(PlacementError):
            ctx.migration_cost(ft4.switches[:2], ft4.switches[:3], mu=1.0)

    def test_with_rates_scales_linearly(self, ft4, small_workload):
        ctx = CostContext(ft4, small_workload)
        doubled = ctx.with_rates(small_workload.rates * 2.0)
        placement = ft4.switches[:3]
        assert doubled.communication_cost(placement) == pytest.approx(
            2.0 * ctx.communication_cost(placement)
        )

    def test_switch_attractions_align(self, ft4, small_workload):
        ctx = CostContext(ft4, small_workload)
        a_in, a_out = ctx.switch_attractions()
        assert a_in.shape == (ft4.num_switches,)
        sw0 = int(ft4.switches[0])
        assert a_in[0] == ctx.ingress_attraction[sw0]

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_eq1_equals_manual_sum(self, ft4, seed):
        """Property: the vectorized C_a matches a direct per-flow evaluation."""
        flows = place_vm_pairs(ft4, 6, seed=seed)
        flows = flows.with_rates(FacebookTrafficModel().sample(6, rng=seed))
        ctx = CostContext(ft4, flows)
        rng = np.random.default_rng(seed)
        placement = rng.choice(ft4.switches, size=3, replace=False)
        dist = ft4.graph.distances
        chain = sum(dist[placement[j], placement[j + 1]] for j in range(2))
        manual = sum(
            rate * (dist[src, placement[0]] + chain + dist[placement[-1], dst])
            for src, dst, rate in zip(flows.sources, flows.destinations, flows.rates)
        )
        assert ctx.communication_cost(placement) == pytest.approx(manual)
