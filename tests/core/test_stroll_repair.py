"""The bounded-scan + insertion-repair path of the stroll engine.

A closure dominated by one very cheap triangle makes every e-edge optimum
orbit the triangle without collecting fresh nodes — the failure mode the
pseudocode's no-backtrack rule only "partially" fixes (Example 3).  The
engine must detect the stall within its scan window and repair by
inserting the cheapest missing nodes.
"""

import numpy as np
import pytest

from repro.core.stroll import StrollEngine, dp_stroll
from repro.errors import InfeasibleError
from repro.graphs.metric_closure import satisfies_triangle_inequality
from repro.graphs.paths import closure_walk_cost, count_distinct_intermediates


def cheap_triangle_closure(m: int = 9) -> np.ndarray:
    """A metric where nodes 1 and 2 form a near-free triangle with node 0."""
    base = np.full((m, m), 10.0)
    np.fill_diagonal(base, 0.0)
    for a in (0, 1, 2):
        for b in (0, 1, 2):
            if a != b:
                base[a, b] = 0.1
    # repair metric consistency (shortest-path closure of the raw costs)
    for k in range(m):
        base = np.minimum(base, base[:, k][:, None] + base[k, :][None, :])
    assert satisfies_triangle_inequality(base)
    return base


class TestRepairPath:
    def test_solve_terminates_and_is_feasible(self):
        closure = cheap_triangle_closure()
        result = dp_stroll(closure, 0, 8, 4)
        assert count_distinct_intermediates(result.walk, [0, 8]) >= 4
        assert closure_walk_cost(closure, result.walk) == pytest.approx(result.cost)

    def test_repair_flag_set_when_scan_fails(self):
        closure = cheap_triangle_closure()
        engine = StrollEngine(closure, target=8)
        engine.scan_slack = 0  # force immediate repair
        result = engine.solve(0, 4)
        assert result.extra.get("repaired") is True
        assert count_distinct_intermediates(result.walk, [0, 8]) >= 4

    def test_repair_cost_not_absurd(self):
        """Insertion repair should stay within a small factor of the direct
        visit-everything walk."""
        closure = cheap_triangle_closure()
        engine = StrollEngine(closure, target=8)
        engine.scan_slack = 0
        result = engine.solve(0, 4)
        # a trivial feasible walk: 0 -> four fresh nodes -> 8 (5 x 10)
        assert result.cost <= 5 * 10.0 + 1e-9

    def test_repair_infeasible_when_no_candidates(self):
        closure = cheap_triangle_closure(5)
        engine = StrollEngine(closure, target=4)
        engine.scan_slack = 0
        with pytest.raises(InfeasibleError):
            # needs 4 distinct among only 3 non-endpoint nodes
            engine.solve(0, 4)

    def test_batch_solve_covers_repaired_sources(self):
        closure = cheap_triangle_closure()
        engine = StrollEngine(closure, target=8)
        engine.scan_slack = 1
        costs, edges = engine.batch_solve(4)
        assert np.isfinite(costs[:8]).all()
        assert (edges[:8] > 0).all()
