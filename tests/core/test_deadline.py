"""Deadline-bounded solves: fallback chains and graceful degradation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BudgetExceededError, ReproError
from repro.session import SolverSession

pytestmark = pytest.mark.faults


@pytest.fixture()
def session(ft4):
    return SolverSession(ft4)


@pytest.fixture()
def flows(ft4, small_scenario):
    return small_scenario(ft4, 6, seed=7)


class TestNoDeadlineIsIdentical:
    def test_placement_bit_identical(self, session, flows):
        plain = session.solve(flows, 3)
        assert "deadline" not in plain.extra
        assert "degraded" not in plain.extra

    def test_generous_deadline_selects_requested(self, session, flows):
        plain = session.solve(flows, 3)
        bounded = session.solve(flows, 3, deadline=3600.0)
        assert np.array_equal(bounded.placement, plain.placement)
        assert bounded.cost == plain.cost
        assert bounded.extra["degraded"] is False
        assert bounded.extra["deadline"]["selected"] == "dp"
        assert bounded.extra["deadline"]["requested"] == "dp"
        assert bounded.extra["deadline"]["attempts"] == [
            {"algo": "dp", "outcome": "completed"}
        ]

    def test_generous_deadline_migration(self, session, flows):
        prev = session.solve(flows, 3).placement
        shifted = flows.with_rates(flows.rates[::-1].copy())
        plain = session.solve(shifted, 3, prev=prev, mu=10.0)
        bounded = session.solve(shifted, 3, prev=prev, mu=10.0, deadline=3600.0)
        assert np.array_equal(bounded.placement, plain.placement)
        assert bounded.extra["degraded"] is False
        assert bounded.extra["deadline"]["selected"] == "mpareto"


class TestExhaustedBudgetFallsBack:
    def test_zero_deadline_placement_degrades_to_greedy(self, session, flows):
        result = session.solve(flows, 3, deadline=0.0)
        info = result.extra["deadline"]
        assert result.extra["degraded"] is True
        assert info["selected"] == "greedy"
        assert info["attempts"] == [
            {"algo": "dp", "outcome": "skipped"},
            {"algo": "greedy", "outcome": "completed"},
        ]
        # the degraded result is still a valid placement
        assert result.placement.size == 3

    def test_zero_deadline_migration_degrades_to_stay_put(self, session, flows):
        prev = session.solve(flows, 3).placement
        result = session.solve(flows, 3, prev=prev, mu=10.0, deadline=0.0)
        info = result.extra["deadline"]
        assert result.extra["degraded"] is True
        assert info["selected"] == "none"
        assert np.array_equal(result.placement, prev)
        assert result.migration_cost == 0.0

    def test_final_stage_always_runs(self, session, flows):
        # even with the budget spent before the first stage, solve()
        # returns a result — a timeout is never surfaced to the caller
        result = session.solve(flows, 3, deadline=0.0)
        assert result is not None


class TestBudgetExceededFallsThrough:
    def test_exploding_requested_stage_falls_back(self, ft4, flows):
        session = SolverSession(ft4)

        def exploding(topology, fl, sfc, **options):
            raise BudgetExceededError("search budget exhausted")

        session._PLACERS = dict(SolverSession._PLACERS)
        session._PLACERS["optimal"] = exploding
        result = session.solve(flows, 3, algo="optimal", deadline=60.0)
        info = result.extra["deadline"]
        assert result.extra["degraded"] is True
        assert info["requested"] == "optimal"
        assert info["selected"] == "dp"
        assert info["attempts"] == [
            {"algo": "optimal", "outcome": "failed:BudgetExceededError"},
            {"algo": "dp", "outcome": "completed"},
        ]

    def test_without_deadline_budget_error_propagates(self, ft4, flows):
        session = SolverSession(ft4)

        def exploding(topology, fl, sfc, **options):
            raise BudgetExceededError("search budget exhausted")

        session._PLACERS = dict(SolverSession._PLACERS)
        session._PLACERS["optimal"] = exploding
        with pytest.raises(BudgetExceededError):
            session.solve(flows, 3, algo="optimal")

    def test_solver_options_not_forwarded_to_fallbacks(self, ft4, flows):
        # budget= is an optimal-only option; the dp fallback would crash
        # on it, so the chain must strip it for non-requested stages
        session = SolverSession(ft4)

        def exploding(topology, fl, sfc, **options):
            assert options.get("budget") == 123
            raise BudgetExceededError("search budget exhausted")

        session._PLACERS = dict(SolverSession._PLACERS)
        session._PLACERS["optimal"] = exploding
        result = session.solve(flows, 3, algo="optimal", deadline=60.0, budget=123)
        assert result.extra["deadline"]["selected"] == "dp"


class TestDeadlineValidation:
    @pytest.mark.parametrize("bad", [-1.0, float("inf"), float("nan")])
    def test_invalid_deadline_rejected(self, session, flows, bad):
        with pytest.raises(ReproError, match="deadline"):
            session.solve(flows, 3, deadline=bad)
