import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stroll import StrollEngine, dp_stroll, dp_stroll_reference
from repro.errors import InfeasibleError, SolverError
from repro.graphs.adjacency import GraphBuilder
from repro.graphs.metric_closure import metric_closure
from repro.graphs.paths import (
    closure_walk_cost,
    count_distinct_intermediates,
    has_immediate_backtrack,
)
from tests.conftest import random_cost_graph


def fig4_closure():
    """A 6-node instance in the spirit of Fig. 4(a) with known optima."""
    b = GraphBuilder()
    s, a, bb, t, c, d = b.add_nodes(["s", "A", "B", "t", "C", "D"])
    b.add_edge(s, a, 2.0)
    b.add_edge(a, bb, 3.0)
    b.add_edge(bb, t, 2.0)
    b.add_edge(s, d, 1.0)
    b.add_edge(d, t, 2.0)
    b.add_edge(t, c, 1.5)
    return metric_closure(b.build()), s, t


def random_closure(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return metric_closure(random_cost_graph(rng, n))


def brute_force_stroll(closure, source, target, n, max_extra=3):
    """Exhaustive optimal n-stroll by enumerating closure walks."""
    m = closure.shape[0]
    best = np.inf
    for e in range(n + 1, n + 1 + max_extra + 1):
        for mids in itertools.product(range(m), repeat=e - 1):
            walk = [source, *mids, target]
            if any(u == v for u, v in zip(walk, walk[1:])):
                continue
            if target in mids:
                continue
            if count_distinct_intermediates(walk, [source, target]) >= n:
                best = min(best, closure_walk_cost(closure, walk))
        if np.isfinite(best):
            break
    return best


class TestWorkedExample:
    def test_second_best_mode_finds_true_optimum(self):
        closure, s, t = fig4_closure()
        result = dp_stroll(closure, s, t, 2)
        assert result.cost == pytest.approx(6.0)
        assert result.distinct.size == 2

    def test_paper_mode_matches_reference(self):
        closure, s, t = fig4_closure()
        vec = dp_stroll(closure, s, t, 2, mode="paper")
        ref = dp_stroll_reference(closure, s, t, 2)
        assert vec.cost == pytest.approx(ref.cost)
        assert vec.walk.tolist() == ref.walk.tolist()


class TestStrollValidity:
    @pytest.mark.parametrize("mode", ["second-best", "paper"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_walk_properties(self, mode, seed):
        closure = random_closure(seed, 9)
        result = dp_stroll(closure, 0, 8, 4, mode=mode)
        walk = result.walk
        assert walk[0] == 0 and walk[-1] == 8
        assert count_distinct_intermediates(walk, [0, 8]) >= 4
        assert not has_immediate_backtrack(walk.tolist())
        assert closure_walk_cost(closure, walk) == pytest.approx(result.cost)
        assert result.num_edges == len(walk) - 1
        # the distinct array lists the first n fresh intermediates in order
        assert len(set(result.distinct.tolist())) == 4

    def test_tour_case(self):
        closure = random_closure(7, 8)
        result = dp_stroll(closure, 3, 3, 2)
        assert result.walk[0] == 3 and result.walk[-1] == 3
        assert count_distinct_intermediates(result.walk, [3]) >= 2

    def test_target_never_intermediate(self):
        closure = random_closure(11, 8)
        result = dp_stroll(closure, 0, 5, 4)
        assert 5 not in result.walk[1:-1].tolist()


class TestAgainstBruteForce:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500), n=st.integers(1, 3))
    def test_dp_never_beats_true_optimum(self, seed, n):
        """The brute-force enumeration is the true n-stroll optimum; the DP
        (which only checks distinctness on its per-layer cheapest walk) can
        never go below it."""
        closure = random_closure(seed, 6)
        result = dp_stroll(closure, 0, 5, n)
        best = brute_force_stroll(closure, 0, 5, n)
        assert result.cost >= best - 1e-9

    def test_dp_usually_hits_the_optimum(self):
        """The paper reports DP-Stroll within ~8% of Optimal; on small random
        instances it should match the true optimum in the large majority of
        cases and never exceed it by much."""
        hits = 0
        trials = 30
        for seed in range(trials):
            closure = random_closure(seed + 900, 6)
            result = dp_stroll(closure, 0, 5, 2)
            best = brute_force_stroll(closure, 0, 5, 2)
            assert result.cost <= best * 1.5 + 1e-9
            if result.cost == pytest.approx(best):
                hits += 1
        assert hits >= int(0.8 * trials)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500), e=st.integers(2, 6))
    def test_paper_mode_layer_costs_dominate_second_best(self, seed, e):
        """Per layer, the paper's over-exclusion can only cost more: the
        second-best fallback computes the true min-cost no-backtrack
        e-edge walk.  (Final *stroll* outcomes are incomparable — a dearer
        layer walk may happen to satisfy distinctness at a smaller e.)"""
        closure = random_closure(seed, 7)
        strengthened = StrollEngine(closure, target=6)
        paper = StrollEngine(closure, target=6, mode="paper")
        for source in range(6):
            assert (
                strengthened.cost_at(source, e) <= paper.cost_at(source, e) + 1e-9
            )


class TestReferenceAgreement:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500), n=st.integers(1, 3))
    def test_vectorized_paper_mode_equals_reference(self, seed, n):
        closure = random_closure(seed, 7)
        vec = dp_stroll(closure, 0, 6, n, mode="paper")
        ref = dp_stroll_reference(closure, 0, 6, n)
        assert vec.cost == pytest.approx(ref.cost)
        assert vec.num_edges == ref.num_edges


class TestEngine:
    def test_batch_solve_matches_individual(self):
        closure = random_closure(21, 9)
        engine = StrollEngine(closure, target=8)
        costs, edges = engine.batch_solve(3)
        for source in range(8):
            single = StrollEngine(closure, target=8).solve(source, 3)
            assert costs[source] == pytest.approx(single.cost)
            assert edges[source] == single.num_edges

    def test_cost_at_layers_grow_lazily(self):
        closure = random_closure(5, 6)
        engine = StrollEngine(closure, target=5)
        assert engine.num_layers == 1
        engine.cost_at(0, 4)
        assert engine.num_layers == 4

    def test_max_edges_guard(self):
        closure = random_closure(5, 6)
        engine = StrollEngine(closure, target=5, max_edges=3)
        with pytest.raises(SolverError, match="max_edges"):
            engine.ensure_layers(10)

    def test_bad_mode(self):
        with pytest.raises(SolverError, match="mode"):
            StrollEngine(np.zeros((3, 3)), 0, mode="bogus")


class TestInputValidation:
    def test_too_few_nodes(self):
        closure = random_closure(0, 4)
        with pytest.raises(InfeasibleError):
            dp_stroll(closure, 0, 3, 3)

    def test_n_zero_rejected(self):
        closure = random_closure(0, 5)
        with pytest.raises(SolverError):
            dp_stroll(closure, 0, 4, 0)

    def test_non_square_rejected(self):
        with pytest.raises(SolverError):
            dp_stroll(np.zeros((2, 3)), 0, 1, 1)

    def test_endpoint_out_of_range(self):
        closure = random_closure(0, 5)
        with pytest.raises(SolverError):
            dp_stroll(closure, 0, 9, 1)
