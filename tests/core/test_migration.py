import numpy as np
import pytest

from repro.core.costs import CostContext
from repro.core.migration import (
    front_is_convex,
    frontier_trace,
    is_pareto_front,
    migration_corridors,
    migration_frontiers,
    mpareto_migration,
    no_migration,
    pareto_points,
)
from repro.core.optimal import optimal_migration
from repro.core.placement import dp_placement
from repro.errors import MigrationError
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


@pytest.fixture()
def workload(ft4):
    flows = place_vm_pairs(ft4, 10, seed=21)
    return flows.with_rates(FacebookTrafficModel().sample(10, rng=21))


class TestCorridors:
    def test_endpoints(self, ft4):
        src = ft4.switches[[0, 3]]
        dst = ft4.switches[[5, 3]]
        corridors = migration_corridors(ft4, src, dst)
        assert corridors[0][0] == src[0] and corridors[0][-1] == dst[0]
        assert corridors[1] == [int(src[1])]  # stationary VNF

    def test_corridor_is_shortest_path(self, ft4):
        src, dst = ft4.switches[[0]], ft4.switches[[18]]
        corridor = migration_corridors(ft4, src, dst)[0]
        assert len(corridor) - 1 == ft4.graph.cost(int(src[0]), int(dst[0]))

    def test_all_switches(self, ft4):
        corridors = migration_corridors(ft4, ft4.switches[:3], ft4.switches[5:8])
        switch_set = set(ft4.switches.tolist())
        for corridor in corridors:
            assert all(v in switch_set for v in corridor)

    def test_shape_mismatch(self, ft4):
        with pytest.raises(MigrationError):
            migration_corridors(ft4, ft4.switches[:2], ft4.switches[:3])


class TestFrontiers:
    def test_first_and_last_rows(self, ft4):
        src = ft4.switches[[0, 4]]
        dst = ft4.switches[[10, 15]]
        frontiers = migration_frontiers(ft4, src, dst)
        assert np.array_equal(frontiers[0], src)
        assert np.array_equal(frontiers[-1], dst)

    def test_row_count_is_hmax(self, ft4):
        src = ft4.switches[[0, 4]]
        dst = ft4.switches[[10, 15]]
        corridors = migration_corridors(ft4, src, dst)
        frontiers = migration_frontiers(ft4, src, dst)
        assert len(frontiers) == max(len(c) for c in corridors)

    def test_short_corridors_pad_at_destination(self, ft4):
        src = ft4.switches[[0, 4]]
        dst = ft4.switches[[10, 4]]  # second VNF stays
        frontiers = migration_frontiers(ft4, src, dst)
        for row in frontiers:
            assert row[1] == ft4.switches[4]


class TestFrontierTrace:
    def test_migration_cost_monotone(self, ft4, workload):
        """Along parallel frontiers C_b never decreases (Fig. 6(b) x-axis)."""
        ctx = CostContext(ft4, workload)
        src = ft4.switches[[0, 1, 2]]
        dst = dp_placement(ft4, workload, 3).placement
        trace = frontier_trace(ctx, src, dst, mu=10.0)
        assert np.all(np.diff(trace.migration_costs) >= -1e-9)

    def test_costs_match_context(self, ft4, workload):
        ctx = CostContext(ft4, workload)
        src = ft4.switches[[0, 1, 2]]
        dst = ft4.switches[[10, 11, 12]]
        trace = frontier_trace(ctx, src, dst, mu=7.0)
        for i, fr in enumerate(trace.frontiers):
            assert trace.communication_costs[i] == pytest.approx(
                ctx.communication_cost(fr)
            )
            assert trace.migration_costs[i] == pytest.approx(
                ctx.migration_cost(src, fr, 7.0)
            )

    def test_best_index_respects_distinct(self, ft4, workload):
        ctx = CostContext(ft4, workload)
        src = ft4.switches[[0, 1, 2]]
        dst = dp_placement(ft4, workload, 3).placement
        trace = frontier_trace(ctx, src, dst, mu=0.0)
        best = trace.best_index(require_distinct=True)
        assert trace.distinct[best]


class TestMPareto:
    def test_example1(self, ft2, example1_flows):
        """The paper's Example 1 end-to-end: 410 -> 1004 -> mPareto 416."""
        initial = dp_placement(ft2, example1_flows, 2).placement
        flipped = example1_flows.with_rates([1.0, 100.0])
        result = mpareto_migration(ft2, flipped, initial, mu=1.0)
        assert result.cost == pytest.approx(416.0)
        assert result.num_migrated == 2
        # 58.6% reduction vs staying put, as the paper reports
        stay = no_migration(ft2, flipped, initial)
        assert 1 - result.cost / stay.cost == pytest.approx(0.586, abs=0.01)

    def test_result_is_distinct_by_default(self, ft4, workload):
        src = ft4.switches[[0, 1, 2, 3]]
        result = mpareto_migration(ft4, workload, src, mu=1.0)
        assert len(set(result.migration.tolist())) == 4

    def test_never_worse_than_staying(self, ft4, workload):
        ctx = CostContext(ft4, workload)
        src = ft4.switches[[0, 5, 9]]
        result = mpareto_migration(ft4, workload, src, mu=100.0)
        assert result.cost <= ctx.communication_cost(src) + 1e-9

    def test_never_better_than_optimal(self, ft4, workload):
        src = ft4.switches[[0, 5]]
        mp = mpareto_migration(ft4, workload, src, mu=10.0)
        opt = optimal_migration(ft4, workload, src, mu=10.0)
        assert mp.cost >= opt.cost - 1e-9

    def test_huge_mu_freezes(self, ft4, workload):
        src = ft4.switches[[2, 7, 12]]
        result = mpareto_migration(ft4, workload, src, mu=1e12)
        assert np.array_equal(result.migration, src)
        assert result.num_migrated == 0

    def test_cost_decomposition(self, ft4, workload):
        src = ft4.switches[[0, 1, 2]]
        result = mpareto_migration(ft4, workload, src, mu=5.0)
        assert result.cost == pytest.approx(
            result.communication_cost + result.migration_cost
        )


class TestNoMigration:
    def test_pays_only_communication(self, ft4, workload):
        ctx = CostContext(ft4, workload)
        src = ft4.switches[[4, 8]]
        result = no_migration(ft4, workload, src)
        assert result.migration_cost == 0.0
        assert result.cost == pytest.approx(ctx.communication_cost(src))
        assert result.num_migrated == 0


class TestParetoAnalysis:
    def test_pareto_points_non_dominated(self, ft4, workload):
        ctx = CostContext(ft4, workload)
        src = ft4.switches[[0, 1, 2]]
        dst = dp_placement(ft4, workload, 3).placement
        trace = frontier_trace(ctx, src, dst, mu=10.0)
        front = pareto_points(trace)
        assert front.size >= 1
        cb, ca = trace.migration_costs, trace.communication_costs
        for i in front:
            dominated = np.any(
                (cb <= cb[i]) & (ca <= ca[i]) & ((cb < cb[i]) | (ca < ca[i]))
            )
            assert not dominated

    def test_is_pareto_front_detects_monotone(self):
        from repro.core.migration import FrontierTrace

        trace = FrontierTrace(
            frontiers=[None] * 3,
            migration_costs=np.asarray([0.0, 1.0, 2.0]),
            communication_costs=np.asarray([10.0, 6.0, 5.0]),
            distinct=np.ones(3, dtype=bool),
        )
        assert is_pareto_front(trace)
        assert front_is_convex(trace) in (True, False)  # well-defined

    def test_is_pareto_front_detects_violation(self):
        from repro.core.migration import FrontierTrace

        trace = FrontierTrace(
            frontiers=[None] * 3,
            migration_costs=np.asarray([0.0, 1.0, 2.0]),
            communication_costs=np.asarray([10.0, 11.0, 5.0]),
            distinct=np.ones(3, dtype=bool),
        )
        assert not is_pareto_front(trace)

    def test_convexity(self):
        from repro.core.migration import FrontierTrace

        convex = FrontierTrace(
            frontiers=[None] * 3,
            migration_costs=np.asarray([0.0, 1.0, 2.0]),
            communication_costs=np.asarray([10.0, 5.0, 4.0]),
            distinct=np.ones(3, dtype=bool),
        )
        assert front_is_convex(convex)
        concave = FrontierTrace(
            frontiers=[None] * 3,
            migration_costs=np.asarray([0.0, 1.0, 2.0]),
            communication_costs=np.asarray([10.0, 9.0, 2.0]),
            distinct=np.ones(3, dtype=bool),
        )
        assert not front_is_convex(concave)
