import itertools

import numpy as np
import pytest

from repro.core.costs import CostContext
from repro.core.optimal import exact_chain_search, optimal_migration, optimal_placement
from repro.core.placement import dp_placement
from repro.errors import BudgetExceededError, InfeasibleError
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


def brute_placement_cost(topology, flows, n):
    ctx = CostContext(topology, flows)
    return min(
        ctx.communication_cost(np.asarray(tup))
        for tup in itertools.permutations(topology.switches.tolist(), n)
    )


def brute_migration_cost(topology, flows, source, mu, n):
    ctx = CostContext(topology, flows)
    return min(
        ctx.total_cost(source, np.asarray(tup), mu)
        for tup in itertools.permutations(topology.switches.tolist(), n)
    )


@pytest.fixture()
def workload(ft4):
    flows = place_vm_pairs(ft4, 8, seed=11)
    return flows.with_rates(FacebookTrafficModel().sample(8, rng=11))


class TestOptimalPlacement:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_matches_brute_force(self, ft4, workload, n):
        result = optimal_placement(ft4, workload, n)
        assert result.cost == pytest.approx(brute_placement_cost(ft4, workload, n))

    def test_k2_example(self, ft2, example1_flows):
        result = optimal_placement(ft2, example1_flows, 2)
        assert result.cost == pytest.approx(410.0)

    def test_never_above_dp(self, ft4, workload):
        for n in (3, 4, 5):
            opt = optimal_placement(ft4, workload, n)
            dp = dp_placement(ft4, workload, n)
            assert opt.cost <= dp.cost + 1e-9

    def test_placement_distinct(self, ft4, workload):
        result = optimal_placement(ft4, workload, 4)
        assert len(set(result.placement.tolist())) == 4

    def test_budget_guard(self, ft8):
        flows = place_vm_pairs(ft8, 4, seed=0)
        flows = flows.with_rates(FacebookTrafficModel().sample(4, rng=0))
        # candidate restriction disables the warm start, so the search has
        # no incumbent and a budget of 1 must trip the guard, not hang
        with pytest.raises(BudgetExceededError):
            optimal_placement(
                ft8,
                flows,
                6,
                budget=1,
                candidate_switches=ft8.switches.tolist(),
            )

    def test_candidate_restriction(self, ft4, workload):
        cands = ft4.switches[:6].tolist()
        result = optimal_placement(ft4, workload, 3, candidate_switches=cands)
        assert set(result.placement.tolist()) <= set(cands)

    def test_bad_candidates_rejected(self, ft4, workload):
        with pytest.raises(InfeasibleError):
            optimal_placement(ft4, workload, 2, candidate_switches=[int(ft4.hosts[0])])

    def test_infeasible_candidate_count(self, ft4, workload):
        with pytest.raises(InfeasibleError):
            optimal_placement(
                ft4, workload, 3, candidate_switches=ft4.switches[:2].tolist()
            )


class TestOptimalMigration:
    @pytest.mark.parametrize("mu", [0.0, 1.0, 100.0])
    def test_matches_brute_force(self, ft4, workload, mu):
        source = ft4.switches[[0, 5]]
        result = optimal_migration(ft4, workload, source, mu)
        brute = brute_migration_cost(ft4, workload, source, mu, 2)
        assert result.cost == pytest.approx(brute)

    def test_example1_migration(self, ft2, example1_flows):
        """Example 1: after the rate flip, optimal total cost is 416."""
        initial = optimal_placement(ft2, example1_flows, 2).placement
        flipped = example1_flows.with_rates([1.0, 100.0])
        result = optimal_migration(ft2, flipped, initial, mu=1.0)
        assert result.cost == pytest.approx(416.0)
        assert result.communication_cost == pytest.approx(410.0)
        assert result.migration_cost == pytest.approx(6.0)

    def test_huge_mu_stays_put(self, ft4, workload):
        source = ft4.switches[[2, 7, 11]]
        result = optimal_migration(ft4, workload, source, mu=1e12)
        assert np.array_equal(result.migration, source)
        assert result.migration_cost == 0.0

    def test_mu_zero_reaches_optimal_placement(self, ft4, workload):
        """Theorem 4: with μ=0, TOM degenerates to TOP."""
        source = ft4.switches[[0, 1, 2]]
        migration = optimal_migration(ft4, workload, source, mu=0.0)
        placement = optimal_placement(ft4, workload, 3)
        assert migration.communication_cost == pytest.approx(placement.cost)

    def test_never_worse_than_staying(self, ft4, workload):
        ctx = CostContext(ft4, workload)
        source = ft4.switches[[3, 9, 14]]
        result = optimal_migration(ft4, workload, source, mu=50.0)
        assert result.cost <= ctx.communication_cost(source) + 1e-9


class TestExactChainSearch:
    def test_trivial_instance(self):
        dist = np.asarray([[0.0, 1.0], [1.0, 0.0]])
        scores = np.zeros((2, 2))
        tup, cost, _ = exact_chain_search(
            dist, 1.0, np.asarray([5.0, 0.0]), scores, upper_bound=np.inf, budget=1000
        )
        # start at node 1 (cheap start), chain to node 0
        assert tup.tolist() == [1, 0]
        assert cost == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            exact_chain_search(
                np.zeros((2, 2)), 1.0, np.zeros(2), np.zeros((1, 3)), budget=10
            )

    def test_infeasible_n(self):
        with pytest.raises(InfeasibleError):
            exact_chain_search(
                np.zeros((2, 2)), 1.0, np.zeros(2), np.zeros((3, 2)), budget=10
            )
