"""SolverSession incremental surface: apply(events) / advance(rates).

The invalidation contract (ISSUE 6): a fault hour invalidates the APSP
tables and downstream stroll artifacts *of the touched view*; a pure
rate tick invalidates nothing at all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.faults import FaultState, degrade
from repro.faults.process import FaultEvent
from repro.session import SolverSession

pytestmark = pytest.mark.faults


class TestAdvance:
    def test_rate_tick_invalidates_nothing(self, ft4, small_workload):
        flows = small_workload
        session = SolverSession(ft4)
        first = session.place(flows, 3)
        entries_before = len(session.cache)
        misses_before = session.cache.misses
        session.advance(flows.rates * 2.0)
        again = session.place(flows, 3)
        # every cached artifact survived the tick: no new misses, no new entries
        assert session.cache.misses == misses_before
        assert len(session.cache) == entries_before
        assert np.array_equal(again.placement, first.placement)

    def test_advance_bumps_rates_epoch_and_chains(self, ft4):
        session = SolverSession(ft4)
        assert session.epochs["rates"] == 0
        assert session.advance() is session
        assert session.advance() is session
        assert session.epochs["rates"] == 2
        assert session.epochs["topology"] == 0


class TestApply:
    def test_healthy_state_is_identity(self, ft4):
        session = SolverSession(ft4)
        topo, audit, view_session = session.apply(FaultState())
        assert topo is ft4
        assert audit is None
        assert view_session is session
        assert session.epochs["topology"] == 0

    def test_degraded_view_matches_cold_degrade_bits(self, ft4):
        state = FaultState(failed_switches=(int(ft4.switches[0]),))
        session = SolverSession(ft4)
        topo, audit, view_session = session.apply(state)
        assert view_session is not session
        assert view_session.cache is session.cache
        cold_view, cold_audit = degrade(ft4, state)
        dist, _ = topo.graph.apsp()
        cold_dist, _ = cold_view.graph.apsp()
        assert np.array_equal(dist, cold_dist)
        assert audit.is_partitioned == cold_audit.is_partitioned
        assert session.epochs["topology"] == 1

    def test_views_are_memoized_per_state(self, ft4):
        state = FaultState(failed_switches=(int(ft4.switches[1]),))
        session = SolverSession(ft4)
        first = session.apply(state)
        healthy = session.apply(FaultState())
        second = session.apply(state)
        assert first[0] is second[0]
        assert first[2] is second[2]
        assert healthy[2] is session
        # the revisit cost nothing: the topology epoch moved once, not twice
        assert session.epochs["topology"] == 1

    def test_event_deltas_fold_over_applied_state(self, ft4):
        s0, s1 = int(ft4.switches[0]), int(ft4.switches[1])
        session = SolverSession(ft4)
        topo1, _, _ = session.apply([FaultEvent(1, "switch", "fail", s0)])
        assert session._applied_state == FaultState(failed_switches=(s0,))
        session.apply([FaultEvent(2, "switch", "fail", s1)])
        assert session._applied_state == FaultState(failed_switches=(s0, s1))
        topo3, audit3, sess3 = session.apply([
            FaultEvent(3, "switch", "repair", s1),
            FaultEvent(3, "switch", "repair", s0),
        ])
        assert topo3 is ft4
        assert audit3 is None
        assert sess3 is session

    def test_event_state_equals_absolute_state_view(self, ft4):
        s0 = int(ft4.switches[0])
        session = SolverSession(ft4)
        by_event = session.apply([FaultEvent(1, "switch", "fail", s0)])
        by_state = session.apply(FaultState(failed_switches=(s0,)))
        assert by_event[0] is by_state[0]

    def test_unknown_kind_and_action_rejected(self, ft4):
        session = SolverSession(ft4)
        with pytest.raises(ReproError):
            session.apply([FaultEvent(1, "router", "fail", 0)])
        with pytest.raises(ReproError):
            session.apply([FaultEvent(1, "switch", "flap", 0)])
        with pytest.raises(ReproError):
            session.apply(["not-an-event"])

    def test_link_failure_round_trip(self, ft4):
        u, v, _w = ft4.graph.edges[len(ft4.graph.edges) // 2]
        link = (u, v) if u < v else (v, u)
        state = FaultState(failed_links=(link,))
        session = SolverSession(ft4)
        topo, _, _ = session.apply(state)
        cold_view, _ = degrade(ft4, state)
        assert np.array_equal(topo.graph.apsp()[0], cold_view.graph.apsp()[0])
        healthy_topo, _, _ = session.apply(FaultState())
        assert healthy_topo is ft4
