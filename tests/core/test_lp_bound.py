import numpy as np
import pytest

from repro.core.lp_bound import top1_lp_lower_bound
from repro.core.optimal import optimal_placement
from repro.core.placement import dp_placement_top1
from repro.errors import SolverError
from repro.graphs.generators import random_cost_graph
from repro.workload.flows import FlowSet


class TestLpLowerBound:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_sandwich_on_fat_tree(self, ft4, n):
        """LP <= Optimal <= DP-Stroll on real TOP-1 instances."""
        src, dst = int(ft4.hosts[0]), int(ft4.hosts[9])
        flows = FlowSet(sources=[src], destinations=[dst], rates=[1.0])
        countable = set(ft4.switches.tolist())
        lp = top1_lp_lower_bound(ft4.graph, src, dst, n, countable=countable)
        opt = optimal_placement(ft4, flows, n)
        stroll = dp_placement_top1(ft4, flows, n)
        assert lp <= opt.cost + 1e-6
        assert opt.cost <= stroll.cost + 1e-9
        assert lp > 0.0  # endpoints in different racks: the bound is active

    def test_bound_below_optimal_on_random_graphs(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            graph = random_cost_graph(rng, 9)
            lp = top1_lp_lower_bound(graph, 0, 8, 3)
            flows_cost = None
            # optimal stroll via the exact brute force used elsewhere
            from tests.core.test_stroll import brute_force_stroll
            from repro.graphs.metric_closure import metric_closure

            opt = brute_force_stroll(metric_closure(graph), 0, 8, 3)
            assert lp <= opt + 1e-6

    def test_rate_scales_linearly(self, ft4):
        src, dst = int(ft4.hosts[0]), int(ft4.hosts[9])
        countable = set(ft4.switches.tolist())
        one = top1_lp_lower_bound(ft4.graph, src, dst, 2, countable=countable, rate=1.0)
        ten = top1_lp_lower_bound(ft4.graph, src, dst, 2, countable=countable, rate=10.0)
        assert ten == pytest.approx(10.0 * one, rel=1e-6)

    def test_grows_with_n(self, ft4):
        src, dst = int(ft4.hosts[0]), int(ft4.hosts[9])
        countable = set(ft4.switches.tolist())
        bounds = [
            top1_lp_lower_bound(ft4.graph, src, dst, n, countable=countable)
            for n in (1, 3, 5)
        ]
        assert bounds[0] <= bounds[1] + 1e-9 <= bounds[2] + 2e-9

    def test_validation(self, ft4):
        src, dst = int(ft4.hosts[0]), int(ft4.hosts[1])
        with pytest.raises(SolverError):
            top1_lp_lower_bound(ft4.graph, src, dst, 0)
        with pytest.raises(SolverError):
            top1_lp_lower_bound(ft4.graph, src, dst, 3, countable={int(ft4.switches[0])})
