import itertools

import numpy as np
import pytest

from repro.core.costs import CostContext
from repro.core.placement import dp_placement
from repro.errors import InfeasibleError, PlacementError
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


@pytest.fixture()
def workload(ft4):
    flows = place_vm_pairs(ft4, 8, seed=101)
    return flows.with_rates(FacebookTrafficModel().sample(8, rng=101))


class TestCandidateRestriction:
    def test_stays_within_candidates(self, ft4, workload):
        cands = ft4.switches[:7].tolist()
        for n in (1, 2, 3, 4):
            result = dp_placement(ft4, workload, n, candidate_switches=cands)
            assert set(result.placement.tolist()) <= set(cands)

    def test_matches_restricted_brute_force(self, ft4, workload):
        cands = ft4.switches[:6].tolist()
        result = dp_placement(ft4, workload, 3, candidate_switches=cands)
        ctx = CostContext(ft4, workload)
        brute = min(
            ctx.communication_cost(np.asarray(tup))
            for tup in itertools.permutations(cands, 3)
        )
        # restricted DP is a heuristic; it must bracket the restricted optimum
        assert result.cost >= brute - 1e-9
        assert result.cost <= 1.2 * brute

    def test_full_set_equals_default(self, ft4, workload):
        full = dp_placement(ft4, workload, 4)
        explicit = dp_placement(
            ft4, workload, 4, candidate_switches=ft4.switches.tolist()
        )
        assert explicit.cost == pytest.approx(full.cost)

    def test_small_n_restricted(self, ft4, workload):
        cands = ft4.switches[5:9].tolist()
        for n in (1, 2):
            result = dp_placement(ft4, workload, n, candidate_switches=cands)
            assert set(result.placement.tolist()) <= set(cands)
            ctx = CostContext(ft4, workload)
            brute = min(
                ctx.communication_cost(np.asarray(tup))
                for tup in itertools.permutations(cands, n)
            )
            assert result.cost == pytest.approx(brute)

    def test_non_switch_candidates_rejected(self, ft4, workload):
        with pytest.raises(PlacementError, match="not switches"):
            dp_placement(ft4, workload, 2, candidate_switches=[int(ft4.hosts[0])])

    def test_too_few_candidates(self, ft4, workload):
        with pytest.raises(InfeasibleError):
            dp_placement(ft4, workload, 5, candidate_switches=ft4.switches[:3].tolist())


class TestStrollMatrixCache:
    def test_rates_do_not_affect_cache_reuse(self, ft4, workload):
        """Two calls with different rates must agree with fresh computation."""
        from repro.runtime.cache import ComputeCache

        cache = ComputeCache()
        first = dp_placement(ft4, workload, 4, cache=cache)
        other_rates = workload.with_rates(workload.rates[::-1].copy())
        cached = dp_placement(ft4, other_rates, 4, cache=cache)
        fresh = dp_placement(ft4, other_rates, 4, cache=ComputeCache())
        assert cached.cost == pytest.approx(fresh.cost)
        assert np.array_equal(cached.placement, fresh.placement)
        assert first.num_vnfs == 4

    def test_cache_entries_keyed_by_n_and_mode(self, ft4, workload):
        from repro.runtime.cache import ComputeCache

        cache = ComputeCache()
        dp_placement(ft4, workload, 4, cache=cache)
        first = cache.owner_entries(ft4)
        dp_placement(ft4, workload, 4, cache=cache)
        assert cache.owner_entries(ft4) == first  # repeat solves add nothing
        dp_placement(ft4, workload, 5, cache=cache)
        second = cache.owner_entries(ft4)
        assert second > first  # new n -> new stroll entries
        dp_placement(ft4, workload, 5, mode="paper", cache=cache)
        assert cache.owner_entries(ft4) > second  # new mode -> new entries

    def test_default_cache_hits_across_calls(self, ft4, workload):
        from repro.runtime.cache import get_compute_cache

        cache = get_compute_cache()
        cache.clear()
        cache.reset_stats()
        dp_placement(ft4, workload, 4)
        misses = cache.misses
        dp_placement(ft4, workload, 4)
        assert cache.misses == misses  # second solve served from cache
        assert cache.hits > 0

    def test_cache_released_with_topology(self):
        import gc

        from repro.runtime.cache import ComputeCache
        from repro.topology.fattree import fat_tree
        from repro.workload.flows import place_vm_pairs

        cache = ComputeCache()
        topo = fat_tree(4)
        flows = place_vm_pairs(topo, 4, seed=0)
        dp_placement(topo, flows, 3, cache=cache)
        assert cache.num_owners == 1
        del topo, flows
        gc.collect()
        assert cache.num_owners == 0
