"""The typed constraint object: validation, feasibility, bit-identity."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro import (
    Constraints,
    ConstraintError,
    InfeasibleError,
    SolverSession,
    active_constraints,
    chain_delay,
    fat_tree,
)
from repro.topology import apply_uniform_delays

pytestmark = pytest.mark.constrained


class TestValidation:
    def test_zero_capacity_rejected(self):
        with pytest.raises(ConstraintError, match="vnf_capacity"):
            Constraints(vnf_capacity=0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConstraintError, match="vnf_capacity"):
            Constraints(vnf_capacity=-1)

    def test_bool_capacity_rejected(self):
        with pytest.raises(ConstraintError, match="vnf_capacity"):
            Constraints(vnf_capacity=True)

    @pytest.mark.parametrize("field", ["max_delay", "bandwidth"])
    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf")])
    def test_nonpositive_bounds_rejected(self, field, value):
        with pytest.raises(ConstraintError, match=field):
            Constraints(**{field: value})

    def test_negative_occupancy_rejected(self):
        with pytest.raises(ConstraintError, match="occupancy"):
            Constraints(occupancy={3: -1})

    def test_duplicate_occupancy_rejected(self):
        with pytest.raises(ConstraintError, match="twice"):
            Constraints(occupancy=[(3, 1), (3, 2)])

    def test_zero_entries_canonicalized_away(self):
        assert Constraints(occupancy={3: 0}, load={4: 0.0}) == Constraints()
        assert Constraints(occupancy={3: 0}).is_none

    def test_mapping_and_pairs_canonicalize_equal(self):
        a = Constraints(occupancy={5: 1, 3: 2})
        b = Constraints(occupancy=[(3, 2), (5, 1)])
        assert a == b
        assert a.occupancy == ((3, 2), (5, 1))

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConstraintError, match="unknown"):
            Constraints.from_dict({"vnf_capacity": 1, "cpu": 4})

    def test_roundtrip(self):
        c = Constraints(
            vnf_capacity=2, max_delay=9.5, bandwidth=100.0,
            occupancy={1: 1}, load={2: 3.0},
        )
        assert Constraints.from_dict(c.to_dict()) == c

    def test_active_constraints_normalizes(self):
        assert active_constraints(None) is None
        assert active_constraints(Constraints.none()) is None
        c = Constraints(vnf_capacity=1)
        assert active_constraints(c) is c
        with pytest.raises(ConstraintError, match="Constraints instance"):
            active_constraints({"vnf_capacity": 1})


class TestFeasibility:
    def test_admissible_switches_drop_full_and_saturated(self, ft2):
        switches = ft2.switches.tolist()
        c = Constraints(
            vnf_capacity=1,
            bandwidth=10.0,
            occupancy={switches[0]: 1},
            load={switches[1]: 8.0},
        )
        admissible = c.admissible_switches(ft2, chain_rate=5.0).tolist()
        assert switches[0] not in admissible  # slot-full
        assert switches[1] not in admissible  # 8 + 5 > 10
        assert set(admissible) == set(switches[2:])

    def test_check_placement_names_each_problem(self, ft2):
        switches = ft2.switches.tolist()
        c = Constraints(vnf_capacity=1, occupancy={switches[0]: 1})
        problems = c.check_placement(ft2, [switches[0], switches[1]], 1.0)
        assert len(problems) == 1 and "vnf_capacity" in problems[0]
        assert c.check_placement(ft2, [switches[1], switches[2]], 1.0) == []

    def test_after_placement_accumulates(self, ft2):
        switches = ft2.switches.tolist()
        c = Constraints(vnf_capacity=2, bandwidth=10.0)
        nxt = c.after_placement([switches[0], switches[1]], 4.0)
        assert nxt.occupancy_of(switches[0]) == 1
        assert nxt.load_of(switches[1]) == 4.0
        again = nxt.after_placement([switches[0]], 4.0)
        assert again.occupancy_of(switches[0]) == 2
        assert again.load_of(switches[0]) == 8.0


def _min_chain_delay(topology, n):
    """Brute-force minimum of Σ c(p_j, p_{j+1}) over distinct placements."""
    switches = topology.switches.tolist()
    return min(
        chain_delay(topology, p)
        for p in itertools.permutations(switches, n)
    )


class TestDelayBound:
    def test_unsatisfiable_delay_is_diagnosed(self, small_scenario):
        topo = apply_uniform_delays(fat_tree(2), seed=3)
        flows = small_scenario(topo, 4, seed=3)
        floor = _min_chain_delay(topo, 3)
        session = SolverSession(topo)
        with pytest.raises(InfeasibleError) as err:
            session.place(
                flows, 3, constraints=Constraints(max_delay=0.5 * floor)
            )
        diagnosis = err.value.diagnosis
        assert diagnosis["reason"] == "delay"
        assert diagnosis["constraints"]["max_delay"] == pytest.approx(0.5 * floor)

    def test_exact_delay_floor_is_feasible(self, small_scenario):
        # the bound equals the brute-force minimum: only the min-delay
        # stroll(s) qualify, and the solver must still find one
        topo = apply_uniform_delays(fat_tree(2), seed=3)
        flows = small_scenario(topo, 4, seed=3)
        floor = _min_chain_delay(topo, 3)
        result = SolverSession(topo).place(
            flows, 3, constraints=Constraints(max_delay=floor)
        )
        assert chain_delay(topo, result.placement) <= floor * (1 + 1e-9) + 1e-9


class TestBitIdentity:
    def test_place_is_bit_identical_under_none(self, ft4, small_workload):
        session = SolverSession(ft4)
        plain = session.place(small_workload, 3)
        explicit = session.place(
            small_workload, 3, constraints=Constraints.none()
        )
        assert np.array_equal(plain.placement, explicit.placement)
        assert plain.cost == explicit.cost
        assert plain.meta == explicit.meta

    def test_migrate_is_bit_identical_under_none(self, ft4, small_workload):
        session = SolverSession(ft4)
        prev = session.place(small_workload, 3).placement
        shifted = small_workload.with_rates(small_workload.rates[::-1].copy())
        plain = session.migrate(prev, shifted, mu=10.0)
        explicit = session.migrate(
            prev, shifted, mu=10.0, constraints=Constraints.none()
        )
        assert np.array_equal(plain.placement, explicit.placement)
        assert plain.cost == explicit.cost

    def test_place_many_is_bit_identical_under_none(self, ft4, small_scenario):
        flowsets = [small_scenario(ft4, 4, seed=s) for s in range(4)]
        session = SolverSession(ft4)
        plain = session.place_many(flowsets, 2)
        explicit = session.place_many(
            flowsets, 2, constraints=Constraints.none()
        )
        for a, b in zip(plain, explicit):
            assert np.array_equal(a.placement, b.placement)
            assert a.cost == b.cost

    def test_fig11a_rows_unchanged_when_sessions_pass_none(self, monkeypatch):
        # the dynamic-day experiment re-run with every session query
        # explicitly carrying Constraints.none() must reproduce the
        # exact same rows — the structural bit-identity guarantee
        from repro.experiments import run_experiment
        import repro.session as session_module

        base = run_experiment("fig11a_hourly", "smoke")

        for name in ("place", "migrate"):
            original = getattr(session_module.SolverSession, name)

            def wrapped(self, *args, _original=original, **kwargs):
                kwargs.setdefault("constraints", Constraints.none())
                return _original(self, *args, **kwargs)

            monkeypatch.setattr(session_module.SolverSession, name, wrapped)

        again = run_experiment("fig11a_hourly", "smoke")
        assert base.rows == again.rows
