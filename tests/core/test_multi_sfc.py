import numpy as np
import pytest

from repro.core.multi_sfc import (
    MultiSfcPlacement,
    multi_sfc_cost,
    multi_sfc_migration,
    multi_sfc_placement,
)
from repro.core.placement import dp_placement
from repro.errors import InfeasibleError, PlacementError, WorkloadError
from repro.workload.flows import place_vm_pairs
from repro.workload.sfc import access_sfc, application_sfc
from repro.workload.traffic import FacebookTrafficModel


@pytest.fixture()
def setup(ft8):
    flows = place_vm_pairs(ft8, 20, seed=81)
    flows = flows.with_rates(FacebookTrafficModel().sample(20, rng=81))
    rng = np.random.default_rng(81)
    class_of = rng.integers(0, 2, size=20)
    # guarantee both classes are inhabited
    class_of[0], class_of[1] = 0, 1
    return flows, class_of


class TestMultiSfcPlacementType:
    def test_shared_switch_rejected(self):
        with pytest.raises(PlacementError, match="share"):
            MultiSfcPlacement(
                placements=(np.asarray([130, 131]), np.asarray([131, 132])),
                class_costs=(0.0, 0.0),
                cost=0.0,
            )


class TestMultiSfcPlacement:
    def test_disjoint_chains(self, ft8, setup):
        flows, class_of = setup
        result = multi_sfc_placement(
            ft8, flows, class_of, [access_sfc(5), application_sfc(4)]
        )
        assert result.num_classes == 2
        flat = np.concatenate(result.placements).tolist()
        assert len(set(flat)) == len(flat)
        assert result.placements[0].size == 5
        assert result.placements[1].size == 4

    def test_cost_is_sum_of_class_costs(self, ft8, setup):
        flows, class_of = setup
        result = multi_sfc_placement(
            ft8, flows, class_of, [access_sfc(3), application_sfc(3)]
        )
        assert result.cost == pytest.approx(sum(result.class_costs))
        recomputed = multi_sfc_cost(ft8, flows, class_of, result.placements)
        assert result.cost == pytest.approx(recomputed)

    def test_heaviest_class_first(self, ft8, setup):
        flows, class_of = setup
        result = multi_sfc_placement(
            ft8, flows, class_of, [access_sfc(3), application_sfc(3)]
        )
        rates = [float(flows.rates[class_of == c].sum()) for c in (0, 1)]
        expected_first = int(np.argmax(rates))
        assert result.extra["placement_order"][0] == expected_first

    def test_single_class_matches_dp(self, ft8, setup):
        flows, _ = setup
        class_of = np.zeros(flows.num_flows, dtype=np.int64)
        result = multi_sfc_placement(ft8, flows, class_of, [access_sfc(4)])
        dp = dp_placement(ft8, flows, 4)
        assert result.cost == pytest.approx(dp.cost)

    def test_too_many_vnfs(self, ft4):
        flows = place_vm_pairs(ft4, 4, seed=0)
        class_of = np.asarray([0, 0, 1, 1])
        with pytest.raises(InfeasibleError):
            multi_sfc_placement(ft4, flows, class_of, [12, 12])

    def test_empty_class_rejected(self, ft8, setup):
        flows, _ = setup
        class_of = np.zeros(flows.num_flows, dtype=np.int64)
        with pytest.raises(WorkloadError, match="no flows"):
            multi_sfc_placement(ft8, flows, class_of, [3, 3])

    def test_class_ids_validated(self, ft8, setup):
        flows, _ = setup
        bad = np.full(flows.num_flows, 7)
        with pytest.raises(WorkloadError):
            multi_sfc_placement(ft8, flows, bad, [3, 3])


class TestMultiSfcMigration:
    def test_migration_keeps_disjointness(self, ft8, setup):
        flows, class_of = setup
        current = multi_sfc_placement(ft8, flows, class_of, [3, 3])
        new_flows = flows.with_rates(FacebookTrafficModel().sample(20, rng=99))
        migrated, results = multi_sfc_migration(
            ft8, new_flows, class_of, current, mu=100.0
        )
        flat = np.concatenate(migrated.placements).tolist()
        assert len(set(flat)) == len(flat)
        assert len(results) == 2

    def test_migration_never_worse_than_staying(self, ft8, setup):
        flows, class_of = setup
        current = multi_sfc_placement(ft8, flows, class_of, [3, 3])
        new_flows = flows.with_rates(FacebookTrafficModel().sample(20, rng=99))
        stay = multi_sfc_cost(ft8, new_flows, class_of, current.placements)
        migrated, results = multi_sfc_migration(
            ft8, new_flows, class_of, current, mu=100.0
        )
        total = sum(r.cost for r in results)
        assert total <= stay + 1e-6
