import itertools

import numpy as np
import pytest

from repro.core.costs import CostContext
from repro.core.placement import chain_size, dp_placement, dp_placement_top1
from repro.errors import InfeasibleError, PlacementError
from repro.workload.flows import FlowSet, place_vm_pairs
from repro.workload.sfc import sfc_of_size
from repro.workload.traffic import FacebookTrafficModel


def brute_force_placement(topology, flows, n):
    """True TOP optimum by enumerating ordered distinct switch tuples."""
    ctx = CostContext(topology, flows)
    best_cost, best = np.inf, None
    for tup in itertools.permutations(topology.switches.tolist(), n):
        cost = ctx.communication_cost(np.asarray(tup))
        if cost < best_cost:
            best_cost, best = cost, tup
    return np.asarray(best), best_cost


class TestWorkedExample:
    def test_example1_initial_placement(self, ft2, example1_flows):
        """Fig. 3(a): optimal placement costs 410 with λ = <100, 1>."""
        result = dp_placement(ft2, example1_flows, 2)
        assert result.cost == pytest.approx(410.0)

    def test_example1_flipped_rates(self, ft2, example1_flows):
        """After the rate flip the fresh optimum is still 410 (mirrored)."""
        flipped = example1_flows.with_rates([1.0, 100.0])
        result = dp_placement(ft2, flipped, 2)
        assert result.cost == pytest.approx(410.0)


class TestSmallN:
    def test_n1_exact(self, ft4, small_workload):
        result = dp_placement(ft4, small_workload, 1)
        brute, brute_cost = brute_force_placement(ft4, small_workload, 1)
        assert result.cost == pytest.approx(brute_cost)

    def test_n2_exact(self, ft4, small_workload):
        result = dp_placement(ft4, small_workload, 2)
        _, brute_cost = brute_force_placement(ft4, small_workload, 2)
        assert result.cost == pytest.approx(brute_cost)

    def test_accepts_sfc_object(self, ft4, small_workload):
        result = dp_placement(ft4, small_workload, sfc_of_size(2))
        assert result.num_vnfs == 2


class TestDpPlacement:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_output_is_valid_distinct_placement(self, ft4, small_workload, n):
        result = dp_placement(ft4, small_workload, n)
        assert result.num_vnfs == n
        assert len(set(result.placement.tolist())) == n
        switch_set = set(ft4.switches.tolist())
        assert all(int(s) in switch_set for s in result.placement)

    def test_reported_cost_matches_cost_model(self, ft4, small_workload):
        result = dp_placement(ft4, small_workload, 4)
        ctx = CostContext(ft4, small_workload)
        assert result.cost == pytest.approx(ctx.communication_cost(result.placement))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_close_to_brute_force_n3(self, ft4, seed):
        """The paper reports DP within ~8% of Optimal; check n=3 on k=4."""
        flows = place_vm_pairs(ft4, 8, seed=seed)
        flows = flows.with_rates(FacebookTrafficModel().sample(8, rng=seed))
        result = dp_placement(ft4, flows, 3)
        _, brute_cost = brute_force_placement(ft4, flows, 3)
        assert result.cost >= brute_cost - 1e-9
        assert result.cost <= 1.15 * brute_cost

    def test_zero_rates_supported(self, ft4, small_workload):
        silent = small_workload.with_rates(np.zeros(small_workload.num_flows))
        result = dp_placement(ft4, silent, 3)
        assert result.cost == 0.0

    def test_too_many_vnfs_rejected(self, ft4, small_workload):
        with pytest.raises(InfeasibleError):
            dp_placement(ft4, small_workload, ft4.num_switches + 1)

    def test_bad_n_rejected(self, ft4, small_workload):
        with pytest.raises(PlacementError):
            dp_placement(ft4, small_workload, 0)

    def test_paper_mode_not_better_than_default(self, ft4, small_workload):
        default = dp_placement(ft4, small_workload, 4)
        paper = dp_placement(ft4, small_workload, 4, mode="paper")
        assert default.cost <= paper.cost + 1e-9

    def test_chain_size_helper(self):
        assert chain_size(5) == 5
        assert chain_size(sfc_of_size(3)) == 3
        with pytest.raises(PlacementError):
            chain_size(-1)


class TestDpPlacementTop1:
    def test_single_flow_matches_general_dp(self, ft4):
        """With l=1 the TOP-1 pipeline and Algorithm 3 attack the same
        problem; neither should beat the other by much."""
        flows = place_vm_pairs(ft4, 1, intra_rack_fraction=0.0, seed=5)
        flows = flows.with_rates(np.asarray([100.0]))
        top1 = dp_placement_top1(ft4, flows, 3)
        general = dp_placement(ft4, flows, 3)
        assert top1.cost == pytest.approx(general.cost, rel=0.25)

    def test_cost_against_brute_force(self, ft4):
        flows = FlowSet(
            sources=[int(ft4.hosts[0])], destinations=[int(ft4.hosts[9])], rates=[10.0]
        )
        result = dp_placement_top1(ft4, flows, 3)
        _, brute_cost = brute_force_placement(ft4, flows, 3)
        assert result.cost >= brute_cost - 1e-9
        assert result.cost <= 1.2 * brute_cost

    def test_tour_case_same_host(self, ft2):
        """Fig. 5: both VMs on h1 — the stroll degenerates to a tour."""
        h1 = int(ft2.hosts[0])
        flows = FlowSet(sources=[h1], destinations=[h1], rates=[5.0])
        result = dp_placement_top1(ft2, flows, 2)
        assert result.num_vnfs == 2
        # optimal tour: h1 -> s_edge -> s_agg -> back, cost 5 * 4
        assert result.cost == pytest.approx(20.0)

    def test_flow_index_selection(self, ft4, small_workload):
        r0 = dp_placement_top1(ft4, small_workload, 2, flow_index=0)
        r1 = dp_placement_top1(ft4, small_workload, 2, flow_index=1)
        assert r0.num_vnfs == r1.num_vnfs == 2

    def test_bad_flow_index(self, ft4, small_workload):
        with pytest.raises(PlacementError):
            dp_placement_top1(ft4, small_workload, 2, flow_index=99)

    def test_placements_are_switches(self, ft4, small_workload):
        result = dp_placement_top1(ft4, small_workload, 4)
        switch_set = set(ft4.switches.tolist())
        assert all(int(s) in switch_set for s in result.placement)
