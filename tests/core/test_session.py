"""SolverSession: bit-identity to the per-call API, amortization guarantees."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FacebookTrafficModel, fat_tree, leaf_spine
from repro.core.migration import mpareto_migration
from repro.core.placement import dp_placement
from repro.errors import ReproError
from repro.runtime.cache import ComputeCache
from repro.runtime.instrument import counters
from repro.session import SolverSession, _matmul_rows_bitwise
from repro.verify import assert_equivalent


_TOPOLOGIES = {
    "ft4": lambda: fat_tree(4),
    "ls23": lambda: leaf_spine(num_leaves=3, num_spines=2, hosts_per_leaf=3),
}
_TOPOLOGY_CACHE: dict = {}


def _topology(name):
    # hypothesis re-runs the test body many times; reuse one instance per
    # name so the session caches are exercised across examples
    if name not in _TOPOLOGY_CACHE:
        _TOPOLOGY_CACHE[name] = _TOPOLOGIES[name]()
    return _TOPOLOGY_CACHE[name]


class TestSessionPlaceEquivalence:
    @given(
        name=st.sampled_from(sorted(_TOPOLOGIES)),
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_place_matches_dp_placement_bitwise(self, small_scenario, name, seed, n):
        topo = _topology(name)
        flows = small_scenario(topo, 6, seed)
        session = SolverSession(topo)
        via_session = session.place(flows, n)
        cold = dp_placement(topo, flows, n, cache=ComputeCache())
        assert_equivalent(via_session, cold, context="session.place vs dp_placement")

    def test_migrate_matches_mpareto_bitwise(self, ft4, small_scenario):
        flows = small_scenario(ft4, 8, 3)
        session = SolverSession(ft4)
        prev = session.place(flows, 3).placement
        shifted = flows.with_rates(flows.rates[::-1].copy())
        via_session = session.migrate(prev, shifted, mu=10.0)
        cold = mpareto_migration(ft4, shifted, prev, 10.0, cache=ComputeCache())
        assert_equivalent(
            via_session, cold, context="session.migrate vs mpareto_migration"
        )

    def test_solve_facade_dispatch(self, ft4, small_scenario):
        flows = small_scenario(ft4, 6, 7)
        session = SolverSession(ft4)
        placed = session.solve(flows, 3)
        assert placed.meta["algorithm"] == "dp"
        moved = session.solve(flows, 3, prev=placed.placement, mu=1.0)
        assert moved.meta["algorithm"] == "mpareto"

    def test_unknown_algo_rejected(self, ft4, small_scenario):
        session = SolverSession(ft4)
        flows = small_scenario(ft4, 4, 0)
        with pytest.raises(ReproError, match="unknown placement algo"):
            session.place(flows, 3, algo="nope")
        with pytest.raises(ReproError, match="unknown migration algo"):
            session.migrate(np.array([0]), flows, mu=1.0, algo="nope")


class TestPlaceMany:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=1, max_value=5),
        hours=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_place_many_matches_mapped_singles(self, small_scenario, seed, n, hours):
        topo = _topology("ft4")
        base = small_scenario(topo, 6, seed)
        model = FacebookTrafficModel()
        flowsets = [
            base.with_rates(model.sample(6, rng=seed * 31 + h)) for h in range(hours)
        ]
        session = SolverSession(topo)
        batched = session.place_many(flowsets, n)
        singles = [session.place(f, n) for f in flowsets]
        for i, (got, want) in enumerate(zip(batched, singles)):
            assert_equivalent(got, want, context=f"place_many[{i}] vs place")

    def test_auto_batch_respects_blas_probe(self, ft4, small_scenario):
        flowsets = [small_scenario(ft4, 5, s) for s in (1, 2)]
        session = SolverSession(ft4)
        results = session.place_many(flowsets, 4, batch="auto")
        batched_flags = [r.extra.get("batched", False) for r in results]
        if _matmul_rows_bitwise():
            assert all(batched_flags)
        else:
            assert not any(batched_flags)

    def test_matmul_path_agrees_to_rounding(self, ft4, small_scenario):
        flowsets = [small_scenario(ft4, 5, s) for s in (3, 4, 5)]
        session = SolverSession(ft4)
        forced = session.place_many(flowsets, 4, batch="matmul")
        mapped = session.place_many(flowsets, 4, batch="map")
        for got, want in zip(forced, mapped):
            assert got.cost == pytest.approx(want.cost, rel=1e-12)

    def test_bad_batch_mode(self, ft4):
        session = SolverSession(ft4)
        with pytest.raises(ReproError, match="batch mode"):
            session.place_many([], 3, batch="bogus")


class TestAmortization:
    def test_zero_duplicate_apsp_per_session(self, small_scenario):
        """Many queries against one session trigger exactly one APSP solve."""
        topo = fat_tree(4)  # fresh topology: nothing cached for it yet
        model = FacebookTrafficModel()
        base = small_scenario(topo, 8, 11)
        before = counters().get("apsp_computes", 0)
        session = SolverSession(topo)
        for n in (2, 3, 4):
            for h in range(3):
                session.place(base.with_rates(model.sample(8, rng=h)), n)
        prev = session.place(base, 3).placement
        session.migrate(prev, base, mu=10.0)
        assert counters().get("apsp_computes", 0) - before == 1

    def test_warm_precomputes_stroll_matrix(self, small_scenario):
        topo = fat_tree(4)
        session = SolverSession(topo).warm(4)
        key_hits = session.cache.hits
        session.place(small_scenario(topo, 5, 1), 4)
        assert session.cache.hits > key_hits  # solve found the warmed matrix

    def test_artifact_properties(self, ft4):
        session = SolverSession(ft4)
        num_nodes = ft4.num_hosts + ft4.num_switches
        assert session.distances.shape == (num_nodes, num_nodes)
        assert set(session.edge_switches) == set(ft4.host_edge_switch)
        assert session.host_edge_map[int(ft4.hosts[0])] == int(
            ft4.host_edge_switch[0]
        )
