import numpy as np
import pytest

from repro.core.costs import CostContext
from repro.core.placement import dp_placement
from repro.core.replication import (
    ReplicatedPlacement,
    per_flow_copy_choice,
    replicated_communication_cost,
    replicated_placement,
)
from repro.errors import InfeasibleError, PlacementError
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


@pytest.fixture()
def workload(ft8):
    flows = place_vm_pairs(ft8, 24, seed=71)
    return flows.with_rates(FacebookTrafficModel().sample(24, rng=71))


class TestReplicatedPlacementType:
    def test_overlapping_copies_rejected(self, ft4):
        copies = np.asarray([[16, 17], [17, 18]])
        with pytest.raises(PlacementError, match="distinct"):
            ReplicatedPlacement(copies=copies, cost=0.0)

    def test_shape_accessors(self, ft4):
        rp = ReplicatedPlacement(copies=np.asarray([[16, 17], [18, 19]]), cost=1.0)
        assert rp.num_copies == 2
        assert rp.num_vnfs == 2


class TestReplicatedPlacement:
    def test_single_copy_equals_dp(self, ft8, workload):
        rp = replicated_placement(ft8, workload, n=4, num_copies=1)
        dp = dp_placement(ft8, workload, 4)
        assert rp.num_copies == 1
        assert rp.cost == pytest.approx(dp.cost)

    def test_more_copies_never_hurt(self, ft8, workload):
        """Adding a chain copy can only lower the min-over-copies cost."""
        costs = [
            replicated_placement(ft8, workload, n=4, num_copies=r).cost
            for r in (1, 2, 3)
        ]
        assert costs[1] <= costs[0] + 1e-6
        assert costs[2] <= costs[1] + 1e-6

    def test_copies_use_disjoint_switches(self, ft8, workload):
        rp = replicated_placement(ft8, workload, n=4, num_copies=3)
        flat = rp.copies.ravel().tolist()
        assert len(set(flat)) == len(flat)

    def test_cost_matches_cost_function(self, ft8, workload):
        rp = replicated_placement(ft8, workload, n=3, num_copies=2)
        recomputed = replicated_communication_cost(ft8, workload, rp.copies)
        assert rp.cost == pytest.approx(recomputed)

    def test_per_flow_choice_is_argmin(self, ft8, workload):
        rp = replicated_placement(ft8, workload, n=3, num_copies=2)
        ctx = CostContext(ft8, workload)
        choice = per_flow_copy_choice(ctx, rp)
        assert choice.shape == (workload.num_flows,)
        assert set(np.unique(choice)) <= set(range(rp.num_copies))

    def test_infeasible_copy_count(self, ft4, workload):
        flows = place_vm_pairs(ft4, 4, seed=0)
        with pytest.raises(InfeasibleError):
            replicated_placement(ft4, flows, n=8, num_copies=3)

    def test_bad_params(self, ft8, workload):
        with pytest.raises(PlacementError):
            replicated_placement(ft8, workload, n=3, num_copies=0)
        with pytest.raises(PlacementError):
            replicated_placement(ft8, workload, n=3, num_copies=1, residual_fraction=0.0)
