import numpy as np
import pytest

from repro.core.types import MigrationResult, PlacementResult
from repro.errors import PlacementError


class TestPlacementResult:
    def test_accessors(self):
        r = PlacementResult(placement=[3, 5, 7], cost=12.5, algorithm="dp")
        assert r.num_vnfs == 3
        assert r.ingress == 3
        assert r.egress == 7

    def test_empty_rejected(self):
        with pytest.raises(PlacementError):
            PlacementResult(placement=[], cost=0.0, algorithm="dp")

    def test_nonfinite_cost_rejected(self):
        with pytest.raises(PlacementError):
            PlacementResult(placement=[1], cost=float("inf"), algorithm="dp")

    def test_placement_immutable(self):
        r = PlacementResult(placement=[1, 2], cost=1.0, algorithm="dp")
        with pytest.raises(ValueError):
            r.placement[0] = 9


class TestMigrationResult:
    def test_num_migrated(self):
        r = MigrationResult(
            source=[1, 2, 3],
            migration=[1, 5, 6],
            cost=10.0,
            communication_cost=7.0,
            migration_cost=3.0,
            algorithm="mpareto",
        )
        assert r.num_migrated == 2

    def test_cost_consistency_enforced(self):
        with pytest.raises(PlacementError, match="cost"):
            MigrationResult(
                source=[1],
                migration=[2],
                cost=10.0,
                communication_cost=1.0,
                migration_cost=1.0,
                algorithm="x",
            )

    def test_shape_mismatch(self):
        with pytest.raises(PlacementError):
            MigrationResult(
                source=[1, 2],
                migration=[3],
                cost=0.0,
                communication_cost=0.0,
                migration_cost=0.0,
                algorithm="x",
            )

    def test_as_placement(self):
        r = MigrationResult(
            source=[1, 2],
            migration=[3, 4],
            cost=9.0,
            communication_cost=6.0,
            migration_cost=3.0,
            algorithm="mpareto",
        )
        p = r.as_placement()
        assert p.placement.tolist() == [3, 4]
        assert p.cost == 6.0
