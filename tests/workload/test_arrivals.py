import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.arrivals import ArrivalDepartureRates
from repro.workload.diurnal import DiurnalModel
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


@pytest.fixture()
def setup(ft4):
    flows = place_vm_pairs(ft4, 20, seed=131)
    flows = flows.with_rates(FacebookTrafficModel().sample(20, rng=131))
    return flows, DiurnalModel(), np.zeros(20)


class TestArrivalDepartureRates:
    def test_inactive_flows_are_silent(self, setup):
        flows, diurnal, offsets = setup
        proc = ArrivalDepartureRates(flows, diurnal, offsets, seed=1)
        for hour in range(diurnal.num_hours + 1):
            rates = proc.rates_at(hour)
            active = proc.active_at(hour)
            assert np.all(rates[~active] == 0.0)

    def test_active_flows_follow_diurnal(self, setup):
        flows, diurnal, offsets = setup
        proc = ArrivalDepartureRates(flows, diurnal, offsets, seed=1)
        hour = 6
        active = proc.active_at(hour)
        expected = flows.rates * diurnal.scale(hour)
        assert np.allclose(proc.rates_at(hour)[active], expected[active])

    def test_always_on_flows_span_day(self, setup):
        flows, diurnal, offsets = setup
        proc = ArrivalDepartureRates(
            flows, diurnal, offsets, always_on_fraction=1.0, seed=2
        )
        for hour in range(1, diurnal.num_hours + 1):
            assert proc.active_at(hour).all()

    def test_sessions_arrive_and_depart(self, setup):
        flows, diurnal, offsets = setup
        proc = ArrivalDepartureRates(
            flows, diurnal, offsets, always_on_fraction=0.0, mean_holding_hours=2.0, seed=3
        )
        activity = np.stack([proc.active_at(h) for h in range(13)])
        # at least one flow switches on during the day (rate 0 -> positive:
        # the paper's "new users join" TOM case)
        switched_on = np.any(~activity[:-1] & activity[1:])
        assert switched_on
        assert proc.churn_between(0, diurnal.num_hours) > 0

    def test_deterministic(self, setup):
        flows, diurnal, offsets = setup
        a = ArrivalDepartureRates(flows, diurnal, offsets, seed=7)
        b = ArrivalDepartureRates(flows, diurnal, offsets, seed=7)
        for hour in (2, 5, 9):
            assert np.array_equal(a.rates_at(hour), b.rates_at(hour))

    def test_usable_in_simulator(self, ft4, setup):
        from repro.sim.engine import initial_placement, simulate_day
        from repro.sim.policies import MParetoPolicy, NoMigrationPolicy

        flows, diurnal, offsets = setup
        proc = ArrivalDepartureRates(flows, diurnal, offsets, seed=4)
        placement = initial_placement(ft4, flows, 3, proc)
        stay = simulate_day(ft4, flows, NoMigrationPolicy(ft4, 1.0), proc, placement)
        move = simulate_day(ft4, flows, MParetoPolicy(ft4, 1.0), proc, placement)
        assert move.total_cost <= stay.total_cost + 1e-6

    def test_validation(self, setup):
        flows, diurnal, offsets = setup
        with pytest.raises(WorkloadError):
            ArrivalDepartureRates(flows, diurnal, offsets[:3])
        with pytest.raises(WorkloadError):
            ArrivalDepartureRates(flows, diurnal, offsets, mean_holding_hours=0.0)
        with pytest.raises(WorkloadError):
            ArrivalDepartureRates(flows, diurnal, offsets, always_on_fraction=2.0)
        proc = ArrivalDepartureRates(flows, diurnal, offsets)
        with pytest.raises(WorkloadError):
            proc.churn_between(5, 2)
