import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.diurnal import DiurnalModel, assign_cohorts, assign_cohorts_spatial
from repro.workload.flows import place_vm_pairs


class TestDiurnalModel:
    def test_eq9_exact_values(self):
        """Spot-check Eq. 9 with N=12, tau_min=0.2 at hand-computed hours."""
        model = DiurnalModel()
        assert model.scale(0) == 0.0
        assert model.scale(1) == pytest.approx(2 * (1 / 12) * 0.8)
        assert model.scale(6) == pytest.approx(0.8)  # peak = 1 - tau_min
        assert model.scale(9) == pytest.approx(2 * (3 / 12) * 0.8)
        assert model.scale(12) == 0.0

    def test_pattern_symmetric_around_noon(self):
        pattern = DiurnalModel().pattern()
        assert len(pattern) == 13
        assert np.allclose(pattern, pattern[::-1])

    def test_outside_day_is_zero(self):
        model = DiurnalModel()
        assert model.scale(-1) == 0.0
        assert model.scale(13) == 0.0

    def test_floored_variant(self):
        literal = DiurnalModel(variant="literal")
        floored = DiurnalModel(variant="floored")
        assert floored.scale(6) == pytest.approx(1.0)
        assert floored.scale(1) == pytest.approx(literal.scale(1) + 0.2)
        assert floored.scale(0) == 0.0  # outside the working day stays silent

    def test_flow_scales_applies_offsets(self):
        model = DiurnalModel()
        offsets = np.asarray([0.0, 3.0])
        scales = model.flow_scales(3, offsets)
        assert scales[0] == pytest.approx(model.scale(3))
        assert scales[1] == pytest.approx(model.scale(6))

    def test_peak_hour(self):
        assert DiurnalModel().peak_hour() == 6

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            DiurnalModel(num_hours=7)
        with pytest.raises(WorkloadError):
            DiurnalModel(tau_min=1.0)
        with pytest.raises(WorkloadError):
            DiurnalModel(variant="bogus")


class TestAssignCohorts:
    def test_exact_split(self):
        offsets = assign_cohorts(10, fraction_early=0.5, seed=0)
        assert np.count_nonzero(offsets == 3.0) == 5
        assert np.count_nonzero(offsets == 0.0) == 5

    def test_rounding(self):
        offsets = assign_cohorts(5, fraction_early=0.5, seed=0)
        assert np.count_nonzero(offsets > 0) in (2, 3)

    def test_deterministic(self):
        assert np.array_equal(assign_cohorts(20, seed=4), assign_cohorts(20, seed=4))

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            assign_cohorts(0)
        with pytest.raises(WorkloadError):
            assign_cohorts(5, fraction_early=2.0)


class TestAssignCohortsSpatial:
    def test_offsets_follow_source_rack(self, ft4):
        flows = place_vm_pairs(ft4, 40, seed=1)
        offsets = assign_cohorts_spatial(ft4, flows)
        racks = sorted({ft4.rack_of_host(int(h)) for h in ft4.hosts})
        early = set(racks[: len(racks) // 2])
        for i, src in enumerate(flows.sources):
            expected = 3.0 if ft4.rack_of_host(int(src)) in early else 0.0
            assert offsets[i] == expected

    def test_custom_offset(self, ft4):
        flows = place_vm_pairs(ft4, 10, seed=1)
        offsets = assign_cohorts_spatial(ft4, flows, offset_hours=5.0)
        assert set(np.unique(offsets)) <= {0.0, 5.0}
