import pytest

from repro.errors import WorkloadError
from repro.workload.sfc import (
    ACCESS_FUNCTIONS,
    APPLICATION_FUNCTIONS,
    SFC,
    access_sfc,
    application_sfc,
    full_sfc,
    sfc_of_size,
)


class TestSFC:
    def test_basic(self):
        chain = SFC(("fw", "cache"))
        assert chain.size == 2
        assert chain.ingress == "fw"
        assert chain.egress == "cache"
        assert list(chain) == ["fw", "cache"]
        assert len(chain) == 2

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            SFC(())

    def test_duplicates_rejected(self):
        with pytest.raises(WorkloadError, match="duplicate"):
            SFC(("fw", "fw"))


class TestCatalogs:
    def test_access_typical_sizes(self):
        # the IETF draft: 5-6 access functions per chain
        assert access_sfc(5).size == 5
        assert access_sfc(6).size == 6

    def test_application_typical_sizes(self):
        assert application_sfc(4).size == 4
        assert application_sfc(5).size == 5

    def test_full_sfc_is_13(self):
        """The paper considers up to 13 VNFs in an SFC."""
        assert full_sfc().size == 13

    def test_sfc_of_size_range(self):
        for n in (1, 7, 13):
            assert sfc_of_size(n).size == n
        with pytest.raises(WorkloadError):
            sfc_of_size(14)
        with pytest.raises(WorkloadError):
            sfc_of_size(0)

    def test_catalogs_disjoint(self):
        assert not set(ACCESS_FUNCTIONS) & set(APPLICATION_FUNCTIONS)

    def test_out_of_catalog_rejected(self):
        with pytest.raises(WorkloadError):
            access_sfc(len(ACCESS_FUNCTIONS) + 1)
