import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.gravity import gravity_rack_masses, place_vm_pairs_gravity


class TestGravityMasses:
    def test_normalized(self):
        masses = gravity_rack_masses(16, skew=1.2, rng=0)
        assert masses.sum() == pytest.approx(1.0)
        assert np.all(masses > 0)

    def test_zero_skew_uniform(self):
        masses = gravity_rack_masses(8, skew=0.0, rng=0)
        assert np.allclose(masses, 1.0 / 8)

    def test_higher_skew_more_concentrated(self):
        flat = gravity_rack_masses(32, skew=0.5, rng=1)
        steep = gravity_rack_masses(32, skew=2.0, rng=1)
        assert steep.max() > flat.max()

    def test_validation(self):
        with pytest.raises(WorkloadError):
            gravity_rack_masses(0)
        with pytest.raises(WorkloadError):
            gravity_rack_masses(4, skew=-1.0)


class TestGravityPlacement:
    def test_endpoints_are_hosts(self, ft8):
        flows = place_vm_pairs_gravity(ft8, 60, seed=2)
        flows.validate_against(ft8)

    def test_locality_fraction_held(self, ft8):
        flows = place_vm_pairs_gravity(ft8, 1500, intra_rack_fraction=0.8, seed=3)
        assert flows.intra_rack_fraction(ft8) == pytest.approx(0.8, abs=0.04)

    def test_skew_concentrates_racks(self, ft8):
        """High skew puts most sources into few racks; uniform does not."""

        def top4_share(flows):
            racks = np.asarray([ft8.rack_of_host(int(h)) for h in flows.sources])
            counts = np.bincount(racks - racks.min())
            counts.sort()
            return counts[-4:].sum() / racks.size

        skewed = place_vm_pairs_gravity(ft8, 600, skew=2.0, seed=4)
        uniform = place_vm_pairs_gravity(ft8, 600, skew=0.0, seed=4)
        assert top4_share(skewed) > top4_share(uniform) + 0.1

    def test_inter_rack_pairs_differ(self, ft8):
        flows = place_vm_pairs_gravity(ft8, 200, intra_rack_fraction=0.0, seed=5)
        racks_src = [ft8.rack_of_host(int(h)) for h in flows.sources]
        racks_dst = [ft8.rack_of_host(int(h)) for h in flows.destinations]
        assert all(a != b for a, b in zip(racks_src, racks_dst))

    def test_deterministic(self, ft8):
        a = place_vm_pairs_gravity(ft8, 20, seed=6)
        b = place_vm_pairs_gravity(ft8, 20, seed=6)
        assert np.array_equal(a.sources, b.sources)

    def test_validation(self, ft8):
        with pytest.raises(WorkloadError):
            place_vm_pairs_gravity(ft8, 0)
        with pytest.raises(WorkloadError):
            place_vm_pairs_gravity(ft8, 5, intra_rack_fraction=1.5)

    def test_pipeline_integration(self, ft8):
        from repro.core.placement import dp_placement
        from repro.workload.traffic import FacebookTrafficModel

        flows = place_vm_pairs_gravity(ft8, 24, skew=1.5, seed=7)
        flows = flows.with_rates(FacebookTrafficModel().sample(24, rng=7))
        result = dp_placement(ft8, flows, 4)
        assert result.num_vnfs == 4
