"""Streaming chunked workloads: same bytes wherever a chunk regenerates."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.topology import fat_tree
from repro.workload.stream import RackTable, StreamingWorkload


@pytest.fixture(scope="module")
def table():
    return RackTable.from_topology(fat_tree(4))


@pytest.fixture(scope="module")
def stream(table):
    return StreamingWorkload(
        rack_table=table, num_flows=23, chunk_size=5, seed=3
    )


class TestRackTable:
    def test_from_topology_covers_every_host(self, table):
        topology = fat_tree(4)
        assert sorted(table.hosts.tolist()) == sorted(topology.hosts.tolist())
        assert table.num_racks == len(topology.racks())

    def test_rack_slices_match_offsets(self, table):
        stitched = np.concatenate(
            [table.rack(r) for r in range(table.num_racks)]
        )
        assert np.array_equal(stitched, table.hosts)

    @pytest.mark.parametrize(
        "offsets",
        [
            [0],  # no rack boundary pair
            [1, 4],  # does not start at zero
            [0, 3],  # does not span the host array
            [0, 2, 2, 4],  # empty rack
        ],
    )
    def test_malformed_offsets_rejected(self, offsets):
        with pytest.raises(WorkloadError):
            RackTable(hosts=np.arange(4), offsets=np.array(offsets))

    def test_arrays_are_frozen(self, table):
        with pytest.raises(ValueError):
            table.hosts[0] = 99


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_flows": 0},
            {"chunk_size": 0},
            {"intra_rack_fraction": 1.5},
            {"max_offset": -1.0},
        ],
    )
    def test_invalid_specs_rejected(self, table, kwargs):
        base = {"rack_table": table, "num_flows": 10}
        with pytest.raises(WorkloadError):
            StreamingWorkload(**{**base, **kwargs})

    def test_single_rack_cannot_mix_inter_rack_pairs(self):
        single = RackTable(hosts=np.arange(4), offsets=np.array([0, 4]))
        with pytest.raises(WorkloadError):
            StreamingWorkload(rack_table=single, num_flows=5)
        # all-intra is fine on one rack
        StreamingWorkload(
            rack_table=single, num_flows=5, intra_rack_fraction=1.0
        )


class TestChunkGrid:
    def test_bounds_tile_the_flow_order(self, stream):
        assert stream.num_chunks == 5  # ceil(23 / 5)
        covered = [
            i
            for c in range(stream.num_chunks)
            for i in range(*stream.chunk_bounds(c))
        ]
        assert covered == list(range(stream.num_flows))
        assert stream.chunk_bounds(4) == (20, 23)  # remainder chunk

    def test_out_of_range_chunk_is_diagnosed(self, stream):
        with pytest.raises(WorkloadError):
            stream.chunk_bounds(5)
        with pytest.raises(WorkloadError):
            stream.chunk(-1)


class TestDeterminism:
    def test_chunks_regenerate_identically(self, stream):
        for index in range(stream.num_chunks):
            a, b = stream.chunk(index), stream.chunk(index)
            assert np.array_equal(a.sources, b.sources)
            assert np.array_equal(a.destinations, b.destinations)
            assert np.array_equal(a.base_rates, b.base_rates)

    def test_chunks_survive_pickling(self, stream):
        # a worker regenerating from an unpickled spec must agree with
        # the parent — the whole point of shipping recipes, not arrays
        clone = pickle.loads(pickle.dumps(stream))
        a, b = stream.chunk(2), clone.chunk(2)
        assert np.array_equal(a.sources, b.sources)
        assert np.array_equal(a.base_rates, b.base_rates)

    def test_chunks_are_independent_of_generation_order(self, stream):
        forward = [stream.chunk(i) for i in range(stream.num_chunks)]
        backward = [
            stream.chunk(i) for i in reversed(range(stream.num_chunks))
        ]
        for a, b in zip(forward, reversed(backward)):
            assert np.array_equal(a.sources, b.sources)
            assert np.array_equal(a.base_rates, b.base_rates)

    def test_chunk_size_is_part_of_the_identity(self, table):
        a = StreamingWorkload(
            rack_table=table, num_flows=20, chunk_size=5, seed=3
        )
        b = StreamingWorkload(
            rack_table=table, num_flows=20, chunk_size=10, seed=3
        )
        assert not np.array_equal(
            a.materialize()[0].sources, b.materialize()[0].sources
        )


class TestMaterialize:
    def test_concatenates_chunks_in_index_order(self, stream):
        flows, offsets = stream.materialize()
        assert flows.num_flows == stream.num_flows
        assert offsets.shape == (stream.num_flows,)
        for index in range(stream.num_chunks):
            start, stop = stream.chunk_bounds(index)
            chunk = stream.chunk(index)
            assert np.array_equal(flows.sources[start:stop], chunk.sources)
            assert np.array_equal(
                flows.destinations[start:stop], chunk.destinations
            )
            assert np.array_equal(flows.rates[start:stop], chunk.base_rates)

    def test_meta_records_the_recipe(self, stream):
        flows, _ = stream.materialize()
        assert flows.meta["streamed"] == {"seed": 3, "chunk_size": 5}

    def test_validates_against_topology(self, stream):
        stream.materialize(fat_tree(4))  # hosts are real hosts

    def test_cohort_offsets_drawn_when_enabled(self, table):
        spread = StreamingWorkload(
            rack_table=table, num_flows=20, chunk_size=5, seed=3, max_offset=6.0
        )
        _, offsets = spread.materialize()
        assert (offsets >= 0).all() and (offsets < 6.0).all()
        assert np.unique(offsets).size > 1
