import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.traffic import FacebookTrafficModel, RateBand, UniformTrafficModel


class TestRateBand:
    def test_invalid_share(self):
        with pytest.raises(WorkloadError):
            RateBand("x", 1.5, 0.0, 1.0)

    def test_invalid_range(self):
        with pytest.raises(WorkloadError):
            RateBand("x", 0.5, 5.0, 1.0)


class TestFacebookTrafficModel:
    def test_rates_in_range(self):
        rates = FacebookTrafficModel().sample(5000, rng=0)
        assert rates.min() >= 0.0
        assert rates.max() <= 10000.0

    def test_band_shares_match_paper(self):
        """25% light [0,3000), 70% medium [3000,7000], 5% heavy (7000,10000]."""
        rates = FacebookTrafficModel().sample(20000, rng=1)
        light = np.mean(rates < 3000)
        medium = np.mean((rates >= 3000) & (rates < 7000))
        heavy = np.mean(rates >= 7000)
        assert light == pytest.approx(0.25, abs=0.02)
        assert medium == pytest.approx(0.70, abs=0.02)
        assert heavy == pytest.approx(0.05, abs=0.01)

    def test_deterministic(self):
        model = FacebookTrafficModel()
        assert np.array_equal(model.sample(10, rng=5), model.sample(10, rng=5))

    def test_band_of(self):
        model = FacebookTrafficModel()
        assert model.band_of(100.0).name == "light"
        assert model.band_of(3000.0).name == "medium"
        assert model.band_of(9000.0).name == "heavy"
        assert model.band_of(10000.0).name == "heavy"  # closed right edge
        with pytest.raises(WorkloadError):
            model.band_of(20000.0)

    def test_shares_must_sum_to_one(self):
        with pytest.raises(WorkloadError, match="sum to 1"):
            FacebookTrafficModel(
                bands=(RateBand("a", 0.5, 0, 1), RateBand("b", 0.4, 1, 2))
            )

    def test_count_must_be_positive(self):
        with pytest.raises(WorkloadError):
            FacebookTrafficModel().sample(0)


class TestUniformTrafficModel:
    def test_range(self):
        rates = UniformTrafficModel(10.0, 20.0).sample(1000, rng=0)
        assert rates.min() >= 10.0
        assert rates.max() < 20.0

    def test_invalid_range(self):
        with pytest.raises(WorkloadError):
            UniformTrafficModel(5.0, 5.0)
