import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.flows import FlowSet, place_vm_pairs


class TestFlowSet:
    def test_basic_properties(self):
        fs = FlowSet(sources=[0, 1], destinations=[2, 3], rates=[5.0, 7.0])
        assert fs.num_flows == 2
        assert fs.total_rate == 12.0

    def test_misaligned_rejected(self):
        with pytest.raises(WorkloadError, match="misaligned"):
            FlowSet(sources=[0, 1], destinations=[2], rates=[1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            FlowSet(sources=[], destinations=[], rates=[])

    def test_negative_rate_rejected(self):
        with pytest.raises(WorkloadError, match="non-negative"):
            FlowSet(sources=[0], destinations=[1], rates=[-1.0])

    def test_with_rates(self):
        fs = FlowSet(sources=[0], destinations=[1], rates=[1.0])
        fs2 = fs.with_rates([9.0])
        assert fs2.total_rate == 9.0
        assert fs.total_rate == 1.0
        with pytest.raises(WorkloadError, match="shape"):
            fs.with_rates([1.0, 2.0])

    def test_with_endpoints(self):
        fs = FlowSet(sources=[0], destinations=[1], rates=[2.0])
        fs2 = fs.with_endpoints(np.asarray([3]), np.asarray([4]))
        assert fs2.sources.tolist() == [3]
        assert fs2.rates.tolist() == [2.0]

    def test_subset(self):
        fs = FlowSet(sources=[0, 1, 2], destinations=[3, 4, 5], rates=[1.0, 2.0, 3.0])
        sub = fs.subset(np.asarray([2, 0]))
        assert sub.sources.tolist() == [2, 0]
        assert sub.rates.tolist() == [3.0, 1.0]

    def test_arrays_immutable(self):
        fs = FlowSet(sources=[0], destinations=[1], rates=[1.0])
        with pytest.raises(ValueError):
            fs.rates[0] = 5.0

    def test_validate_against(self, ft4):
        good = FlowSet(sources=[int(ft4.hosts[0])], destinations=[int(ft4.hosts[1])], rates=[1.0])
        good.validate_against(ft4)
        bad = FlowSet(sources=[int(ft4.switches[0])], destinations=[int(ft4.hosts[0])], rates=[1.0])
        with pytest.raises(WorkloadError, match="not hosts"):
            bad.validate_against(ft4)


class TestPlaceVmPairs:
    def test_all_endpoints_are_hosts(self, ft4):
        flows = place_vm_pairs(ft4, 50, seed=0)
        flows.validate_against(ft4)

    def test_locality_fraction_statistical(self, ft8):
        flows = place_vm_pairs(ft8, 2000, intra_rack_fraction=0.8, seed=1)
        assert flows.intra_rack_fraction(ft8) == pytest.approx(0.8, abs=0.03)

    def test_full_intra_rack(self, ft4):
        flows = place_vm_pairs(ft4, 30, intra_rack_fraction=1.0, seed=2)
        assert flows.intra_rack_fraction(ft4) == 1.0

    def test_zero_intra_rack(self, ft4):
        flows = place_vm_pairs(ft4, 30, intra_rack_fraction=0.0, seed=3)
        assert flows.intra_rack_fraction(ft4) == 0.0

    def test_deterministic(self, ft4):
        a = place_vm_pairs(ft4, 10, seed=7)
        b = place_vm_pairs(ft4, 10, seed=7)
        assert np.array_equal(a.sources, b.sources)
        assert np.array_equal(a.destinations, b.destinations)

    def test_bad_params(self, ft4):
        with pytest.raises(WorkloadError):
            place_vm_pairs(ft4, 0)
        with pytest.raises(WorkloadError):
            place_vm_pairs(ft4, 5, intra_rack_fraction=1.5)

    def test_single_rack_topology_needs_full_locality(self):
        from repro.topology.leafspine import leaf_spine

        topo = leaf_spine(1, 1, 4)
        flows = place_vm_pairs(topo, 5, intra_rack_fraction=1.0, seed=0)
        assert flows.num_flows == 5
        with pytest.raises(WorkloadError, match="single rack"):
            place_vm_pairs(topo, 5, intra_rack_fraction=0.5, seed=0)
