import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.zoom import ZoomTrafficModel


class TestZoomTrafficModel:
    def test_rates_within_cap(self):
        rates = ZoomTrafficModel().sample(500, rng=0)
        assert rates.min() >= 0.0
        assert rates.max() <= 10000.0

    def test_heavy_tail(self):
        """The Zoom model should be more skewed than uniform: a small share
        of connectors carries a large share of traffic."""
        rates = ZoomTrafficModel().sample(3000, rng=1)
        top_decile_share = np.sort(rates)[-300:].sum() / rates.sum()
        assert top_decile_share > 0.2

    def test_deterministic(self):
        model = ZoomTrafficModel()
        assert np.array_equal(model.sample(50, rng=9), model.sample(50, rng=9))

    def test_positive_rates(self):
        rates = ZoomTrafficModel().sample(200, rng=2)
        assert np.all(rates > 0)

    def test_usable_as_traffic_model(self, ft4):
        """Drop-in replacement for the Facebook model in the pipeline."""
        from repro.core.placement import dp_placement
        from repro.workload.flows import place_vm_pairs

        flows = place_vm_pairs(ft4, 8, seed=3)
        flows = flows.with_rates(ZoomTrafficModel().sample(8, rng=3))
        result = dp_placement(ft4, flows, 3)
        assert result.num_vnfs == 3

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZoomTrafficModel(max_meetings=0)
        with pytest.raises(WorkloadError):
            ZoomTrafficModel(participant_zipf_a=1.0)
        with pytest.raises(WorkloadError):
            ZoomTrafficModel(mean_meetings=0.0)
        with pytest.raises(WorkloadError):
            ZoomTrafficModel().sample(0)

    def test_describe(self):
        assert "ZoomTrafficModel" in ZoomTrafficModel().describe()
