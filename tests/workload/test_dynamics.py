import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.diurnal import DiurnalModel, assign_cohorts
from repro.workload.dynamics import RedrawnRates, ScaledRates
from repro.workload.flows import FlowSet, place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


@pytest.fixture()
def flows(ft4):
    fs = place_vm_pairs(ft4, 10, seed=0)
    return fs.with_rates(FacebookTrafficModel().sample(10, rng=0))


@pytest.fixture()
def diurnal():
    return DiurnalModel()


class TestScaledRates:
    def test_scales_track_diurnal(self, flows, diurnal):
        offsets = np.zeros(10)
        proc = ScaledRates(flows, diurnal, offsets)
        assert np.allclose(proc.rates_at(6), flows.rates * diurnal.scale(6))
        assert np.allclose(proc.rates_at(0), 0.0)

    def test_cohort_offsets(self, flows, diurnal):
        offsets = np.asarray([3.0] * 5 + [0.0] * 5)
        proc = ScaledRates(flows, diurnal, offsets)
        rates = proc.rates_at(3)
        assert np.allclose(rates[:5], flows.rates[:5] * diurnal.scale(6))
        assert np.allclose(rates[5:], flows.rates[5:] * diurnal.scale(3))

    def test_shape_mismatch(self, flows, diurnal):
        with pytest.raises(WorkloadError):
            ScaledRates(flows, diurnal, np.zeros(3))


class TestRedrawnRates:
    def test_deterministic(self, flows, diurnal):
        offsets = assign_cohorts(10, seed=1)
        model = FacebookTrafficModel()
        a = RedrawnRates(flows, diurnal, offsets, model, seed=9)
        b = RedrawnRates(flows, diurnal, offsets, model, seed=9)
        for hour in range(13):
            assert np.array_equal(a.rates_at(hour), b.rates_at(hour))

    def test_rates_change_between_hours(self, flows, diurnal):
        offsets = np.zeros(10)
        proc = RedrawnRates(flows, diurnal, offsets, FacebookTrafficModel(), seed=2)
        # base rates differ hour to hour (full churn), beyond mere scaling
        r5, r6 = proc.rates_at(5), proc.rates_at(6)
        ratio = r6[r5 > 0] / r5[r5 > 0]
        assert np.std(ratio) > 0.01

    def test_zero_hours_silent(self, flows, diurnal):
        offsets = np.zeros(10)
        proc = RedrawnRates(flows, diurnal, offsets, FacebookTrafficModel(), seed=2)
        assert np.allclose(proc.rates_at(0), 0.0)
        assert np.allclose(proc.rates_at(12), 0.0)

    def test_partial_churn_keeps_some_rates(self, flows, diurnal):
        offsets = np.zeros(10)
        proc = RedrawnRates(
            flows, diurnal, offsets, FacebookTrafficModel(), seed=3, churn=0.2
        )
        # with 20% churn most base rates persist between consecutive hours
        base5 = proc.rates_at(5) / diurnal.scale(5)
        base6 = proc.rates_at(6) / diurnal.scale(6)
        unchanged = np.isclose(base5, base6).mean()
        assert unchanged >= 0.5

    def test_horizon_guard(self, flows, diurnal):
        proc = RedrawnRates(flows, diurnal, np.zeros(10), FacebookTrafficModel(), seed=4)
        with pytest.raises(WorkloadError, match="horizon"):
            proc.rates_at(99)

    def test_churn_validation(self, flows, diurnal):
        with pytest.raises(WorkloadError):
            RedrawnRates(flows, diurnal, np.zeros(10), FacebookTrafficModel(), seed=0, churn=0.0)
