import numpy as np
import pytest

from repro.analysis.fattree_view import render_fat_tree_placement
from repro.analysis.reports import cost_breakdown, describe_placement, migration_summary
from repro.core.costs import CostContext
from repro.core.migration import mpareto_migration, no_migration
from repro.core.placement import dp_placement
from repro.errors import ReproError
from repro.topology.leafspine import leaf_spine
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


@pytest.fixture()
def workload(ft4):
    flows = place_vm_pairs(ft4, 10, seed=121)
    return flows.with_rates(FacebookTrafficModel().sample(10, rng=121))


class TestCostBreakdown:
    def test_reconstructs_total(self, ft4, workload):
        placement = dp_placement(ft4, workload, 3).placement
        breakdown = cost_breakdown(ft4, workload, placement)
        ctx = CostContext(ft4, workload)
        assert breakdown.total == pytest.approx(ctx.communication_cost(placement))

    def test_shares_sum_to_one(self, ft4, workload):
        placement = ft4.switches[:3]
        shares = cost_breakdown(ft4, workload, placement).shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_silent_workload(self, ft4, workload):
        silent = workload.with_rates(np.zeros(workload.num_flows))
        breakdown = cost_breakdown(ft4, silent, ft4.switches[:2])
        assert breakdown.total == 0.0
        assert sum(breakdown.shares().values()) == 0.0

    def test_single_vnf_has_no_chain(self, ft4, workload):
        breakdown = cost_breakdown(ft4, workload, ft4.switches[:1])
        assert breakdown.chain_cost == 0.0

    def test_empty_rejected(self, ft4, workload):
        with pytest.raises(ReproError):
            cost_breakdown(ft4, workload, np.asarray([], dtype=np.int64))


class TestDescriptions:
    def test_describe_placement_mentions_labels(self, ft4, workload):
        placement = dp_placement(ft4, workload, 3)
        text = describe_placement(ft4, workload, placement.placement)
        for s in placement.placement:
            assert ft4.graph.label(int(s)) in text
        assert "C_a" in text

    def test_migration_summary_moved(self, ft4, workload):
        source = ft4.switches[[0, 1, 2]]
        result = mpareto_migration(ft4, workload, source, mu=0.0)
        text = migration_summary(ft4, result)
        assert "mpareto" in text
        if result.num_migrated:
            assert "->" in text

    def test_migration_summary_stayed(self, ft4, workload):
        source = dp_placement(ft4, workload, 3).placement
        result = no_migration(ft4, workload, source)
        text = migration_summary(ft4, result)
        assert "no VNFs moved" in text


class TestFatTreeView:
    def test_marks_vnfs(self, ft4, workload):
        placement = dp_placement(ft4, workload, 3).placement
        art = render_fat_tree_placement(ft4, placement)
        assert "core" in art and "edge" in art
        for j, s in enumerate(placement, start=1):
            assert f"f{j}:{ft4.graph.label(int(s))}" in art

    def test_requires_fat_tree(self, workload):
        topo = leaf_spine(4, 2, 4)
        with pytest.raises(ReproError):
            render_fat_tree_placement(topo, topo.switches[:2])
