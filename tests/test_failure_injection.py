"""Failure injection: corrupted inputs must fail loudly at the boundary.

Every public entry point is fed adversarial inputs — NaN rates,
disconnected fabrics, placements referencing the wrong topology — and
must raise a :class:`~repro.errors.ReproError` subclass rather than
return garbage.
"""

import numpy as np
import pytest

from repro.core.costs import CostContext
from repro.core.migration import mpareto_migration
from repro.core.optimal import optimal_placement
from repro.core.placement import dp_placement
from repro.errors import GraphError, PlacementError, ReproError, WorkloadError
from repro.graphs.adjacency import CostGraph
from repro.topology.base import Topology
from repro.workload.flows import FlowSet, place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


@pytest.fixture()
def workload(ft4):
    flows = place_vm_pairs(ft4, 8, seed=171)
    return flows.with_rates(FacebookTrafficModel().sample(8, rng=171))


class TestCorruptRates:
    def test_negative_rates_rejected_at_construction(self, ft4, workload):
        with pytest.raises(WorkloadError):
            workload.with_rates(np.full(8, -1.0))

    def test_nan_rates_surface_in_cost(self, ft4, workload):
        """NaN rates pass FlowSet's sign check (NaN comparisons are False)
        but must poison the cost visibly, not silently order placements."""
        rates = workload.rates.copy()
        rates[0] = float("nan")
        nan_flows = workload.with_rates(rates)
        ctx = CostContext(ft4, nan_flows)
        cost = ctx.communication_cost(ft4.switches[:3])
        assert np.isnan(cost)


class TestWrongTopology:
    def test_foreign_hosts_rejected(self, ft4, ft8, workload):
        """Flows whose endpoints belong to another fabric are caught."""
        foreign = FlowSet(
            sources=[int(ft8.hosts[-1])],
            destinations=[int(ft8.hosts[-2])],
            rates=[1.0],
        )
        with pytest.raises((WorkloadError, IndexError)):
            dp_placement(ft4, foreign, 2)

    def test_placement_from_other_fabric_rejected(self, ft4, workload):
        bogus = np.asarray([10_000, 10_001])
        with pytest.raises(PlacementError):
            mpareto_migration(ft4, workload, bogus, mu=1.0)


class TestDisconnectedFabric:
    def test_placement_on_disconnected_graph_fails(self):
        graph = CostGraph(
            ["h1", "h2", "s1", "s2"], [(0, 2, 1.0), (1, 3, 1.0)]
        )
        topo = Topology(
            name="split",
            graph=graph,
            hosts=[0, 1],
            switches=[2, 3],
            host_edge_switch=[2, 3],
        )
        flows = FlowSet(sources=[0], destinations=[1], rates=[1.0])
        with pytest.raises(ReproError):
            dp_placement(topo, flows, 2)


class TestBoundaryConditions:
    def test_every_switch_used(self, ft2, workload):
        """n == |V_s| exactly: the chain must use every switch once."""
        flows = FlowSet(
            sources=[int(ft2.hosts[0])], destinations=[int(ft2.hosts[1])], rates=[1.0]
        )
        result = dp_placement(ft2, flows, ft2.num_switches)
        assert sorted(result.placement.tolist()) == sorted(ft2.switches.tolist())

    def test_optimal_every_switch(self, ft2):
        flows = FlowSet(
            sources=[int(ft2.hosts[0])], destinations=[int(ft2.hosts[1])], rates=[1.0]
        )
        dp = dp_placement(ft2, flows, ft2.num_switches)
        opt = optimal_placement(ft2, flows, ft2.num_switches)
        assert opt.cost <= dp.cost + 1e-9

    def test_single_flow_zero_rate(self, ft4):
        flows = FlowSet(
            sources=[int(ft4.hosts[0])], destinations=[int(ft4.hosts[1])], rates=[0.0]
        )
        result = dp_placement(ft4, flows, 3)
        assert result.cost == 0.0
