"""Failure injection: corrupted inputs and injected runtime faults.

Two layers of injection live here:

* **data faults** — every public entry point is fed adversarial inputs
  (NaN rates, disconnected fabrics, placements referencing the wrong
  topology) and must raise a :class:`~repro.errors.ReproError` subclass
  rather than return garbage;
* **runtime faults** — a seeded :class:`~repro.runtime.resilience.ChaosConfig`
  injects crashes, delays, timeouts and worker kills into real experiment
  entry points (:func:`run_replications`, :func:`map_points`, the CLI),
  and the recovered outputs must be *bit-identical* to a fault-free
  serial run.
"""

import json

import numpy as np
import pytest

# chaos runs kill worker processes and hang tasks on purpose; they stay
# out of tier-1 and run in the dedicated `resilience` CI job
pytestmark = pytest.mark.slow

from repro.cli import main as cli_main
from repro.core.costs import CostContext
from repro.core.migration import mpareto_migration
from repro.core.optimal import optimal_placement
from repro.core.placement import dp_placement
from repro.errors import GraphError, PlacementError, ReproError, WorkloadError
from repro.graphs.adjacency import CostGraph
from repro.runtime import instrument
from repro.runtime.resilience import ChaosConfig, ResilienceConfig
from repro.sim.policies import MParetoPolicy, NoMigrationPolicy
from repro.sim.runner import RunConfig, run_replications
from repro.topology.base import Topology
from repro.workload.flows import FlowSet, place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


@pytest.fixture()
def workload(ft4):
    flows = place_vm_pairs(ft4, 8, seed=171)
    return flows.with_rates(FacebookTrafficModel().sample(8, rng=171))


class TestCorruptRates:
    def test_negative_rates_rejected_at_construction(self, ft4, workload):
        with pytest.raises(WorkloadError):
            workload.with_rates(np.full(8, -1.0))

    def test_nan_rates_surface_in_cost(self, ft4, workload):
        """NaN rates pass FlowSet's sign check (NaN comparisons are False)
        but must poison the cost visibly, not silently order placements."""
        rates = workload.rates.copy()
        rates[0] = float("nan")
        nan_flows = workload.with_rates(rates)
        ctx = CostContext(ft4, nan_flows)
        cost = ctx.communication_cost(ft4.switches[:3])
        assert np.isnan(cost)


class TestWrongTopology:
    def test_foreign_hosts_rejected(self, ft4, ft8, workload):
        """Flows whose endpoints belong to another fabric are caught."""
        foreign = FlowSet(
            sources=[int(ft8.hosts[-1])],
            destinations=[int(ft8.hosts[-2])],
            rates=[1.0],
        )
        with pytest.raises((WorkloadError, IndexError)):
            dp_placement(ft4, foreign, 2)

    def test_placement_from_other_fabric_rejected(self, ft4, workload):
        bogus = np.asarray([10_000, 10_001])
        with pytest.raises(PlacementError):
            mpareto_migration(ft4, workload, bogus, mu=1.0)


class TestDisconnectedFabric:
    def test_placement_on_disconnected_graph_fails(self):
        graph = CostGraph(
            ["h1", "h2", "s1", "s2"], [(0, 2, 1.0), (1, 3, 1.0)]
        )
        topo = Topology(
            name="split",
            graph=graph,
            hosts=[0, 1],
            switches=[2, 3],
            host_edge_switch=[2, 3],
        )
        flows = FlowSet(sources=[0], destinations=[1], rates=[1.0])
        with pytest.raises(ReproError):
            dp_placement(topo, flows, 2)


class TestBoundaryConditions:
    def test_every_switch_used(self, ft2, workload):
        """n == |V_s| exactly: the chain must use every switch once."""
        flows = FlowSet(
            sources=[int(ft2.hosts[0])], destinations=[int(ft2.hosts[1])], rates=[1.0]
        )
        result = dp_placement(ft2, flows, ft2.num_switches)
        assert sorted(result.placement.tolist()) == sorted(ft2.switches.tolist())

    def test_optimal_every_switch(self, ft2):
        flows = FlowSet(
            sources=[int(ft2.hosts[0])], destinations=[int(ft2.hosts[1])], rates=[1.0]
        )
        dp = dp_placement(ft2, flows, ft2.num_switches)
        opt = optimal_placement(ft2, flows, ft2.num_switches)
        assert opt.cost <= dp.cost + 1e-9

    def test_single_flow_zero_rate(self, ft4):
        flows = FlowSet(
            sources=[int(ft4.hosts[0])], destinations=[int(ft4.hosts[1])], rates=[0.0]
        )
        result = dp_placement(ft4, flows, 3)
        assert result.cost == 0.0


# -- runtime fault injection --------------------------------------------------

#: ≤30 % of tasks get a fault: crashes, slow-downs, injected timeouts and
#: hard worker kills, all drawn deterministically from the task content
CHAOS = ChaosConfig(
    seed=6,
    crash_rate=0.10,
    delay_rate=0.05,
    timeout_rate=0.05,
    kill_rate=0.10,
    delay_seconds=0.001,
)

_POLICY_FACTORIES = {"mpareto": MParetoPolicy, "stay": NoMigrationPolicy}


def _sweep_point(point):
    """Cheap but real sweep work: a DP placement on a tiny instance."""
    topology, num_vnfs, seed = point
    flows = place_vm_pairs(topology, 4, seed=seed)
    flows = flows.with_rates(FacebookTrafficModel().sample(4, rng=seed))
    result = dp_placement(topology, flows, num_vnfs)
    return (result.cost, result.placement.tolist())


def _day_fingerprint(rep):
    """Everything a replication computed, as comparable primitives."""
    return (
        rep.placement.tolist(),
        rep.flows.rates.tolist(),
        {
            name: [
                (r.hour, r.communication_cost, r.migration_cost, r.num_migrations)
                for r in day.records
            ]
            for name, day in rep.days.items()
        },
    )


class TestChaosBitIdentity:
    """Injected faults may change *when* work runs, never *what* it computes."""

    def _replications(self, ft4, workers, resilience=None):
        config = RunConfig(
            num_pairs=6,
            num_vnfs=3,
            mu=1.0,
            dynamics="redrawn",
            replications=4,
            seed=42,
        )
        return run_replications(
            ft4,
            FacebookTrafficModel(),
            config,
            _POLICY_FACTORIES,
            workers=workers,
            resilience=resilience,
        )

    def test_run_replications_identical_under_chaos(self, ft4):
        instrument.reset()
        clean_reps, clean_summaries = self._replications(ft4, workers=1)
        chaos_policy = ResilienceConfig(max_retries=4, backoff_base=0.0, chaos=CHAOS)
        instrument.reset()
        chaos_reps, chaos_summaries = self._replications(
            ft4, workers=2, resilience=chaos_policy
        )
        counters = instrument.counters()
        # chaos actually fired: retried errors/timeouts or a killed worker
        faults_seen = (
            counters.get("task_retries", 0)
            + counters.get("task_timeouts", 0)
            + counters.get("pool_restarts", 0)
        )
        assert faults_seen >= 1
        assert [_day_fingerprint(r) for r in chaos_reps] == [
            _day_fingerprint(r) for r in clean_reps
        ]
        for name in _POLICY_FACTORIES:
            for metric in clean_summaries[name]:
                assert (
                    chaos_summaries[name][metric].mean
                    == clean_summaries[name][metric].mean
                )
                assert (
                    chaos_summaries[name][metric].halfwidth
                    == clean_summaries[name][metric].halfwidth
                )

    def test_map_points_identical_under_chaos(self, ft4):
        from repro.experiments.common import map_points

        points = [(ft4, n, seed) for n in (2, 3) for seed in range(5)]
        clean = map_points(_sweep_point, points)
        chaos_policy = ResilienceConfig(max_retries=4, backoff_base=0.0, chaos=CHAOS)
        instrument.reset()
        chaotic = map_points(_sweep_point, points, workers=2, resilience=chaos_policy)
        counters = instrument.counters()
        faults_seen = (
            counters.get("task_retries", 0)
            + counters.get("task_timeouts", 0)
            + counters.get("pool_restarts", 0)
        )
        assert faults_seen >= 1
        assert chaotic == clean


class TestCliResumeByteIdentity:
    """A run killed mid-experiment, resumed with ``--resume``, must emit the
    same ``--json`` payload as an uninterrupted run.

    The comparison strips ``params["runtime"]`` first: that block is the
    observability report (wall-clock phase timings, speedup, how many
    tasks were resumed from the journal) and is *intentionally* volatile
    across runs.  Everything scientific — rows, notes, every other param —
    must match byte-for-byte after JSON re-serialization.
    """

    @staticmethod
    def _run_cli(argv) -> int:
        import io

        out = io.StringIO()
        code = cli_main(argv, out=out)
        return code, out.getvalue()

    @staticmethod
    def _payload_bytes(path):
        data = json.loads(path.read_text())
        data["params"].pop("runtime")
        return json.dumps(data, sort_keys=True).encode()

    def test_killed_then_resumed_run_matches_uninterrupted(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        reference = tmp_path / "reference.json"
        resumed = tmp_path / "resumed.json"

        code, _ = self._run_cli(
            ["run", "fig07_top1", "--scale", "smoke", "--json", str(reference)]
        )
        assert code == 0

        # a full journalled run, then simulate a kill mid-append: keep the
        # first few records and leave a partial trailing line
        code, _ = self._run_cli(
            [
                "run",
                "fig07_top1",
                "--scale",
                "smoke",
                "--json",
                str(tmp_path / "scratch.json"),
                "--resume",
                str(journal),
            ]
        )
        assert code == 0
        lines = journal.read_text().splitlines(keepends=True)
        assert len(lines) >= 2
        journal.write_text("".join(lines[:-1]) + '{"fp": "killed-mid')

        code, output = self._run_cli(
            [
                "run",
                "fig07_top1",
                "--scale",
                "smoke",
                "--json",
                str(resumed),
                "--resume",
                str(journal),
            ]
        )
        assert code == 0
        assert "resuming from" in output
        assert self._payload_bytes(resumed) == self._payload_bytes(reference)

    def test_resume_reruns_nothing_on_second_pass(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        args = [
            "run",
            "fig07_top1",
            "--scale",
            "smoke",
            "--json",
            str(tmp_path / "out.json"),
            "--resume",
            str(journal),
        ]
        self._run_cli(args)
        size_after_first = journal.stat().st_size
        code, _ = self._run_cli(args + ["--profile"])
        assert code == 0
        # fully journalled: the second pass appends nothing new
        assert journal.stat().st_size == size_after_first
        report = json.loads((tmp_path / "out.json").read_text())["params"]["runtime"]
        assert report["resilience"]["resumed"] >= 1
