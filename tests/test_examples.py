"""The shipped examples must run and print their headline numbers.

Only the fast examples run in the suite (the day-long simulations are
exercised through the benchmark harness instead).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestQuickstart:
    def test_prints_published_numbers(self):
        out = run_example("quickstart.py")
        assert "410" in out
        assert "1004" in out
        assert "416" in out
        assert "58.6%" in out


class TestCustomTopology:
    def test_covers_three_fabrics(self):
        out = run_example("custom_topology.py")
        assert "leaf-spine" in out
        assert "bcube" in out
        assert "jellyfish" in out
        assert "frontier trace" in out
