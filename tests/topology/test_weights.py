import math

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.fattree import fat_tree
from repro.topology.weights import apply_uniform_delays, unit_weights


class TestUniformDelays:
    def test_weights_within_support(self):
        topo = apply_uniform_delays(fat_tree(4), mean=1.5, variance=0.5, seed=0)
        half = math.sqrt(3 * 0.5)
        weights = [w for _, _, w in topo.graph.edges]
        assert all(1.5 - half - 1e-9 <= w <= 1.5 + half + 1e-9 for w in weights)

    def test_sample_moments(self):
        # k=8 has 768 links: enough to check mean/variance statistically
        topo = apply_uniform_delays(fat_tree(8), mean=1.5, variance=0.5, seed=1)
        weights = np.asarray([w for _, _, w in topo.graph.edges])
        assert weights.mean() == pytest.approx(1.5, abs=0.1)
        assert weights.var() == pytest.approx(0.5, abs=0.12)

    def test_structure_preserved(self):
        base = fat_tree(4)
        weighted = apply_uniform_delays(base, seed=0)
        assert weighted.num_hosts == base.num_hosts
        assert len(weighted.graph.edges) == len(base.graph.edges)
        assert weighted.graph.is_connected()

    def test_deterministic(self):
        a = apply_uniform_delays(fat_tree(4), seed=3)
        b = apply_uniform_delays(fat_tree(4), seed=3)
        assert a.graph.edges == b.graph.edges

    def test_invalid_params(self):
        with pytest.raises(TopologyError):
            apply_uniform_delays(fat_tree(4), mean=0.0)
        with pytest.raises(TopologyError):
            apply_uniform_delays(fat_tree(4), variance=-1.0)


class TestUnitWeights:
    def test_resets_to_one(self):
        weighted = apply_uniform_delays(fat_tree(4), seed=0)
        unit = unit_weights(weighted)
        assert all(w == 1.0 for _, _, w in unit.graph.edges)
        assert unit.graph.diameter() == 6.0
