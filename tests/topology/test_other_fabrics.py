import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.bcube import bcube
from repro.topology.jellyfish import jellyfish
from repro.topology.leafspine import leaf_spine
from repro.topology.linear import linear_ppdc
from repro.topology.vl2 import vl2


class TestLinear:
    def test_fig1_default_shape(self):
        topo = linear_ppdc()
        assert topo.num_hosts == 2
        assert topo.num_switches == 5
        h1, h2 = topo.hosts
        assert topo.graph.cost(int(h1), int(h2)) == 6.0

    def test_multiple_hosts_per_end(self):
        topo = linear_ppdc(num_switches=3, hosts_per_end=2)
        assert topo.num_hosts == 4
        racks = topo.racks()
        assert len(racks) == 2

    def test_bad_params(self):
        with pytest.raises(TopologyError):
            linear_ppdc(num_switches=0)
        with pytest.raises(TopologyError):
            linear_ppdc(hosts_per_end=0)


class TestLeafSpine:
    def test_structure(self):
        topo = leaf_spine(num_leaves=4, num_spines=2, hosts_per_leaf=3)
        assert topo.num_hosts == 12
        assert topo.num_switches == 6
        # leaf-spine full mesh: any host-to-host across racks is 4 hops
        h_a = int(topo.hosts[0])
        h_b = int(topo.hosts[-1])
        assert topo.graph.cost(h_a, h_b) == 4.0

    def test_intra_rack_distance(self):
        topo = leaf_spine(3, 2, 2)
        h0, h1 = topo.hosts[0], topo.hosts[1]
        assert topo.graph.cost(int(h0), int(h1)) == 2.0

    def test_bad_params(self):
        with pytest.raises(TopologyError):
            leaf_spine(0, 1, 1)


class TestVl2:
    def test_structure(self):
        topo = vl2(num_intermediate=2, num_aggregation=4, tors_per_agg_pair=2, hosts_per_tor=2)
        assert topo.num_hosts == 8
        # 4 tors + 4 aggs + 2 cores
        assert topo.num_switches == 10
        assert topo.graph.is_connected()

    def test_tor_dual_homing(self):
        topo = vl2(2, 4, 2, 2)
        tor = int(topo.switches[0])
        # 2 hosts + 2 aggregation uplinks
        assert topo.graph.neighbors(tor).size == 4

    def test_odd_aggregation_rejected(self):
        with pytest.raises(TopologyError):
            vl2(2, 3)


class TestBCube:
    def test_counts(self):
        topo = bcube(n=2, levels=1)
        assert topo.num_hosts == 4
        assert topo.num_switches == 4  # 2 levels x 2 switches

    def test_hosts_connect_to_every_level(self):
        topo = bcube(n=3, levels=1)
        for h in topo.hosts:
            assert topo.graph.neighbors(int(h)).size == 2  # k+1 = 2 links

    def test_connected(self):
        assert bcube(n=3, levels=1).graph.is_connected()

    def test_bad_params(self):
        with pytest.raises(TopologyError):
            bcube(n=1)
        with pytest.raises(TopologyError):
            bcube(n=2, levels=-1)


class TestJellyfish:
    def test_regularity_and_connectivity(self):
        topo = jellyfish(num_switches=12, degree=3, hosts_per_switch=1, seed=0)
        assert topo.num_hosts == 12
        for sw in topo.switches:
            # degree switch links + 1 host link
            assert topo.graph.neighbors(int(sw)).size == 4
        assert topo.graph.is_connected()

    def test_deterministic_given_seed(self):
        a = jellyfish(10, 3, seed=5)
        b = jellyfish(10, 3, seed=5)
        assert a.graph.edges == b.graph.edges

    def test_parity_rejected(self):
        with pytest.raises(TopologyError):
            jellyfish(num_switches=9, degree=3)

    def test_degree_bounds(self):
        with pytest.raises(TopologyError):
            jellyfish(num_switches=10, degree=10)
