import numpy as np
import pytest

from repro.topology.bcube import bcube
from repro.topology.fattree import fat_tree
from repro.topology.weights import apply_uniform_delays


class TestSwitchOnlyGraph:
    def test_fat_tree_switch_paths_avoid_hosts(self, ft4):
        induced, position_of = ft4.switch_only_graph()
        assert induced.num_nodes == ft4.num_switches
        # every full-graph switch-to-switch distance is achieved without hosts
        s0, s1 = int(ft4.switches[0]), int(ft4.switches[-1])
        assert induced.cost(position_of[s0], position_of[s1]) == ft4.graph.cost(s0, s1)

    def test_cached(self, ft4):
        a = ft4.switch_only_graph()
        b = ft4.switch_only_graph()
        assert a[0] is b[0]

    def test_bcube_switches_are_isolated(self):
        """BCube is server-centric: switches interconnect only via hosts, so
        the induced switch graph has no edges at all."""
        topo = bcube(n=3, levels=1)
        induced, _ = topo.switch_only_graph()
        assert induced.num_edges == 0

    def test_cache_not_leaked_through_reweighting(self):
        base = fat_tree(4)
        base.switch_only_graph()  # populate the cache
        weighted = apply_uniform_delays(base, seed=0)
        induced, position_of = weighted.switch_only_graph()
        s0, s1 = int(weighted.switches[0]), int(weighted.switches[1])
        # the reweighted topology must rebuild its own induced graph
        assert induced.cost(position_of[s0], position_of[s1]) == pytest.approx(
            weighted.graph.cost(s0, s1)
        )

    def test_weights_preserved(self, ft4):
        induced, position_of = ft4.switch_only_graph()
        for u, v, w in induced.edges:
            full_u = int(ft4.switches[u])
            full_v = int(ft4.switches[v])
            assert ft4.graph.edge_weight(full_u, full_v) == pytest.approx(
                induced.edge_weight(u, v)
            )
