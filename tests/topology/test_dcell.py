import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.dcell import dcell


class TestDCell:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_counts(self, n):
        topo = dcell(n)
        assert topo.num_hosts == n * (n + 1)
        assert topo.num_switches == n + 1
        # host links: n per cell to the switch, plus n(n+1)/2 inter-cell
        expected_edges = n * (n + 1) + n * (n + 1) // 2
        assert topo.graph.num_edges == expected_edges

    def test_connected(self):
        assert dcell(3).graph.is_connected()

    def test_hosts_have_two_links(self):
        """Every DCell_1 host has one switch link and one inter-cell link."""
        topo = dcell(3)
        for h in topo.hosts:
            assert topo.graph.neighbors(int(h)).size == 2

    def test_switch_subgraph_disconnected(self):
        topo = dcell(3)
        induced, _ = topo.switch_only_graph()
        assert induced.num_edges == 0

    def test_pipeline_with_corridor_fallback(self):
        """Placement + migration must work even though switch-only corridors
        do not exist (the direct-jump fallback)."""
        from repro.core.migration import mpareto_migration
        from repro.core.placement import dp_placement
        from repro.workload.flows import place_vm_pairs
        from repro.workload.traffic import FacebookTrafficModel

        topo = dcell(3)
        model = FacebookTrafficModel()
        flows = place_vm_pairs(topo, 8, seed=0)
        flows = flows.with_rates(model.sample(8, rng=0))
        placed = dp_placement(topo, flows, 2)
        changed = flows.with_rates(model.sample(8, rng=1))
        moved = mpareto_migration(topo, changed, placed.placement, mu=10.0)
        assert moved.cost <= 1e18  # completed without error
        assert len(set(moved.migration.tolist())) == 2

    def test_bad_n(self):
        with pytest.raises(TopologyError):
            dcell(1)
