import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.fattree import fat_tree


class TestFatTreeStructure:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_node_counts(self, k):
        topo = fat_tree(k)
        assert topo.num_hosts == k**3 // 4
        assert topo.num_switches == 5 * k**2 // 4
        assert topo.meta["core_switches"] == (k // 2) ** 2

    def test_paper_scales(self):
        # the paper's experiment fabrics: k=8 with 128 hosts, k=16 with 1024
        assert fat_tree(8).num_hosts == 128
        assert fat_tree(16).num_hosts == 1024

    @pytest.mark.parametrize("k", [4, 8])
    def test_switch_degrees_are_k(self, k):
        topo = fat_tree(k)
        g = topo.graph
        for sw in topo.switches:
            assert g.neighbors(int(sw)).size == k

    def test_hosts_are_leaves(self):
        topo = fat_tree(4)
        for h in topo.hosts:
            nbrs = topo.graph.neighbors(int(h))
            assert nbrs.size == 1
            assert topo.rack_of_host(int(h)) == int(nbrs[0])

    @pytest.mark.parametrize("k", [4, 8])
    def test_diameter_is_six(self, k):
        # host -> edge -> agg -> core -> agg -> edge -> host
        assert fat_tree(k).graph.diameter() == 6.0

    def test_k2_is_the_linear_chain_of_fig1(self):
        """The paper notes the k=2 fat tree equals the 5-switch linear PPDC."""
        topo = fat_tree(2)
        assert topo.num_hosts == 2
        assert topo.num_switches == 5
        # both hosts are 6 hops apart through the full chain
        h1, h2 = topo.hosts
        assert topo.graph.cost(int(h1), int(h2)) == 6.0
        # every switch has degree <= 2 (it is a path)
        degrees = sorted(topo.graph.neighbors(int(s)).size for s in topo.switches)
        assert max(degrees) == 2

    def test_intra_pod_edge_agg_distance(self):
        topo = fat_tree(4)
        edge0 = int(topo.switches[0])
        # first agg switch of pod 0
        agg0 = int(topo.switches[topo.meta["edge_switches"]])
        assert topo.graph.cost(edge0, agg0) == 1.0

    def test_rack_sizes(self):
        topo = fat_tree(4)
        racks = topo.racks()
        assert len(racks) == topo.meta["edge_switches"]
        assert all(r.size == 2 for r in racks)  # k/2 hosts per edge switch

    def test_edge_weight_parameter(self):
        topo = fat_tree(4, edge_weight=2.5)
        assert topo.graph.diameter() == 15.0

    @pytest.mark.parametrize("k", [0, 3, -2, 1])
    def test_bad_k_rejected(self, k):
        with pytest.raises(TopologyError):
            fat_tree(k)
