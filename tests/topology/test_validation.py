"""Input hardening on :class:`Topology`: bad weight matrices and
disconnected switch layers are rejected at construction with actionable
errors, not discovered later as corrupted costs.

``GraphBuilder`` cannot produce NaN/negative/asymmetric matrices, so
those tests forge a :class:`CostGraph` around a hand-made matrix — the
scenario the validation exists for (deserialized or doctored graphs).
"""

import pickle

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.graphs.adjacency import CostGraph, GraphBuilder
from repro.topology.base import Topology


def forge_graph(base: CostGraph, weights: np.ndarray) -> CostGraph:
    """A CostGraph whose weight matrix bypassed builder validation."""
    g = object.__new__(CostGraph)
    g.__dict__.update(base.__dict__)
    g._weights = np.asarray(weights, dtype=np.float64)
    return g


def line_graph() -> CostGraph:
    b = GraphBuilder()
    b.add_nodes(["h1", "s1", "s2", "h2"])
    b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3)
    return b.build()


def make_topology(graph: CostGraph, **kwargs) -> Topology:
    return Topology(
        name="forged",
        graph=graph,
        hosts=[0, 3],
        switches=[1, 2],
        host_edge_switch=[1, 2],
        **kwargs,
    )


class TestWeightMatrixRejection:
    def test_nan_rejected(self):
        base = line_graph()
        w = base.weights.copy()
        w[0, 2] = w[2, 0] = np.nan
        with pytest.raises(TopologyError, match="NaN"):
            make_topology(forge_graph(base, w))

    def test_negative_rejected(self):
        base = line_graph()
        w = base.weights.copy()
        w[1, 2] = w[2, 1] = -1.0
        with pytest.raises(TopologyError, match="non-negative"):
            make_topology(forge_graph(base, w))

    def test_asymmetric_rejected(self):
        base = line_graph()
        w = base.weights.copy()
        w[1, 2] = 5.0  # leave w[2, 1] at the original weight
        with pytest.raises(TopologyError, match="asymmetric"):
            make_topology(forge_graph(base, w))

    def test_valid_matrix_accepted(self):
        topo = make_topology(line_graph())
        assert topo.num_switches == 2


class TestSwitchConnectivity:
    def isolated_switch_graph(self) -> CostGraph:
        b = GraphBuilder()
        b.add_nodes(["h1", "h2", "s1", "s2"])
        b.add_edge(0, 2).add_edge(1, 2)  # s2 has no links at all
        return b.build()

    def test_disconnected_switch_layer_rejected(self):
        with pytest.raises(TopologyError, match="disconnected"):
            Topology(
                name="broken",
                graph=self.isolated_switch_graph(),
                hosts=[0, 1],
                switches=[2, 3],
                host_edge_switch=[2, 2],
            )

    def test_error_names_the_escape_hatch(self):
        with pytest.raises(TopologyError, match="allow_disconnected"):
            Topology(
                name="broken",
                graph=self.isolated_switch_graph(),
                hosts=[0, 1],
                switches=[2, 3],
                host_edge_switch=[2, 2],
            )

    def test_allow_disconnected_opts_out(self):
        topo = Topology(
            name="degraded-view",
            graph=self.isolated_switch_graph(),
            hosts=[0, 1],
            switches=[2, 3],
            host_edge_switch=[2, 2],
            meta={"allow_disconnected": True},
        )
        assert topo.num_switches == 2

    def test_host_relay_counts_as_connected(self):
        # server-centric fabrics (BCube) legitimately join switches only
        # through hosts; full-graph reachability must accept that
        b = GraphBuilder()
        b.add_nodes(["s1", "h1", "s2"])
        b.add_edge(0, 1).add_edge(1, 2)
        topo = Topology(
            name="relay",
            graph=b.build(),
            hosts=[1],
            switches=[0, 2],
            host_edge_switch=[0],
        )
        assert topo.num_switches == 2

    def test_with_graph_allow_disconnected_survives_pickle(self):
        topo = make_topology(line_graph())
        # drop the s1-s2 link: switch layer splits
        kept = [(u, v, w) for u, v, w in topo.graph.edges if (u, v) != (1, 2)]
        degraded_graph = CostGraph(topo.graph.labels, kept)
        view = topo.with_graph(
            degraded_graph, name="forged/degraded", allow_disconnected=True
        )
        assert view.meta["allow_disconnected"] is True
        clone = pickle.loads(pickle.dumps(view))
        assert clone.meta["allow_disconnected"] is True
        assert clone.num_switches == view.num_switches

    def test_with_graph_still_validates_by_default(self):
        topo = make_topology(line_graph())
        kept = [(u, v, w) for u, v, w in topo.graph.edges if (u, v) != (1, 2)]
        degraded_graph = CostGraph(topo.graph.labels, kept)
        with pytest.raises(TopologyError, match="disconnected"):
            topo.with_graph(degraded_graph, name="forged/degraded")
