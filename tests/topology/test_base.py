import numpy as np
import pytest

from repro.errors import TopologyError
from repro.graphs.adjacency import GraphBuilder
from repro.topology.base import Topology


def tiny_topology() -> Topology:
    b = GraphBuilder()
    h1, h2 = b.add_nodes(["h1", "h2"])
    s1, s2 = b.add_nodes(["s1", "s2"])
    b.add_edge(h1, s1).add_edge(s1, s2).add_edge(s2, h2)
    return Topology(
        name="tiny",
        graph=b.build(),
        hosts=[h1, h2],
        switches=[s1, s2],
        host_edge_switch=[s1, s2],
    )


class TestTopologyValidation:
    def test_partition_enforced(self):
        b = GraphBuilder()
        nodes = b.add_nodes(["h1", "s1", "s2"])
        b.add_edge(0, 1).add_edge(1, 2)
        with pytest.raises(TopologyError, match="partition"):
            Topology("bad", b.build(), hosts=[0], switches=[1], host_edge_switch=[1])

    def test_rack_must_be_switch(self):
        b = GraphBuilder()
        b.add_nodes(["h1", "h2", "s1"])
        b.add_edge(0, 2).add_edge(1, 2)
        with pytest.raises(TopologyError, match="switch"):
            Topology("bad", b.build(), hosts=[0, 1], switches=[2], host_edge_switch=[0, 2])

    def test_rack_alignment(self):
        b = GraphBuilder()
        b.add_nodes(["h1", "s1"])
        b.add_edge(0, 1)
        with pytest.raises(TopologyError, match="align"):
            Topology("bad", b.build(), hosts=[0], switches=[1], host_edge_switch=[1, 1])


class TestTopologyViews:
    def test_is_host_switch(self):
        topo = tiny_topology()
        assert topo.is_host(0)
        assert topo.is_switch(2)
        assert not topo.is_host(2)

    def test_rack_of_host_rejects_switch(self):
        with pytest.raises(TopologyError, match="not a host"):
            tiny_topology().rack_of_host(2)

    def test_hosts_in_rack(self):
        topo = tiny_topology()
        assert topo.hosts_in_rack(2).tolist() == [0]

    def test_switch_distances(self):
        topo = tiny_topology()
        sdist = topo.switch_distances
        assert sdist.shape == (2, 2)
        assert sdist[0, 1] == 1.0

    def test_host_to_switch_distances(self):
        mat = tiny_topology().host_to_switch_distances()
        assert mat.shape == (2, 2)
        assert mat[0, 0] == 1.0
        assert mat[0, 1] == 2.0

    def test_with_graph_requires_same_size(self):
        topo = tiny_topology()
        b = GraphBuilder()
        b.add_nodes(["x", "y"])
        b.add_edge(0, 1)
        with pytest.raises(TopologyError, match="node count"):
            topo.with_graph(b.build())

    def test_arrays_read_only(self):
        topo = tiny_topology()
        with pytest.raises(ValueError):
            topo.hosts[0] = 5
