"""Property suite for the migrate-vs-replicate lattice (DESIGN.md §5j).

Fast deterministic contracts (ReplicaSet validity, the ρ=0 bit-identity
anchor, accounting splits) run unmarked in tier-1; the hypothesis
sweeps are marked ``replication`` and run in their own CI step.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.migration import mpareto_migration
from repro.core.replication import (
    ReplicaSet,
    exact_replication_step,
    replication_step,
)
from repro.core.placement import dp_placement
from repro.errors import PlacementError
from repro.sim.engine import simulate_day
from repro.sim.metrics import replication_summary
from repro.sim.policies import MParetoPolicy, TomReplicationPolicy
from repro.workload.diurnal import DiurnalModel
from repro.workload.dynamics import ScaledRates

HOURS = 6


def _simulate(topology, flows, policy, *, n=2, hours=HOURS):
    placement = dp_placement(topology, flows, n).placement
    rate_process = ScaledRates(
        flows, DiurnalModel(num_hours=hours), np.zeros(flows.num_flows)
    )
    return simulate_day(
        topology, flows, policy, rate_process, placement, range(1, hours + 1)
    )


class TestReplicaSet:
    def test_rejects_overlapping_copies(self):
        with pytest.raises(PlacementError):
            ReplicaSet(primary=np.array([2, 3]), replicas=np.array([[3, 4]]))

    def test_rejects_duplicate_within_primary(self):
        with pytest.raises(PlacementError):
            ReplicaSet(primary=np.array([2, 2]), replicas=np.empty((0, 2)))

    def test_add_drop_roundtrip(self):
        rs = ReplicaSet(primary=np.array([2, 3]), replicas=np.empty((0, 2)))
        grown = rs.add_replica(np.array([4, 5]))
        assert grown.num_replicas == 1
        assert grown.switches() == {2, 3, 4, 5}
        back = grown.drop_replica(0)
        assert back.num_replicas == 0
        assert np.array_equal(back.primary, rs.primary)

    def test_prune_reports_lost_rows(self):
        rs = ReplicaSet(
            primary=np.array([2, 3]), replicas=np.array([[4, 5], [6, 7]])
        )
        kept, lost = rs.prune({2, 3, 4, 5, 9})
        assert kept.num_replicas == 1
        assert [list(r) for r in lost] == [[6, 7]]


class TestRhoZeroAnchor:
    """ρ=0 disables replication and takes MParetoPolicy's exact call path."""

    def test_day_byte_identical_to_mpareto(self, ft4, small_scenario):
        flows = small_scenario(ft4, 8, seed=55)
        plain = _simulate(ft4, flows, MParetoPolicy(ft4, mu=10.0))
        zero = _simulate(
            ft4, flows, TomReplicationPolicy(ft4, mu=10.0, rho=0.0)
        )
        a, b = plain.to_dict(), zero.to_dict()
        a.pop("policy"), b.pop("policy")
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_max_replicas_zero_also_disables(self, ft4, small_scenario):
        flows = small_scenario(ft4, 6, seed=7)
        plain = _simulate(ft4, flows, MParetoPolicy(ft4, mu=10.0))
        off = _simulate(
            ft4, flows,
            TomReplicationPolicy(ft4, mu=10.0, rho=0.5, max_replicas=0),
        )
        assert [r.to_dict() for r in off.records] == [
            r.to_dict() for r in plain.records
        ]


class TestStepAccounting:
    def test_step_totals_and_summary_agree(self, ft4, small_scenario):
        flows = small_scenario(ft4, 8, seed=3)
        policy = TomReplicationPolicy(
            ft4, mu=100.0, rho=0.2, sync_fraction=0.001
        )
        day = _simulate(ft4, flows, policy)
        summary = replication_summary(day)
        want = (
            summary["communication_cost"]
            + summary["migration_cost"]
            + summary["replication_cost"]
            + summary["sync_cost"]
            + summary["repair_cost"]
        )
        assert summary["total_cost"] == pytest.approx(want)
        for record in day.records:
            assert record.total_cost == pytest.approx(
                record.communication_cost
                + record.migration_cost
                + record.repair_cost
                + record.replication_cost
                + record.sync_cost
            )

    def test_replicate_fires_and_beats_plain_tom(self, ft4, small_scenario):
        # scanned regime: cheap copies + near-free sync make replicas win
        flows = small_scenario(ft4, 8, seed=3)
        repl = _simulate(
            ft4, flows,
            TomReplicationPolicy(
                ft4, mu=100.0, rho=0.2, sync_fraction=0.001
            ),
            n=3,
        )
        plain = _simulate(ft4, flows, MParetoPolicy(ft4, mu=100.0), n=3)
        assert repl.total_replications > 0
        assert repl.peak_replicas > 0
        assert repl.total_cost < plain.total_cost


@pytest.mark.replication
class TestLatticeProperties:
    """Hypothesis sweeps over seeds and regimes (dedicated CI step)."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**16), mu=st.sampled_from([0.0, 5.0, 100.0]))
    def test_day_is_deterministic(self, ft4, small_scenario, seed, mu):
        flows = small_scenario(ft4, 8, seed=seed)
        make = lambda: TomReplicationPolicy(  # noqa: E731
            ft4, mu=mu, rho=0.3, sync_fraction=0.001
        )
        first = _simulate(ft4, flows, make())
        second = _simulate(ft4, flows, make())
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        rho_pair=st.tuples(st.floats(0.01, 1.0), st.floats(0.01, 1.0)),
    )
    def test_step_total_monotone_in_rho(self, ft4, small_scenario, seed, rho_pair):
        """For a fixed hour state the chosen total is non-decreasing in ρ.

        Keep/migrate prices don't depend on ρ while every replicate
        option's price grows with it (and the menu only shrinks), so the
        menu minimum is monotone.  The *day*-level frontier is not a
        theorem (trajectories diverge), which is why the property pins
        one state.
        """
        lo, hi = sorted(rho_pair)
        flows = small_scenario(ft4, 8, seed=seed)
        placement = dp_placement(ft4, flows, 2).placement
        state = ReplicaSet(
            primary=placement, replicas=np.empty((0, placement.size))
        )
        migrate = mpareto_migration(ft4, flows, placement, 100.0)
        kwargs = dict(sync_fraction=0.001, max_replicas=2,
                      migrate_result=migrate)
        cheap = replication_step(ft4, flows, state, 100.0, rho=lo, **kwargs)
        dear = replication_step(ft4, flows, state, 100.0, rho=hi, **kwargs)
        assert cheap.total_cost <= dear.total_cost + 1e-9 * max(
            1.0, dear.total_cost
        )

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        rho=st.sampled_from([0.05, 0.3, 0.9]),
        mu=st.sampled_from([0.0, 5.0, 100.0]),
    )
    def test_exact_lattice_never_loses_to_greedy(
        self, ft4, small_scenario, seed, rho, mu
    ):
        flows = small_scenario(ft4, 6, seed=seed)
        placement = dp_placement(ft4, flows, 2).placement
        state = ReplicaSet(
            primary=placement, replicas=np.empty((0, placement.size))
        )
        migrate = mpareto_migration(ft4, flows, placement, mu)
        greedy = replication_step(
            ft4, flows, state, mu, rho=rho, sync_fraction=0.001,
            max_replicas=2, migrate_result=migrate,
        )
        exact = exact_replication_step(
            ft4, flows, state, mu, rho=rho, sync_fraction=0.001,
            max_replicas=2,
        )
        assert exact.total_cost <= greedy.total_cost + 1e-9 * max(
            1.0, greedy.total_cost
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_rho_above_one_never_replicates(self, ft4, small_scenario, seed):
        flows = small_scenario(ft4, 8, seed=seed)
        day = _simulate(
            ft4, flows,
            TomReplicationPolicy(
                ft4, mu=100.0, rho=2.5, sync_fraction=0.001
            ),
        )
        assert day.total_replications == 0
        assert day.peak_replicas == 0
