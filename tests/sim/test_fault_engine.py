"""Integration tests for the fault-aware day loop in repro.sim.engine."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.placement import dp_placement
from repro.errors import FaultError, InfeasibleError
from repro.faults import FaultConfig, FaultProcess, FaultState
from repro.sim.engine import simulate_day
from repro.sim.policies import MParetoPolicy, NoMigrationPolicy, PlanVmPolicy
from repro.workload.diurnal import DiurnalModel
from repro.workload.dynamics import ScaledRates

pytestmark = pytest.mark.faults

HOURS = 6


class ScriptedFaults:
    """Minimal FaultProcess stand-in with a hand-written state per hour."""

    def __init__(self, states: dict[int, FaultState], horizon: int = HOURS):
        self._states = states
        self.seed = 0
        self.horizon = horizon
        self.config = FaultConfig()

    def state_at(self, hour: int) -> FaultState:
        return self._states.get(min(hour, self.horizon), FaultState())

    def trace(self):
        return ()


@pytest.fixture()
def setup(ft4, small_scenario):
    flows = small_scenario(ft4, 8, seed=55)
    placement = dp_placement(ft4, flows, 3).placement
    rate_process = ScaledRates(
        flows, DiurnalModel(num_hours=HOURS), np.zeros(flows.num_flows)
    )
    return flows, placement, rate_process


def _run(ft4, setup, policy_cls, faults, *, mu=10.0):
    flows, placement, rate_process = setup
    policy = policy_cls(ft4, mu=mu)
    return simulate_day(
        ft4, flows, policy, rate_process, placement,
        range(1, HOURS + 1), faults=faults,
    )


class TestZeroFaultEquivalence:
    @pytest.mark.parametrize("policy_cls", [MParetoPolicy, NoMigrationPolicy])
    def test_zero_rate_process_matches_classic_loop(self, ft4, setup, policy_cls):
        flows, placement, rate_process = setup
        quiet = FaultProcess(
            ft4,
            FaultConfig(switch_rate=0.0, host_rate=0.0, link_rate=0.0),
            seed=0,
            horizon=HOURS,
        )
        classic = simulate_day(
            ft4, flows, policy_cls(ft4, mu=10.0), rate_process, placement,
            range(1, HOURS + 1),
        )
        faulty = _run(ft4, setup, policy_cls, quiet)
        assert [r.to_dict() for r in faulty.records] == [
            r.to_dict() for r in classic.records
        ]
        assert faulty.total_repair_cost == 0.0
        assert faulty.total_dropped_traffic == 0.0


class TestForcedRepair:
    def test_failure_evicts_placement_from_dead_switch(self, ft4, setup):
        flows, placement, _ = setup
        dead = int(placement[0])
        faults = ScriptedFaults({
            hour: FaultState(failed_switches=(dead,))
            for hour in range(1, HOURS + 1)
        })
        day = _run(ft4, setup, NoMigrationPolicy, faults)
        log = day.extra["fault_log"]
        assert len(log) == HOURS
        # the eviction happens once, at hour 1, and is priced mu * distance
        first = log[0]
        assert any(a == dead for _, a, _ in map(tuple, first["repairs"]))
        assert day.records[0].num_repairs >= 1
        assert day.records[0].repair_cost == pytest.approx(
            10.0 * first["repair_distance"]
        )
        for entry in log:
            assert dead not in entry["placement"]
        # later hours see an already-clean placement: no further repairs
        assert day.total_repairs == day.records[0].num_repairs

    def test_placement_containment_every_hour(self, ft4, setup):
        flows, placement, _ = setup
        from repro.faults import degrade

        dead = int(placement[0])
        state = FaultState(failed_switches=(dead,))
        faults = ScriptedFaults({h: state for h in range(1, HOURS + 1)})
        day = _run(ft4, setup, MParetoPolicy, faults)
        _, audit = degrade(ft4, state)
        surviving = set(audit.surviving_switches.tolist())
        for entry in day.extra["fault_log"]:
            assert set(entry["placement"]) <= surviving

    def test_repair_cost_scales_with_mu(self, ft4, setup):
        flows, placement, _ = setup
        dead = int(placement[0])
        faults = ScriptedFaults({1: FaultState(failed_switches=(dead,))})
        lo = _run(ft4, setup, NoMigrationPolicy, faults, mu=1.0)
        hi = _run(ft4, setup, NoMigrationPolicy, faults, mu=7.0)
        assert lo.records[0].repair_cost > 0
        assert hi.records[0].repair_cost == pytest.approx(
            7.0 * lo.records[0].repair_cost
        )


class TestDroppedTraffic:
    def test_failed_host_drops_its_flows(self, ft4, setup):
        flows, placement, rate_process = setup
        victim = int(flows.sources[0])
        state = FaultState(failed_hosts=(victim,))
        faults = ScriptedFaults({h: state for h in range(1, HOURS + 1)})
        day = _run(ft4, setup, MParetoPolicy, faults)
        touches = (flows.sources == victim) | (flows.destinations == victim)
        for hour, record in zip(range(1, HOURS + 1), day.records):
            rates = rate_process.rates_at(hour)
            assert record.dropped_traffic == pytest.approx(
                float(rates[touches].sum())
            )
        assert day.total_dropped_traffic > 0

    def test_all_hosts_down_short_circuits_the_hour(self, ft4, setup):
        flows, placement, rate_process = setup
        state = FaultState(failed_hosts=tuple(int(h) for h in ft4.hosts))
        faults = ScriptedFaults({1: state})
        day = _run(ft4, setup, MParetoPolicy, faults)
        first = day.records[0]
        assert first.communication_cost == 0.0
        assert first.migration_cost == 0.0
        assert first.dropped_traffic == pytest.approx(
            float(rate_process.rates_at(1).sum())
        )
        # the day recovers at hour 2
        assert day.records[1].communication_cost > 0.0


class TestInfeasibility:
    def test_too_few_surviving_switches_is_diagnosed(self, ft4, setup):
        flows, placement, _ = setup
        switches = [int(s) for s in ft4.switches]
        # kill all but two switches: a 3-VNF chain cannot fit
        state = FaultState(failed_switches=tuple(switches[:-2]))
        faults = ScriptedFaults({3: state})
        with pytest.raises(InfeasibleError) as excinfo:
            _run(ft4, setup, MParetoPolicy, faults)
        diagnosis = excinfo.value.diagnosis
        assert diagnosis["reason"] == "too_few_surviving_switches"
        assert diagnosis["hour"] == 3
        assert diagnosis["num_vnfs"] == 3

    def test_unsupported_policy_rejected_up_front(self, ft4, setup):
        flows, placement, rate_process = setup
        policy = PlanVmPolicy(ft4, mu=10.0)
        quiet = ScriptedFaults({})
        with pytest.raises(FaultError, match="does not support"):
            simulate_day(
                ft4, flows, policy, rate_process, placement,
                range(1, HOURS + 1), faults=quiet,
            )


class TestDeterminism:
    @pytest.mark.parametrize("policy_cls", [MParetoPolicy, NoMigrationPolicy])
    def test_same_seed_byte_identical_day(self, ft4, setup, policy_cls):
        flows, placement, rate_process = setup
        runs = []
        for _ in range(2):
            faults = FaultProcess(
                ft4,
                FaultConfig(switch_rate=0.15, mean_repair_hours=2.0),
                seed=17,
                horizon=HOURS,
            )
            day = simulate_day(
                ft4, flows, policy_cls(ft4, mu=10.0), rate_process,
                placement, range(1, HOURS + 1), faults=faults,
            )
            runs.append(json.dumps(day.to_dict(), sort_keys=True))
        assert runs[0] == runs[1]

    def test_fault_log_aligns_with_records(self, ft4, setup):
        faults = FaultProcess(
            ft4,
            FaultConfig(switch_rate=0.15, mean_repair_hours=2.0),
            seed=17,
            horizon=HOURS,
        )
        day = _run(ft4, setup, MParetoPolicy, faults)
        log = day.extra["fault_log"]
        assert len(log) == len(day.records)
        for record, entry in zip(day.records, log):
            assert record.hour == entry["hour"]
            assert record.num_repairs == len(entry["repairs"])

    def test_drop_mask_is_policy_independent(self, ft4, setup):
        make = lambda: FaultProcess(  # noqa: E731
            ft4,
            FaultConfig(switch_rate=0.2, host_rate=0.1, mean_repair_hours=2.0),
            seed=29,
            horizon=HOURS,
        )
        mp = _run(ft4, setup, MParetoPolicy, make())
        stay = _run(ft4, setup, NoMigrationPolicy, make())
        assert mp.hourly("dropped_traffic").tolist() == (
            stay.hourly("dropped_traffic").tolist()
        )
