import numpy as np
import pytest

from repro.core.placement import dp_placement
from repro.errors import MigrationError
from repro.sim.schedules import PeriodicMParetoPolicy, ThresholdMParetoPolicy
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


@pytest.fixture()
def setup(ft4):
    flows = place_vm_pairs(ft4, 8, seed=91)
    flows = flows.with_rates(FacebookTrafficModel().sample(8, rng=91))
    placement = dp_placement(ft4, flows, 3).placement
    return flows, placement


class TestPeriodicPolicy:
    def test_migrates_only_on_period(self, ft4, setup):
        flows, placement = setup
        policy = PeriodicMParetoPolicy(ft4, mu=0.0, period=3)
        policy.initialize(flows, placement)
        model = FacebookTrafficModel()
        migrations = []
        for hour in range(1, 7):
            step = policy.step(model.sample(8, rng=hour))
            migrations.append(step.num_migrations)
        # hours 1,2 stay; hour 3 may migrate; hours 4,5 stay; hour 6 may
        assert migrations[0] == 0 and migrations[1] == 0
        assert migrations[3] == 0 and migrations[4] == 0

    def test_period_one_is_every_hour(self, ft4, setup):
        flows, placement = setup
        policy = PeriodicMParetoPolicy(ft4, mu=0.0, period=1)
        policy.initialize(flows, placement)
        step = policy.step(FacebookTrafficModel().sample(8, rng=123))
        assert step.communication_cost >= 0  # ran mPareto without error

    def test_bad_period(self, ft4):
        with pytest.raises(MigrationError):
            PeriodicMParetoPolicy(ft4, mu=1.0, period=0)


class TestThresholdPolicy:
    def test_huge_threshold_never_migrates(self, ft4, setup):
        flows, placement = setup
        policy = ThresholdMParetoPolicy(ft4, mu=0.0, threshold=1e9)
        policy.initialize(flows, placement)
        model = FacebookTrafficModel()
        for hour in range(1, 5):
            step = policy.step(model.sample(8, rng=hour))
            assert step.num_migrations == 0
        assert np.array_equal(policy.placement, placement)

    def test_zero_threshold_recovers_from_staleness(self, ft4, setup):
        flows, _ = setup
        # deliberately bad starting placement: chain jammed into one corner
        stale = ft4.switches[[0, 1, 2]]
        policy = ThresholdMParetoPolicy(ft4, mu=0.0, threshold=0.0)
        policy.initialize(flows, stale)
        step = policy.step(flows.rates)
        # free migration + a stale chain: the policy must migrate and land
        # at (or below) the fresh DP cost
        fresh = dp_placement(ft4, flows, 3)
        assert step.num_migrations >= 1 or step.communication_cost <= fresh.cost + 1e-9

    def test_bad_threshold(self, ft4):
        with pytest.raises(MigrationError):
            ThresholdMParetoPolicy(ft4, mu=1.0, threshold=-0.5)
