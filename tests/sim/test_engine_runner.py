import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.sim.engine import DayResult, HourRecord, initial_placement, simulate_day
from repro.sim.policies import MParetoPolicy, NoMigrationPolicy
from repro.sim.runner import RunConfig, build_rate_process, run_replications
from repro.workload.diurnal import DiurnalModel
from repro.workload.dynamics import RedrawnRates, ScaledRates
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


@pytest.fixture()
def setup(ft4):
    flows = place_vm_pairs(ft4, 8, seed=66)
    flows = flows.with_rates(FacebookTrafficModel().sample(8, rng=66))
    diurnal = DiurnalModel()
    process = ScaledRates(flows, diurnal, np.zeros(8))
    return flows, diurnal, process


class TestHourRecordsAndDayResult:
    def test_day_aggregates(self):
        records = (
            HourRecord(1, 10.0, 2.0, 1),
            HourRecord(2, 20.0, 0.0, 0),
        )
        day = DayResult(policy="x", records=records)
        assert day.total_cost == 32.0
        assert day.total_communication_cost == 30.0
        assert day.total_migration_cost == 2.0
        assert day.total_migrations == 1
        assert day.hourly("communication_cost").tolist() == [10.0, 20.0]


class TestSimulateDay:
    def test_hours_covered(self, ft4, setup):
        flows, diurnal, process = setup
        placement = initial_placement(ft4, flows, 3, process)
        policy = NoMigrationPolicy(ft4, mu=1.0)
        day = simulate_day(ft4, flows, policy, process, placement)
        assert [r.hour for r in day.records] == list(range(1, 13))

    def test_noon_is_peak_for_no_migration(self, ft4, setup):
        flows, diurnal, process = setup
        placement = initial_placement(ft4, flows, 3, process)
        policy = NoMigrationPolicy(ft4, mu=1.0)
        day = simulate_day(ft4, flows, policy, process, placement)
        series = day.hourly("communication_cost")
        assert np.argmax(series) == 5  # hour 6 is index 5

    def test_mpareto_never_worse_than_no_migration(self, ft4, setup):
        flows, diurnal, process = setup
        placement = initial_placement(ft4, flows, 3, process)
        stay = simulate_day(ft4, flows, NoMigrationPolicy(ft4, 1.0), process, placement)
        move = simulate_day(ft4, flows, MParetoPolicy(ft4, 1.0), process, placement)
        assert move.total_cost <= stay.total_cost + 1e-6

    def test_custom_hour_range(self, ft4, setup):
        flows, diurnal, process = setup
        placement = initial_placement(ft4, flows, 3, process)
        day = simulate_day(
            ft4, flows, NoMigrationPolicy(ft4, 1.0), process, placement, hours=range(5, 8)
        )
        assert len(day.records) == 3


class TestInitialPlacement:
    def test_silent_hour_falls_back_to_base_rates(self, ft4, setup):
        flows, diurnal, _ = setup
        process = ScaledRates(flows, diurnal, np.zeros(8))
        p = initial_placement(ft4, flows, 3, process, hour=0)  # τ(0) = 0
        assert p.size == 3


class TestRunConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            RunConfig(num_pairs=4, num_vnfs=2, mu=1.0, cohorts="bogus")
        with pytest.raises(WorkloadError):
            RunConfig(num_pairs=4, num_vnfs=2, mu=1.0, dynamics="bogus")


class TestBuildRateProcess:
    def test_modes(self, ft4, setup):
        flows, _, _ = setup
        model = FacebookTrafficModel()
        scaled = build_rate_process(
            ft4, flows, model, RunConfig(8, 3, 1.0, dynamics="scaled"), seed=0
        )
        assert isinstance(scaled, ScaledRates)
        redrawn = build_rate_process(
            ft4, flows, model, RunConfig(8, 3, 1.0, dynamics="redrawn"), seed=0
        )
        assert isinstance(redrawn, RedrawnRates)

    def test_spatial_cohorts(self, ft4, setup):
        flows, _, _ = setup
        cfg = RunConfig(8, 3, 1.0, cohorts="spatial", dynamics="scaled")
        process = build_rate_process(ft4, flows, FacebookTrafficModel(), cfg, seed=0)
        assert set(np.unique(process.offsets)) <= {0.0, 3.0}


class TestRunReplications:
    def test_paired_design_and_summaries(self, ft4):
        cfg = RunConfig(num_pairs=6, num_vnfs=3, mu=1.0, replications=3, seed=9)
        factories = {
            "mpareto": lambda t, mu: MParetoPolicy(t, mu),
            "stay": lambda t, mu: NoMigrationPolicy(t, mu),
        }
        results, summaries = run_replications(
            ft4, FacebookTrafficModel(), cfg, factories
        )
        assert len(results) == 3
        assert set(summaries) == {"mpareto", "stay"}
        for rep in results:
            assert set(rep.days) == {"mpareto", "stay"}
            # paired: both policies saw the same workload
            assert rep.days["mpareto"].records[0].hour == 1
        ci = summaries["stay"]["total_cost"]
        assert ci.n == 3
        # mPareto can only improve on staying (same paired workloads)
        assert (
            summaries["mpareto"]["total_cost"].mean
            <= summaries["stay"]["total_cost"].mean + 1e-6
        )

    def test_deterministic_given_seed(self, ft4):
        cfg = RunConfig(num_pairs=5, num_vnfs=2, mu=1.0, replications=2, seed=4)
        factories = {"stay": lambda t, mu: NoMigrationPolicy(t, mu)}
        _, s1 = run_replications(ft4, FacebookTrafficModel(), cfg, factories)
        _, s2 = run_replications(ft4, FacebookTrafficModel(), cfg, factories)
        assert s1["stay"]["total_cost"].mean == s2["stay"]["total_cost"].mean
