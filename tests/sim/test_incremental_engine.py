"""Incremental vs cold day loops: bit-identity and reduced solver effort.

The acceptance bar of ISSUE 6: fig11/fig12-shaped days simulated through
the incremental session path produce byte-identical ``DayResult`` s while
paying strictly fewer cold APSP solves on fault days.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.placement import dp_placement
from repro.faults import FaultConfig, FaultProcess
from repro.runtime.cache import ComputeCache, set_compute_cache
from repro.runtime.instrument import reset, snapshot, snapshot_delta
from repro.sim.engine import incremental_enabled, set_incremental, simulate_day
from repro.sim.policies import MParetoPolicy
from repro.workload.diurnal import DiurnalModel
from repro.workload.dynamics import ScaledRates

pytestmark = pytest.mark.faults

HOURS = 6


@pytest.fixture()
def setup(ft4, small_scenario):
    flows = small_scenario(ft4, 8, seed=55)
    placement = dp_placement(ft4, flows, 3).placement
    rate_process = ScaledRates(
        flows, DiurnalModel(num_hours=HOURS), np.zeros(flows.num_flows)
    )
    return flows, placement, rate_process


def _faulty_day(ft4, setup, *, incremental, seed=3):
    """One seeded fault day under a fresh cache; returns (json, counters)."""
    flows, placement, rate_process = setup
    faults = FaultProcess(
        ft4,
        FaultConfig(switch_rate=0.12, link_rate=0.05, mean_repair_hours=2.0),
        seed=seed,
        horizon=HOURS,
    )
    previous = set_compute_cache(ComputeCache())
    before = snapshot()
    try:
        result = simulate_day(
            ft4, flows, MParetoPolicy(ft4, mu=10.0), rate_process, placement,
            range(1, HOURS + 1), faults=faults, incremental=incremental,
        )
    finally:
        set_compute_cache(previous)
    delta = snapshot_delta(snapshot(), before)["counters"]
    return json.dumps(result.to_dict(), sort_keys=True), delta


class TestFaultDayEquivalence:
    def test_incremental_day_is_byte_identical_to_cold(self, ft4, setup):
        cold_json, cold = _faulty_day(ft4, setup, incremental=False)
        inc_json, inc = _faulty_day(ft4, setup, incremental=True)
        assert inc_json == cold_json
        # the seeded day (seed=3) has degraded hours; cold pays a full-fabric
        # APSP per distinct state, the session seeds those from the delta
        # tables (both still pay the switch-induced subgraph solves, which
        # is why the incremental count is lower but not 1)
        assert inc.get("apsp_computes", 0) < cold.get("apsp_computes", 0)
        assert inc.get("apsp_seeded", 0) >= 1
        assert inc.get("session_fault_views", 0) >= 1
        assert inc.get("apsp_incremental_updates", 0) >= 1

    def test_plain_day_unaffected_by_flag(self, ft4, setup):
        flows, placement, rate_process = setup
        days = []
        for incremental in (False, True):
            days.append(
                simulate_day(
                    ft4, flows, MParetoPolicy(ft4, mu=10.0), rate_process,
                    placement, range(1, HOURS + 1), incremental=incremental,
                )
            )
        assert json.dumps(days[0].to_dict(), sort_keys=True) == json.dumps(
            days[1].to_dict(), sort_keys=True
        )


class TestIncrementalToggle:
    def test_module_default_is_on(self):
        assert incremental_enabled() is True

    def test_set_incremental_round_trips(self):
        assert set_incremental(False) is True
        try:
            assert incremental_enabled() is False
        finally:
            set_incremental(True)
        assert incremental_enabled() is True

    def test_none_resolves_to_module_default(self, ft4, setup):
        # flipping the default off must steer simulate_day's fault loop
        # down the cold branch: no session counters fire
        set_incremental(False)
        try:
            reset()
            cold_json, delta = _faulty_day(ft4, setup, incremental=None)
        finally:
            set_incremental(True)
        assert delta.get("session_fault_views", 0) == 0
        assert delta.get("apsp_seeded", 0) == 0


def test_faulty_day_equivalence_across_seeds(ft4, setup):
    """A couple more seeds so repair hours and noop transitions show up."""
    for seed in (7, 11):
        cold_json, cold = _faulty_day(ft4, setup, incremental=False, seed=seed)
        inc_json, inc = _faulty_day(ft4, setup, incremental=True, seed=seed)
        assert inc_json == cold_json
        assert inc.get("apsp_computes", 0) <= cold.get("apsp_computes", 0)
