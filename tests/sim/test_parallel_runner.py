"""Serial/parallel equivalence of the replication runner.

The contract of :mod:`repro.runtime.executor`: the same seeds go in, so
the same results come out regardless of ``workers``.  These tests pin the
bit-identical guarantee at the runner level — summaries AND per-hour
placements must match exactly, not approximately.
"""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.sim.policies import MParetoPolicy, NoMigrationPolicy
from repro.sim.runner import RunConfig, run_replications
from repro.workload.traffic import FacebookTrafficModel

FACTORIES = {"mpareto": MParetoPolicy, "stay": NoMigrationPolicy}


def _run(ft4, workers):
    cfg = RunConfig(
        num_pairs=6, num_vnfs=3, mu=1.0, dynamics="redrawn", replications=3, seed=42
    )
    return run_replications(
        ft4, FacebookTrafficModel(), cfg, FACTORIES, workers=workers
    )


class TestSerialParallelEquivalence:
    def test_summaries_bit_identical(self, ft4):
        _, serial = _run(ft4, workers=1)
        _, parallel = _run(ft4, workers=2)
        for name in FACTORIES:
            for metric in serial[name]:
                assert serial[name][metric].mean == parallel[name][metric].mean
                assert (
                    serial[name][metric].halfwidth == parallel[name][metric].halfwidth
                )

    def test_hourly_records_and_placements_identical(self, ft4):
        serial, _ = _run(ft4, workers=1)
        parallel, _ = _run(ft4, workers=2)
        assert len(serial) == len(parallel)
        for rep_s, rep_p in zip(serial, parallel):
            assert np.array_equal(rep_s.placement, rep_p.placement)
            assert np.array_equal(rep_s.flows.rates, rep_p.flows.rates)
            for name in FACTORIES:
                day_s, day_p = rep_s.days[name], rep_p.days[name]
                for rec_s, rec_p in zip(day_s.records, day_p.records):
                    assert rec_s.hour == rec_p.hour
                    assert rec_s.communication_cost == rec_p.communication_cost
                    assert rec_s.migration_cost == rec_p.migration_cost
                    assert rec_s.num_migrations == rec_p.num_migrations

    def test_replication_count_independent_of_workers(self, ft4):
        results, _ = _run(ft4, workers=3)  # more workers than useful
        assert len(results) == 3

    def test_invalid_workers_rejected(self, ft4):
        with pytest.raises(ReproError):
            _run(ft4, workers=0)
