import numpy as np
import pytest

from repro.errors import ReproError
from repro.sim.engine import DayResult, HourRecord
from repro.sim.metrics import analyze_gaps, hourly_table, migration_efficiency


def make_day(policy: str, costs, migrations=None) -> DayResult:
    migrations = migrations or [0] * len(costs)
    records = tuple(
        HourRecord(hour=h + 1, communication_cost=c, migration_cost=0.0, num_migrations=m)
        for h, (c, m) in enumerate(zip(costs, migrations))
    )
    return DayResult(policy=policy, records=records)


@pytest.fixture()
def days():
    return {
        "optimal": make_day("optimal", [10.0, 20.0, 30.0]),
        "mpareto": make_day("mpareto", [11.0, 22.0, 30.0], [1, 1, 0]),
        "stay": make_day("stay", [20.0, 40.0, 60.0]),
    }


class TestAnalyzeGaps:
    def test_gap_values(self, days):
        gaps = analyze_gaps(days, reference="optimal")
        assert set(gaps) == {"mpareto", "stay"}
        assert gaps["mpareto"].hourly_gap[0] == pytest.approx(0.1)
        assert gaps["mpareto"].hourly_gap[2] == pytest.approx(0.0)
        assert gaps["stay"].total_gap == pytest.approx(1.0)

    def test_worst_hour(self, days):
        gaps = analyze_gaps(days, reference="optimal")
        idx, value = gaps["mpareto"].worst_hour()
        assert idx in (0, 1)
        assert value == pytest.approx(0.1)

    def test_unknown_reference(self, days):
        with pytest.raises(ReproError):
            analyze_gaps(days, reference="nope")

    def test_mismatched_hours(self, days):
        days = dict(days)
        days["short"] = make_day("short", [5.0])
        with pytest.raises(ReproError):
            analyze_gaps(days, reference="optimal")

    def test_zero_reference_hours_give_zero_gap(self):
        days = {
            "ref": make_day("ref", [0.0, 10.0]),
            "other": make_day("other", [0.0, 20.0]),
        }
        gaps = analyze_gaps(days, reference="ref")
        assert gaps["other"].hourly_gap[0] == 0.0


class TestHourlyTable:
    def test_renders_all_policies(self, days):
        table = hourly_table(days)
        for name in days:
            assert name in table
        assert "hour" in table

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            hourly_table({})


class TestMigrationEfficiency:
    def test_saved_per_move(self, days):
        eff = migration_efficiency(days, baseline="stay")
        # mpareto saved 120 - 63 = 57 over 2 moves
        assert eff["mpareto"] == pytest.approx((120.0 - 63.0) / 2)
        # optimal never migrated: efficiency reported as 0
        assert eff["optimal"] == 0.0

    def test_unknown_baseline(self, days):
        with pytest.raises(ReproError):
            migration_efficiency(days, baseline="nope")
