import numpy as np
import pytest

from repro.core.costs import CostContext
from repro.core.placement import dp_placement
from repro.errors import MigrationError
from repro.sim.policies import (
    McfVmPolicy,
    MParetoPolicy,
    NoMigrationPolicy,
    OptimalVnfPolicy,
    PlanVmPolicy,
)
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel


@pytest.fixture()
def setup(ft4):
    flows = place_vm_pairs(ft4, 8, seed=55)
    flows = flows.with_rates(FacebookTrafficModel().sample(8, rng=55))
    placement = dp_placement(ft4, flows, 3).placement
    return flows, placement


class TestLifecycle:
    def test_step_before_initialize_fails(self, ft4, setup):
        policy = NoMigrationPolicy(ft4, mu=1.0)
        with pytest.raises(AssertionError):
            policy.step(np.ones(8))

    def test_negative_mu_rejected(self, ft4):
        with pytest.raises(MigrationError):
            NoMigrationPolicy(ft4, mu=-1.0)


class TestNoMigrationPolicy:
    def test_placement_never_changes(self, ft4, setup):
        flows, placement = setup
        policy = NoMigrationPolicy(ft4, mu=1.0)
        policy.initialize(flows, placement)
        rng = np.random.default_rng(0)
        for _ in range(3):
            step = policy.step(rng.uniform(0, 100, 8))
            assert step.num_migrations == 0
            assert step.migration_cost == 0.0
        assert np.array_equal(policy.placement, placement)

    def test_cost_matches_context(self, ft4, setup):
        flows, placement = setup
        policy = NoMigrationPolicy(ft4, mu=1.0)
        policy.initialize(flows, placement)
        rates = flows.rates * 0.5
        step = policy.step(rates)
        ctx = CostContext(ft4, flows.with_rates(rates))
        assert step.communication_cost == pytest.approx(
            ctx.communication_cost(placement)
        )


class TestVnfPolicies:
    @pytest.mark.parametrize("cls", [MParetoPolicy, OptimalVnfPolicy])
    def test_state_tracks_migrations(self, ft4, setup, cls):
        flows, placement = setup
        policy = cls(ft4, mu=0.0)  # free migration: will chase the optimum
        policy.initialize(flows, placement)
        rng = np.random.default_rng(1)
        step = policy.step(rng.uniform(0, 10000, 8))
        moved = int(np.count_nonzero(policy.placement != placement))
        assert step.num_migrations == moved

    def test_mpareto_zero_mu_reaches_dp_cost(self, ft4, setup):
        """With μ=0 mPareto lands exactly on the fresh DP placement."""
        flows, placement = setup
        policy = MParetoPolicy(ft4, mu=0.0)
        policy.initialize(flows, placement)
        rates = flows.rates
        step = policy.step(rates)
        fresh = dp_placement(ft4, flows, 3)
        assert step.communication_cost <= fresh.cost + 1e-9

    def test_optimal_policy_beats_mpareto(self, ft4, setup):
        flows, placement = setup
        rates = np.asarray(FacebookTrafficModel().sample(8, rng=99))
        mp = MParetoPolicy(ft4, mu=10.0)
        mp.initialize(flows, placement)
        opt = OptimalVnfPolicy(ft4, mu=10.0)
        opt.initialize(flows, placement)
        assert opt.step(rates).total_cost <= mp.step(rates).total_cost + 1e-9

    def test_optimal_policy_candidate_restriction(self, ft4, setup):
        flows, placement = setup
        cands = set(ft4.switches[:8].tolist()) | set(placement.tolist())
        policy = OptimalVnfPolicy(ft4, mu=1.0, candidate_switches=sorted(cands))
        policy.initialize(flows, placement)
        policy.step(flows.rates)
        assert set(policy.placement.tolist()) <= cands


class TestVmPolicies:
    @pytest.mark.parametrize("cls", [PlanVmPolicy, McfVmPolicy])
    def test_vnfs_fixed_vms_move(self, ft4, setup, cls):
        flows, placement = setup
        policy = cls(ft4, mu=0.1, vm_size_ratio=1.0)
        policy.initialize(flows, placement)
        step = policy.step(flows.rates)
        assert np.array_equal(policy.placement, placement)  # VNFs pinned
        old = np.concatenate([flows.sources, flows.destinations])
        new = np.concatenate([policy.flows.sources, policy.flows.destinations])
        assert step.num_migrations == int((old != new).sum())

    @pytest.mark.parametrize("cls", [PlanVmPolicy, McfVmPolicy])
    def test_vm_size_ratio_scales_mu(self, ft4, setup, cls):
        flows, placement = setup
        cheap = cls(ft4, mu=0.1, vm_size_ratio=1.0)
        cheap.initialize(flows, placement)
        dear = cls(ft4, mu=0.1, vm_size_ratio=1e12)
        dear.initialize(flows, placement)
        assert dear.step(flows.rates).num_migrations == 0
        assert cheap.step(flows.rates).num_migrations >= 0

    @pytest.mark.parametrize("cls", [PlanVmPolicy, McfVmPolicy])
    def test_capacity_frozen_at_initialize(self, ft4, setup, cls):
        from repro.baselines.common import host_occupancy

        flows, placement = setup
        policy = cls(ft4, mu=0.01, vm_size_ratio=1.0, free_slots=1)
        policy.initialize(flows, placement)
        initial_cap = np.asarray(policy.host_capacity)
        for _ in range(3):
            policy.step(flows.rates)
            occ = host_occupancy(ft4, policy.flows)
            assert np.all(occ <= initial_cap)
        assert np.array_equal(np.asarray(policy.host_capacity), initial_cap)
