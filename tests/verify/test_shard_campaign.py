"""The sharded-execution verification family: smoke campaign + checks."""

from __future__ import annotations

import json

import pytest

from repro.verify import (
    SHARD_DAY_KINDS,
    ShardCampaignConfig,
    generate_shard_cases,
    run_shard_campaign,
    run_shard_case,
)

pytestmark = pytest.mark.faults

SMOKE_CASES = 6


@pytest.fixture(scope="module")
def smoke_report():
    """One shared tier-1 shard campaign: ~6 seeded days, every execution."""
    return run_shard_campaign(ShardCampaignConfig(cases=SMOKE_CASES, seed=0))


class TestSmokeCampaign:
    def test_zero_violations(self, smoke_report):
        assert smoke_report["violations"] == 0, smoke_report["failures"]
        assert smoke_report["failures"] == []

    def test_every_case_ran(self, smoke_report):
        assert smoke_report["cases"] == SMOKE_CASES
        assert smoke_report["checks"] >= SMOKE_CASES

    def test_day_kinds_cycle_evenly(self, smoke_report):
        kinds = smoke_report["coverage"]["by_day_kind"]
        assert set(kinds) == set(SHARD_DAY_KINDS)
        assert all(n == SMOKE_CASES // 3 for n in kinds.values())

    def test_infeasible_is_an_outcome_not_a_failure(self, smoke_report):
        outcomes = smoke_report["coverage"]["by_outcome"]
        assert "error" not in outcomes
        assert set(outcomes) <= {"completed", "infeasible"}

    def test_report_is_json_serializable(self, smoke_report):
        json.dumps(smoke_report)


class TestCaseGeneration:
    def test_deterministic(self):
        assert generate_shard_cases(3, 12) == generate_shard_cases(3, 12)

    def test_cycles_every_day_kind(self):
        kinds = [spec.day_kind for spec in generate_shard_cases(0, 9)]
        assert kinds == list(SHARD_DAY_KINDS) * 3

    def test_replication_days_carry_the_replication_policy(self):
        for spec in generate_shard_cases(1, 12):
            if spec.day_kind == "replication":
                assert spec.policy == "tom-replication"
            else:
                assert spec.policy in ("mpareto", "no-migration")


class TestChecks:
    @pytest.fixture(scope="class")
    def spec(self):
        return generate_shard_cases(0, 1)[0]

    def test_run_case_counts_checks(self, spec):
        outcome = run_shard_case((spec, 1e-9))
        assert outcome["outcome"] in ("completed", "infeasible")
        assert outcome["violations"] == []
        # oracle identity per shard count + invariance between counts
        assert outcome["checks"] >= len(spec.shard_counts)

    def test_spec_round_trips_to_json(self, spec):
        json.dumps(spec.to_dict())
