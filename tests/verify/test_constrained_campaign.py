"""The constrained-placement verification campaign."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.verify import (
    ConstrainedCampaignConfig,
    ConstrainedCaseSpec,
    generate_constrained_cases,
    run_constrained_campaign,
    run_constrained_case,
)

pytestmark = pytest.mark.constrained


class TestGeneration:
    def test_same_seed_same_cases(self):
        assert generate_constrained_cases(5, 12) == generate_constrained_cases(5, 12)

    def test_case_prefix_stable_across_counts(self):
        assert generate_constrained_cases(0, 20)[:8] == generate_constrained_cases(0, 8)

    def test_specs_are_picklable_and_json_friendly(self):
        for spec in generate_constrained_cases(1, 8):
            assert pickle.loads(pickle.dumps(spec)) == spec
            json.dumps(spec.to_dict())

    def test_modes_and_constraint_knobs_are_covered(self):
        specs = generate_constrained_cases(0, 60)
        modes = {s.mode for s in specs}
        assert {"place", "migrate", "contention"} <= modes
        assert any(s.vnf_capacity is not None for s in specs)
        assert any(s.delay_factor is not None for s in specs)
        assert any(s.bandwidth_factor is not None for s in specs)


class TestSingleCase:
    def test_record_shape(self):
        spec = generate_constrained_cases(0, 1)[0]
        record = run_constrained_case((spec, 1e-9))
        assert set(record) == {
            "case_id", "family", "policy", "outcome", "checks",
            "violations", "spec",
        }
        assert record["outcome"] in ("completed", "infeasible", "error")
        assert record["violations"] == []


class TestCampaign:
    def test_small_campaign_is_clean(self):
        report = run_constrained_campaign(
            ConstrainedCampaignConfig(cases=15, seed=0)
        )
        assert report["cases"] == 15
        assert report["violations"] == 0
        assert report["failures"] == []
        assert set(report["coverage"]["by_outcome"]) <= {
            "completed", "infeasible"
        }
        json.dumps(report)  # the report is a JSON document end to end

    @pytest.mark.campaign
    def test_full_campaign_seed0(self, tmp_path):
        report = run_constrained_campaign(
            ConstrainedCampaignConfig(
                cases=200,
                seed=0,
                workers=2,
                report_path=tmp_path / "constrained_report.json",
            )
        )
        assert report["cases"] == 200
        assert report["violations"] == 0
        assert (tmp_path / "constrained_report.json").exists()
