"""The fault-injection verification family: smoke campaign + audit checks."""

from __future__ import annotations

import json

import pytest

from repro.verify import (
    FAULT_FAMILIES,
    FaultCampaignConfig,
    check_fault_day,
    generate_fault_cases,
    run_fault_campaign,
    run_fault_case,
)

pytestmark = pytest.mark.faults

SMOKE_CASES = 10


@pytest.fixture(scope="module")
def smoke_report():
    """One shared tier-1 fault campaign: ~10 seeded survivability days."""
    return run_fault_campaign(FaultCampaignConfig(cases=SMOKE_CASES, seed=0))


class TestSmokeCampaign:
    def test_zero_violations(self, smoke_report):
        assert smoke_report["violations"] == 0, smoke_report["failures"]
        assert smoke_report["failures"] == []

    def test_every_case_ran(self, smoke_report):
        assert smoke_report["cases"] == SMOKE_CASES
        assert smoke_report["checks"] >= SMOKE_CASES

    def test_infeasible_is_an_outcome_not_a_failure(self, smoke_report):
        outcomes = smoke_report["coverage"]["by_outcome"]
        assert "error" not in outcomes
        assert set(outcomes) <= {"completed", "infeasible"}

    def test_report_is_json_serializable(self, smoke_report):
        json.dumps(smoke_report)


class TestCaseGeneration:
    def test_deterministic(self):
        assert generate_fault_cases(3, 20) == generate_fault_cases(3, 20)

    def test_prefix_stable_across_case_counts(self):
        assert generate_fault_cases(0, 5) == generate_fault_cases(0, 25)[:5]

    def test_seeds_differ(self):
        assert generate_fault_cases(0, 10) != generate_fault_cases(1, 10)

    def test_specs_cover_known_families(self):
        specs = generate_fault_cases(0, 40)
        assert {s.family for s in specs} <= set(FAULT_FAMILIES)
        assert {s.policy for s in specs} <= {"mpareto", "no-migration"}


class TestCheckFaultDay:
    @pytest.fixture(scope="class")
    def good_case(self):
        # pick a spec that completes (not infeasible) so the audit has a day
        for spec in generate_fault_cases(7, 30):
            outcome = run_fault_case((spec, 1e-9))
            if outcome["outcome"] == "completed":
                return spec
        pytest.fail("no completing fault case in the first 30 specs")

    def test_clean_day_passes(self, good_case):
        topology, flows, rate_process, faults = good_case.build()
        day = good_case.simulate()
        violations = check_fault_day(
            topology, flows, rate_process, faults, day, mu=good_case.mu
        )
        assert violations == []

    def test_corrupted_repair_cost_is_caught(self, good_case):
        from dataclasses import replace

        topology, flows, rate_process, faults = good_case.build()
        day = good_case.simulate()
        bad_first = replace(
            day.records[0], repair_cost=day.records[0].repair_cost + 123.0
        )
        bad_day = replace(day, records=(bad_first,) + day.records[1:])
        violations = check_fault_day(
            topology, flows, rate_process, faults, bad_day, mu=good_case.mu
        )
        assert any(v.invariant == "fault_repair_cost" for v in violations)

    @pytest.mark.filterwarnings("ignore:invalid value encountered")
    def test_corrupted_placement_is_caught(self, good_case):
        import copy

        topology, flows, rate_process, faults = good_case.build()
        day = good_case.simulate()
        bad_day = copy.deepcopy(day)
        # plant a VNF on a switch that is failed at some faulty hour, or —
        # on an all-healthy day — on a host (never a legal VNF site)
        log = bad_day.extra["fault_log"]
        for entry in log:
            if entry["failed_switches"]:
                entry["placement"][0] = entry["failed_switches"][0]
                break
        else:
            log[0]["placement"][0] = int(topology.hosts[0])
        violations = check_fault_day(
            topology, flows, rate_process, faults, bad_day, mu=good_case.mu
        )
        assert any(v.invariant == "fault_containment" for v in violations)

    def test_misaligned_log_is_caught(self, good_case):
        from dataclasses import replace

        topology, flows, rate_process, faults = good_case.build()
        day = good_case.simulate()
        bad_day = replace(
            day,
            extra={**day.extra, "fault_log": day.extra["fault_log"][:-1]},
        )
        violations = check_fault_day(
            topology, flows, rate_process, faults, bad_day, mu=good_case.mu
        )
        assert [v.invariant for v in violations] == ["fault_log_alignment"]


class TestRunFaultCase:
    def test_outcome_payload_shape(self):
        spec = generate_fault_cases(0, 1)[0]
        outcome = run_fault_case((spec, 1e-9))
        assert outcome["case_id"] == spec.case_id
        assert outcome["outcome"] in {"completed", "infeasible"}
        assert outcome["violations"] == []
        assert outcome["spec"] == spec.to_dict()

    def test_specs_rebuild_bitwise(self):
        spec = generate_fault_cases(5, 1)[0]
        _, _, _, faults_a = spec.build()
        _, _, _, faults_b = spec.build()
        assert json.dumps(faults_a.to_dict(), sort_keys=True) == json.dumps(
            faults_b.to_dict(), sort_keys=True
        )
