"""Every invariant check: passes on real results, flags corrupted ones."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.common import VMMigrationResult
from repro.baselines.plan import plan_vm_migration
from repro.core.migration import mpareto_migration
from repro.core.placement import dp_placement
from repro.core.types import PlacementResult
from repro.verify import (
    check_cost_decomposition,
    check_feasibility,
    check_lp_floor,
    check_metric,
    check_migration_distance,
    check_result,
    check_total_split,
    check_triangle_consistency,
    recompute_communication_cost,
)


def _names(violations):
    return sorted(v.invariant for v in violations)


class TestRecomputation:
    def test_matches_solver_pricing(self, ft4, small_scenario):
        flows = small_scenario(ft4, 6, seed=1)
        result = dp_placement(ft4, flows, 3)
        recomputed = recompute_communication_cost(ft4, flows, result.placement)
        assert recomputed == pytest.approx(result.cost, rel=1e-9)

    def test_single_vnf_has_no_chain_term(self, ft2, example1_flows):
        result = dp_placement(ft2, example1_flows, 1)
        dist = ft2.graph.distances
        u = int(result.placement[0])
        want = sum(
            float(r) * (dist[int(s), u] + dist[u, int(d)])
            for s, d, r in zip(
                example1_flows.sources,
                example1_flows.destinations,
                example1_flows.rates,
            )
        )
        got = recompute_communication_cost(ft2, example1_flows, result.placement)
        assert got == pytest.approx(want, rel=1e-12)


class TestFeasibility:
    def test_real_placement_passes(self, ft4, small_scenario):
        result = dp_placement(ft4, small_scenario(ft4, 4, seed=2), 4)
        assert check_feasibility(ft4, result.placement, 4) == []

    def test_duplicate_switch_flagged(self, ft4):
        s = int(ft4.switches[0])
        violations = check_feasibility(ft4, [s, s], 2)
        assert "feasibility" in _names(violations)

    def test_host_entry_flagged(self, ft4):
        violations = check_feasibility(ft4, [int(ft4.hosts[0])], 1)
        assert "feasibility" in _names(violations)

    def test_wrong_length_flagged(self, ft4):
        placement = ft4.switches[:2]
        assert check_feasibility(ft4, placement, 3) != []
        assert check_feasibility(ft4, placement, 2) == []

    def test_empty_flagged(self, ft4):
        assert check_feasibility(ft4, np.array([], dtype=np.int64)) != []


class TestCostDecomposition:
    def test_honest_cost_passes(self, ft4, small_scenario):
        flows = small_scenario(ft4, 5, seed=3)
        result = dp_placement(ft4, flows, 2)
        assert check_cost_decomposition(ft4, flows, result.placement, result.cost) == []

    def test_bumped_cost_flagged(self, ft4, small_scenario):
        flows = small_scenario(ft4, 5, seed=3)
        result = dp_placement(ft4, flows, 2)
        violations = check_cost_decomposition(
            ft4, flows, result.placement, result.cost + 1.0
        )
        assert _names(violations) == ["cost_decomposition"]
        assert violations[0].to_dict()["detail"]["rel_err"] > 1e-9


class TestTotalSplit:
    def test_exact_split_passes(self):
        assert check_total_split(9.0, 4.0, 5.0) == []

    def test_broken_split_flagged(self):
        violations = check_total_split(10.0, 4.0, 5.0)
        assert _names(violations) == ["total_split"]


class TestMigrationDistance:
    def test_honest_distance_passes(self, ft4, small_scenario):
        flows = small_scenario(ft4, 6, seed=4)
        prev = dp_placement(ft4, flows, 3).placement
        shifted = flows.with_rates(flows.rates[::-1].copy())
        result = mpareto_migration(ft4, shifted, prev, 2.0)
        assert (
            check_migration_distance(
                ft4, result.source, result.migration, result.migration_cost, 2.0
            )
            == []
        )

    def test_wrong_mu_flagged(self, ft4, small_scenario):
        flows = small_scenario(ft4, 6, seed=4)
        prev = dp_placement(ft4, flows, 3).placement
        shifted = flows.with_rates(flows.rates[::-1].copy())
        result = mpareto_migration(ft4, shifted, prev, 2.0)
        if result.num_migrated == 0:  # nothing moved: any mu prices to 0
            pytest.skip("no migration under this workload")
        violations = check_migration_distance(
            ft4, result.source, result.migration, result.migration_cost, 7.0
        )
        assert _names(violations) == ["migration_distance"]

    def test_shape_mismatch_flagged(self, ft4):
        violations = check_migration_distance(
            ft4, ft4.switches[:3], ft4.switches[:2], 0.0, 1.0
        )
        assert _names(violations) == ["migration_distance"]


class TestMetric:
    def test_apsp_table_is_a_metric(self, ft2):
        assert check_metric(ft2.graph.distances) == []

    def test_triangle_violation_flagged(self):
        d = np.array([[0.0, 1.0, 10.0], [1.0, 0.0, 1.0], [10.0, 1.0, 0.0]])
        violations = check_metric(d)
        assert _names(violations) == ["metric"]
        assert "triangle" in violations[0].message

    def test_asymmetry_flagged(self):
        d = np.array([[0.0, 1.0], [2.0, 0.0]])
        assert check_metric(d) != []

    def test_negative_and_diagonal_flagged(self):
        d = np.array([[0.5, -1.0], [-1.0, 0.0]])
        assert len(check_metric(d)) >= 2

    def test_non_finite_flagged(self):
        d = np.array([[0.0, np.inf], [np.inf, 0.0]])
        assert check_metric(d) != []


class TestTriangleConsistency:
    def test_real_chain_passes(self, ft4, small_scenario):
        result = dp_placement(ft4, small_scenario(ft4, 4, seed=5), 4)
        assert check_triangle_consistency(ft4, result.placement) == []

    def test_single_vnf_trivially_passes(self, ft4):
        assert check_triangle_consistency(ft4, ft4.switches[:1]) == []


class TestLpFloor:
    def test_real_cost_respects_floor(self, ft4, small_scenario):
        flows = small_scenario(ft4, 1, seed=6, intra_rack_fraction=0.0)
        result = dp_placement(ft4, flows, 3)
        assert check_lp_floor(ft4, flows, result.placement, result.cost) == []

    def test_impossible_cost_flagged(self, ft4, small_scenario):
        flows = small_scenario(ft4, 1, seed=6, intra_rack_fraction=0.0)
        result = dp_placement(ft4, flows, 3)
        violations = check_lp_floor(ft4, flows, result.placement, 0.0)
        assert _names(violations) == ["lp_floor"]

    def test_multi_flow_is_skipped(self, ft4, small_scenario):
        flows = small_scenario(ft4, 3, seed=6)
        # the LP is the TOP-1 relaxation: not a floor for multi-flow costs
        assert check_lp_floor(ft4, flows, ft4.switches[:2], 0.0) == []


class TestDispatch:
    def test_placement_result(self, ft4, small_scenario):
        flows = small_scenario(ft4, 4, seed=7)
        result = dp_placement(ft4, flows, 3)
        assert check_result(ft4, flows, result, n=3, lp=True) == []

    def test_corrupted_placement_result(self, ft4, small_scenario):
        flows = small_scenario(ft4, 4, seed=7)
        result = dp_placement(ft4, flows, 3)
        bad = PlacementResult(
            placement=result.placement,
            cost=result.cost * 1.5 + 1.0,
            algorithm=result.algorithm,
        )
        assert "cost_decomposition" in _names(check_result(ft4, flows, bad, n=3))

    def test_migration_result(self, ft4, small_scenario):
        flows = small_scenario(ft4, 6, seed=8)
        prev = dp_placement(ft4, flows, 3).placement
        shifted = flows.with_rates(flows.rates[::-1].copy())
        result = mpareto_migration(ft4, shifted, prev, 5.0)
        assert check_result(ft4, shifted, result, mu=5.0, n=3) == []

    def test_vm_migration_result(self, ft4, small_scenario):
        flows = small_scenario(ft4, 6, seed=9)
        prev = dp_placement(ft4, flows, 3).placement
        result = plan_vm_migration(ft4, flows, prev, 1.0)
        assert check_result(ft4, flows, result, mu=1.0, n=3) == []

    def test_corrupted_vm_migration_result(self, ft4, small_scenario):
        flows = small_scenario(ft4, 6, seed=9)
        prev = dp_placement(ft4, flows, 3).placement
        result = plan_vm_migration(ft4, flows, prev, 1.0)
        bad = VMMigrationResult(
            flows=result.flows,
            vnf_placement=result.vnf_placement,
            cost=result.cost + 2.0,
            communication_cost=result.communication_cost + 2.0,
            migration_cost=result.migration_cost,
            num_migrated=result.num_migrated,
            algorithm=result.algorithm,
        )
        assert "cost_decomposition" in _names(check_result(ft4, flows, bad, n=3))

    def test_unknown_type_flagged(self, ft4, small_scenario):
        flows = small_scenario(ft4, 2, seed=0)
        violations = check_result(ft4, flows, object())
        assert _names(violations) == ["dispatch"]

    def test_violations_are_json_friendly(self, ft4, small_scenario):
        import json

        flows = small_scenario(ft4, 4, seed=7)
        result = dp_placement(ft4, flows, 3)
        bad = PlacementResult(
            placement=result.placement,
            cost=result.cost + 1.0,
            algorithm=result.algorithm,
        )
        payload = [v.to_dict() for v in check_result(ft4, flows, bad, n=3)]
        json.dumps(payload)  # must not raise on ndarray/np scalar leftovers
