"""The incremental-equivalence verification family: smoke campaign + checks."""

from __future__ import annotations

import json

import pytest

from repro.verify import (
    IncrementalCampaignConfig,
    check_dynamic_tables,
    check_incremental_day,
    generate_fault_cases,
    generate_incremental_cases,
    run_incremental_campaign,
    run_incremental_case,
)

pytestmark = pytest.mark.faults

SMOKE_CASES = 8


@pytest.fixture(scope="module")
def smoke_report():
    """One shared tier-1 incremental campaign: ~8 seeded days, both paths."""
    return run_incremental_campaign(
        IncrementalCampaignConfig(cases=SMOKE_CASES, seed=0)
    )


class TestSmokeCampaign:
    def test_zero_violations(self, smoke_report):
        assert smoke_report["violations"] == 0, smoke_report["failures"]
        assert smoke_report["failures"] == []

    def test_every_case_ran(self, smoke_report):
        assert smoke_report["cases"] == SMOKE_CASES
        assert smoke_report["checks"] >= SMOKE_CASES

    def test_infeasible_is_an_outcome_not_a_failure(self, smoke_report):
        outcomes = smoke_report["coverage"]["by_outcome"]
        assert "error" not in outcomes
        assert set(outcomes) <= {"completed", "infeasible"}

    def test_report_is_json_serializable(self, smoke_report):
        json.dumps(smoke_report)


class TestCaseGeneration:
    def test_reuses_the_fault_spec_space(self):
        # same seed, same specs: one generator, two campaign families
        assert generate_incremental_cases(0, 12) == generate_fault_cases(0, 12)

    def test_deterministic(self):
        assert generate_incremental_cases(3, 12) == generate_incremental_cases(3, 12)


class TestChecks:
    @pytest.fixture(scope="class")
    def spec(self):
        return generate_incremental_cases(0, 1)[0]

    def test_dynamic_tables_match_cold(self, spec):
        topology, _flows, _rates, faults = spec.build()
        violations, checks = check_dynamic_tables(topology, faults)
        assert violations == []
        assert checks >= 1

    def test_day_bits_match(self, spec):
        violations, checks, outcome = check_incremental_day(spec)
        assert violations == []
        assert checks >= 1
        assert outcome in ("ok", "infeasible")

    def test_run_case_counts_checks(self, spec):
        outcome = run_incremental_case((spec, 1e-9))
        assert outcome["outcome"] in ("completed", "infeasible")
        assert outcome["violations"] == []
        assert outcome["checks"] >= 1
