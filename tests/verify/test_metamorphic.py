"""Each metamorphic transform: validity of the rewrite + its cost relation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.steering import steering_placement
from repro.core.optimal import optimal_placement
from repro.core.placement import dp_placement, dp_placement_top1
from repro.errors import ReproError
from repro.topology import apply_uniform_delays, fat_tree, linear_ppdc
from repro.verify import (
    TRANSFORMS,
    relabel_topology,
    relabel_transform,
    reverse_transform,
    scale_transform,
    split_transform,
    zero_flow_transform,
)


@pytest.fixture(scope="module")
def jittered_ft4(small_scenario):
    """fat_tree(4) with jittered weights: no exact ties left to flip."""
    topo = apply_uniform_delays(fat_tree(4), seed=99)
    return topo, small_scenario(topo, 5, seed=21)


class TestRelabel:
    def test_relabel_topology_is_isomorphic(self, ft2):
        perm = np.random.default_rng(0).permutation(ft2.graph.num_nodes)
        new = relabel_topology(ft2, perm)
        assert new.num_hosts == ft2.num_hosts
        assert new.num_switches == ft2.num_switches
        old_d, new_d = ft2.graph.distances, new.graph.distances
        assert np.allclose(new_d[np.ix_(perm, perm)], old_d)
        # host -> edge-switch adjacency survives the renaming
        old_map = {int(perm[h]): int(perm[s]) for h, s in zip(ft2.hosts, ft2.host_edge_switch)}
        new_map = dict(zip(new.hosts.tolist(), new.host_edge_switch.tolist()))
        assert new_map == old_map

    def test_bad_permutation_rejected(self, ft2):
        with pytest.raises(ReproError, match="permutation"):
            relabel_topology(ft2, np.zeros(ft2.graph.num_nodes, dtype=np.int64))

    def test_dp_cost_is_label_independent(self, jittered_ft4):
        topo, flows = jittered_ft4
        base = dp_placement(topo, flows, 3).cost
        tr = relabel_transform(topo, flows, seed=5)
        assert tr.cost_factor == 1.0
        transformed = dp_placement(tr.topology, tr.flows, 3).cost
        assert transformed == pytest.approx(base, rel=1e-9)

    def test_prev_placement_is_mapped(self, jittered_ft4):
        topo, flows = jittered_ft4
        prev = dp_placement(topo, flows, 3).placement
        tr = relabel_transform(topo, flows, prev, seed=5)
        perm_d = tr.topology.graph.distances
        # the mapped prev spans the same pairwise distances as the original
        assert np.allclose(
            perm_d[tr.prev[:-1], tr.prev[1:]],
            topo.graph.distances[prev[:-1], prev[1:]],
        )


class TestScale:
    def test_power_of_two_scale_is_bitwise(self, jittered_ft4):
        topo, flows = jittered_ft4
        base = dp_placement(topo, flows, 3)
        tr = scale_transform(topo, flows, factor=4.0)
        scaled = dp_placement(tr.topology, tr.flows, 3)
        assert np.array_equal(scaled.placement, base.placement)
        assert scaled.cost == 4.0 * base.cost  # exact, not approx

    def test_scale_is_sound_for_heuristics(self, jittered_ft4):
        topo, flows = jittered_ft4
        base = steering_placement(topo, flows, 3)
        tr = scale_transform(topo, flows, factor=2.0)
        scaled = steering_placement(tr.topology, tr.flows, 3)
        assert scaled.cost == 2.0 * base.cost

    def test_bad_factor_rejected(self, ft4, small_scenario):
        flows = small_scenario(ft4, 2, seed=0)
        for factor in (0.0, -1.0, float("inf")):
            with pytest.raises(ReproError, match="factor"):
                scale_transform(ft4, flows, factor=factor)


class TestSplit:
    def test_split_preserves_dp_cost(self, jittered_ft4):
        topo, flows = jittered_ft4
        base = dp_placement(topo, flows, 3).cost
        tr = split_transform(topo, flows)
        assert tr.flows.num_flows == flows.num_flows + 1
        assert tr.flows.rates.sum() == pytest.approx(flows.rates.sum())
        transformed = dp_placement(topo, tr.flows, 3).cost
        assert transformed == pytest.approx(base, rel=1e-9)

    def test_split_halves_the_chosen_flow(self, ft4, small_scenario):
        flows = small_scenario(ft4, 4, seed=11)
        tr = split_transform(ft4, flows, index=2)
        assert tr.flows.rates[2] == flows.rates[2] / 2.0
        assert tr.flows.rates[-1] == flows.rates[2] / 2.0
        assert int(tr.flows.sources[-1]) == int(flows.sources[2])

    def test_bad_index_rejected(self, ft4, small_scenario):
        flows = small_scenario(ft4, 2, seed=0)
        with pytest.raises(ReproError, match="out of range"):
            split_transform(ft4, flows, index=5)


class TestReverse:
    def test_reverse_preserves_optimal_cost(self, small_scenario):
        topo = apply_uniform_delays(linear_ppdc(4), seed=3)
        flows = small_scenario(topo, 3, seed=13)
        base = optimal_placement(topo, flows, 2).cost
        tr = reverse_transform(topo, flows)
        assert np.array_equal(tr.flows.sources, flows.destinations)
        transformed = optimal_placement(topo, tr.flows, 2).cost
        assert transformed == pytest.approx(base, rel=1e-9)

    def test_prev_is_reversed(self, ft4, small_scenario):
        flows = small_scenario(ft4, 2, seed=0)
        prev = np.array([1, 2, 3], dtype=np.int64)
        tr = reverse_transform(ft4, flows, prev)
        assert tr.prev.tolist() == [3, 2, 1]


class TestZeroFlow:
    def test_zero_flow_changes_nothing(self, jittered_ft4):
        topo, flows = jittered_ft4
        base = dp_placement(topo, flows, 3).cost
        tr = zero_flow_transform(topo, flows, seed=7)
        assert tr.flows.num_flows == flows.num_flows + 1
        assert tr.flows.rates[-1] == 0.0
        transformed = dp_placement(topo, tr.flows, 3).cost
        assert transformed == pytest.approx(base, rel=1e-9)

    def test_flow_zero_is_untouched(self, jittered_ft4):
        """The phantom is appended last, so TOP-1 solvers never see it."""
        topo, flows = jittered_ft4
        tr = zero_flow_transform(topo, flows, seed=7)
        assert int(tr.flows.sources[0]) == int(flows.sources[0])
        base = dp_placement_top1(topo, flows, 3)
        transformed = dp_placement_top1(topo, tr.flows, 3)
        assert np.array_equal(transformed.placement, base.placement)
        assert transformed.cost == base.cost


class TestCatchesBugs:
    def test_mispriced_solver_breaks_the_scale_relation(self, jittered_ft4):
        """A solver whose cost drifts from its decisions fails `scale`."""
        topo, flows = jittered_ft4

        def buggy(topology, fl, n):  # reports an absolute offset
            result = dp_placement(topology, fl, n)
            return result.cost + 1.0

        base = buggy(topo, flows, 3)
        tr = scale_transform(topo, flows, factor=4.0)
        transformed = buggy(tr.topology, tr.flows, 3)
        rel_err = abs(transformed - tr.cost_factor * base) / abs(
            tr.cost_factor * base
        )
        assert rel_err > 1e-9  # the campaign's comparison would flag this

    def test_transform_table_is_complete(self):
        assert sorted(TRANSFORMS) == ["relabel", "reverse", "scale", "split", "zero"]
