"""Differential regression on the paper's figure shapes.

The fig07 shape (single VM pair, TOP-1 algorithms) and the fig09 shape
(multi-pair TOP comparison + migration round) are the workloads the
experiments actually run; here every solver entry point is pinned
bit-identical to its cold per-call form with the shared
:func:`repro.verify.assert_equivalent` helper, and every result is
audited by the invariant layer — the same checks the ``repro verify``
campaign applies to random scenarios, applied to the shapes the figures
depend on.
"""

from __future__ import annotations

import pytest

from repro.baselines.greedy_liu import greedy_liu_placement
from repro.baselines.mcf_migration import mcf_vm_migration
from repro.baselines.plan import plan_vm_migration
from repro.baselines.random_placement import random_placement
from repro.baselines.steering import steering_placement
from repro.core.migration import mpareto_migration
from repro.core.optimal import optimal_placement
from repro.core.placement import dp_placement, dp_placement_top1
from repro.core.primal_dual import primal_dual_placement_top1
from repro.runtime.cache import ComputeCache
from repro.session import SolverSession
from repro.verify import assert_equivalent, check_result, diff_results

#: the fig07 series: TOP-1 solvers on a single cross-rack VM pair
FIG07_ALGOS = {
    "dp": dp_placement,
    "top1": dp_placement_top1,
    "optimal": optimal_placement,
    "primal-dual": primal_dual_placement_top1,
}

#: the fig09 series: multi-flow TOP comparison
FIG09_ALGOS = {
    "dp": dp_placement,
    "steering": steering_placement,
    "greedy": greedy_liu_placement,
}


class TestFig07Shape:
    @pytest.mark.parametrize("n", [2, 3])
    @pytest.mark.parametrize("algo", sorted(FIG07_ALGOS))
    def test_session_matches_cold_bitwise(self, ft4, small_scenario, algo, n):
        flows = small_scenario(ft4, 1, seed=5, intra_rack_fraction=0.0)
        session = SolverSession(ft4)
        got = session.place(flows, n, algo=algo)
        cold = FIG07_ALGOS[algo](ft4, flows, n, cache=ComputeCache())
        assert_equivalent(got, cold, context=f"fig07 {algo} n={n}")
        assert check_result(ft4, flows, got, n=n, lp=True) == []

    def test_solve_facade_matches_place(self, ft4, small_scenario):
        flows = small_scenario(ft4, 1, seed=5, intra_rack_fraction=0.0)
        session = SolverSession(ft4)
        assert diff_results(
            session.solve(flows, 3), session.place(flows, 3)
        ) == []


class TestFig09Shape:
    @pytest.mark.parametrize("algo", sorted(FIG09_ALGOS))
    def test_session_matches_cold_bitwise(self, ft4, small_scenario, algo):
        flows = small_scenario(ft4, 8, seed=9)
        session = SolverSession(ft4)
        got = session.place(flows, 3, algo=algo)
        cold = FIG09_ALGOS[algo](ft4, flows, 3, cache=ComputeCache())
        assert_equivalent(got, cold, context=f"fig09 {algo}")
        assert check_result(ft4, flows, got, n=3) == []

    def test_random_baseline_with_pinned_seed(self, ft4, small_scenario):
        flows = small_scenario(ft4, 8, seed=9)
        session = SolverSession(ft4)
        got = session.place(flows, 3, algo="random", seed=17)
        cold = random_placement(ft4, flows, 3, seed=17, cache=ComputeCache())
        assert_equivalent(got, cold, context="fig09 random")
        assert check_result(ft4, flows, got, n=3) == []

    def test_place_many_matches_singles(self, ft4, small_scenario):
        flowsets = [small_scenario(ft4, 8, seed=s) for s in (1, 2, 3)]
        session = SolverSession(ft4)
        batched = session.place_many(flowsets, 3)
        for i, (got, flows) in enumerate(zip(batched, flowsets)):
            want = session.place(flows, 3)
            assert_equivalent(got, want, context=f"place_many[{i}]")
            assert check_result(ft4, flows, got, n=3) == []


class TestMigrationRound:
    @pytest.mark.parametrize("mu", [0.5, 10.0])
    def test_mpareto_matches_cold_bitwise(self, ft4, small_scenario, mu):
        flows = small_scenario(ft4, 8, seed=9)
        session = SolverSession(ft4)
        prev = session.place(flows, 3).placement
        shifted = flows.with_rates(flows.rates[::-1].copy())
        got = session.migrate(prev, shifted, mu=mu)
        cold = mpareto_migration(ft4, shifted, prev, mu, cache=ComputeCache())
        assert_equivalent(got, cold, context=f"mpareto mu={mu}")
        assert check_result(ft4, shifted, got, mu=mu, n=3) == []

    @pytest.mark.parametrize(
        "algo,cold_fn", [("plan", plan_vm_migration), ("mcf", mcf_vm_migration)]
    )
    def test_vm_baselines_match_cold_bitwise(
        self, ft4, small_scenario, algo, cold_fn
    ):
        flows = small_scenario(ft4, 8, seed=9)
        session = SolverSession(ft4)
        prev = session.place(flows, 3).placement
        got = session.migrate(prev, flows, mu=1.0, algo=algo)
        cold = cold_fn(ft4, flows, prev, 1.0, cache=ComputeCache())
        assert_equivalent(got, cold, context=f"vm baseline {algo}")
        assert check_result(ft4, flows, got, mu=1.0, n=3) == []


class TestAssertEquivalent:
    def test_mismatch_raises_with_every_diff(self, ft4, small_scenario):
        flows = small_scenario(ft4, 4, seed=1)
        session = SolverSession(ft4)
        a = session.place(flows, 2)
        b = session.place(flows.with_rates(flows.rates * 3.0), 2)
        if not diff_results(a, b):
            pytest.skip("tripled rates happened to give the same answer")
        with pytest.raises(AssertionError, match="fig-check"):
            assert_equivalent(a, b, context="fig-check")
