"""The campaign runner: smoke campaign, determinism, injection, shrinking, resume."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.verify import (
    CampaignConfig,
    CheckOptions,
    generate_cases,
    run_campaign,
    run_case,
    shrink_case,
)

SMOKE_CASES = 50


@pytest.fixture(scope="module")
def smoke_report():
    """One shared tier-1 campaign: ~50 seeded cases, all checks on."""
    return run_campaign(CampaignConfig(cases=SMOKE_CASES, seed=0, shrink=False))


class TestSmokeCampaign:
    def test_zero_violations(self, smoke_report):
        assert smoke_report["violations"] == 0, smoke_report["failures"]
        assert smoke_report["failures"] == []

    def test_every_case_ran_and_checked(self, smoke_report):
        assert smoke_report["cases"] == SMOKE_CASES
        # at least the invariant + oracle layers fired per case
        assert smoke_report["checks"] >= 2 * SMOKE_CASES

    def test_coverage_spans_the_matrix(self, smoke_report):
        coverage = smoke_report["coverage"]
        assert len(coverage["by_family"]) >= 4
        assert len(coverage["by_algo"]) >= 5
        assert set(coverage["by_mode"]) == {"place", "migrate"}
        assert "cold" in coverage["by_entry"]

    def test_report_is_json_serializable(self, smoke_report):
        import json

        json.dumps(smoke_report)


class TestCaseGeneration:
    def test_deterministic(self):
        assert generate_cases(3, 25) == generate_cases(3, 25)

    def test_prefix_stable_across_case_counts(self):
        # a resumed campaign with a larger --cases extends the same prefix
        assert generate_cases(0, 10) == generate_cases(0, 30)[:10]

    def test_seeds_differ(self):
        assert generate_cases(0, 10) != generate_cases(1, 10)

    def test_specs_rebuild_deterministically(self):
        spec = generate_cases(0, 5)[4]
        topo_a, flows_a, _ = spec.build()
        topo_b, flows_b, _ = spec.build()
        assert (flows_a.sources == flows_b.sources).all()
        assert (flows_a.rates == flows_b.rates).all()
        assert topo_a.num_switches == topo_b.num_switches


class TestInjection:
    def test_cost_corruption_is_caught(self):
        spec = replace(generate_cases(0, 1)[0], inject="cost")
        record = run_case((spec, CheckOptions()))
        assert record["violations"], "a corrupted cost must be flagged"
        names = {v["invariant"] for v in record["violations"]}
        assert "cost_decomposition" in names

    def test_duplicate_corruption_is_caught(self):
        spec = next(
            s for s in generate_cases(0, 30) if s.mode == "place" and s.n >= 2
        )
        record = run_case((replace(spec, inject="duplicate"), CheckOptions()))
        names = {v["invariant"] for v in record["violations"]}
        assert "feasibility" in names

    def test_clean_case_has_no_violations(self):
        record = run_case((generate_cases(0, 1)[0], CheckOptions()))
        assert record["violations"] == []


class TestShrinking:
    def test_injected_violation_shrinks_to_minimal_repro(self):
        # the acceptance pin: a seeded injected violation must shrink to
        # a scenario of at most 3 flows
        spec = next(
            s
            for s in generate_cases(0, 30)
            if s.mode == "place" and s.num_flows >= 4
        )
        shrunk, record = shrink_case(replace(spec, inject="cost"), CheckOptions())
        assert record["violations"], "the shrunk spec must still fail"
        assert shrunk.effective_flows <= 3
        assert shrunk.inject == "cost"  # the corruption rode along

    def test_campaign_reports_the_shrunk_spec(self):
        spec = next(
            s
            for s in generate_cases(0, 30)
            if s.mode == "place" and s.num_flows >= 4
        )
        report = run_campaign(
            CampaignConfig(
                cases=30, seed=0, inject_case=spec.case_id, inject_kind="cost"
            )
        )
        assert report["violations"] > 0
        (failure,) = [
            f for f in report["failures"] if f["case_id"] == spec.case_id
        ]
        assert failure["shrunk"]["num_flows"] <= 3
        assert failure["shrunk"]["violations"]

    def test_shrink_is_a_noop_on_passing_cases(self):
        spec = generate_cases(0, 1)[0]
        shrunk, record = shrink_case(spec, CheckOptions())
        assert shrunk == spec
        assert record["violations"] == []


class TestJournalResume:
    def test_resumed_campaign_replays_from_journal(self, tmp_path):
        journal = tmp_path / "verify_journal.jsonl"
        first = run_campaign(
            CampaignConfig(cases=15, seed=0, shrink=False, journal_path=journal)
        )
        assert first["runtime"]["journal_hits"] == 0
        # a *larger* re-run must replay the completed prefix, not resolve it
        second = run_campaign(
            CampaignConfig(cases=30, seed=0, shrink=False, journal_path=journal)
        )
        assert second["runtime"]["journal_hits"] == 15
        assert second["cases"] == 30
        assert second["violations"] == 0

    def test_different_seed_gets_no_hits(self, tmp_path):
        journal = tmp_path / "verify_journal.jsonl"
        run_campaign(
            CampaignConfig(cases=5, seed=0, shrink=False, journal_path=journal)
        )
        other = run_campaign(
            CampaignConfig(cases=5, seed=1, shrink=False, journal_path=journal)
        )
        assert other["runtime"]["journal_hits"] == 0

    def test_report_written_atomically(self, tmp_path):
        import json

        path = tmp_path / "report.json"
        run_campaign(
            CampaignConfig(cases=3, seed=0, shrink=False, report_path=path)
        )
        assert json.loads(path.read_text())["cases"] == 3


@pytest.mark.campaign
def test_full_campaign_is_clean():
    """The nightly pin: the acceptance-criterion campaign, in-process."""
    report = run_campaign(CampaignConfig(cases=500, seed=0))
    assert report["violations"] == 0, report["failures"]
